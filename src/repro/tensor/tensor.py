"""Reverse-mode automatic differentiation over NumPy arrays.

This module is the computational substrate for every neural model in the
repository (the paper used PyTorch; no GPU framework is available here, so
we implement the same math from scratch).  A :class:`Tensor` wraps a
``numpy.ndarray`` and records the operations applied to it; calling
:meth:`Tensor.backward` propagates gradients through the recorded graph in
reverse topological order.

Design notes
------------
* Gradients are plain ``numpy.ndarray`` objects stored on ``Tensor.grad``;
  they are accumulated (``+=``) so a tensor used twice receives the sum of
  both contributions.
* All binary operations support NumPy broadcasting.  The helper
  :func:`unbroadcast` reduces an output-shaped gradient back to the input
  shape by summing over broadcast axes.
* Graph recording can be disabled per-thread with :func:`no_grad` (used
  for inference), which makes evaluation allocation-free apart from the
  raw NumPy work; :func:`enable_grad` re-enables it within such a scope.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

Arrayable = Union["Tensor", np.ndarray, float, int, list, tuple]

# Per-thread, like torch's: the serving engine scores on worker threads
# (and hot-reloads checkpoints concurrently), so a process-global flag
# would let one thread's no_grad exit corrupt another thread's state —
# worst case leaving gradients globally off after interleaved exits.
_GRAD_STATE = threading.local()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction.

    Inside the block every operation produces constant tensors, which makes
    inference cheaper and guarantees that ``backward`` cannot reach into
    evaluation-only code.  The flag is thread-local: threads spawned
    inside the block start with gradients *enabled* and must enter their
    own ``no_grad`` (the chunk pools in ``repro.core.multi_target`` do).
    """
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


@contextlib.contextmanager
def enable_grad():
    """Re-enable graph construction inside a ``no_grad`` scope.

    Needed when parameter-carrying modules must be *built* from code
    that may run under ``no_grad`` — e.g. the serving engine
    constructing a fresh model for an atomic checkpoint swap while
    scoring threads hold ``no_grad``: without this, every parameter
    would silently register as a constant.
    """
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = True
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return getattr(_GRAD_STATE, "enabled", True)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` undoing NumPy broadcasting.

    Broadcasting either prepends new axes or stretches size-1 axes; the
    gradient of a broadcast is the sum over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Remove prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched size-1 axes.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


def _as_array(value: Arrayable, dtype=np.float64) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


def sigmoid_array(data: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function on a raw array.

    Shared by :meth:`Tensor.sigmoid` and the no-grad inference kernels
    (e.g. the LSTM fast path) so both compute bit-identical values.
    ``exp`` runs once on ``-|x|`` (never overflows); for ``x >= 0`` this is
    exactly the ``exp(-x)`` of ``1/(1+exp(-x))`` and for ``x < 0`` exactly
    the ``exp(x)`` of ``exp(x)/(1+exp(x))``, so each element matches the
    textbook two-branch form bit for bit.
    """
    positive = data >= 0
    clipped = np.clip(data, -500, 500)
    np.abs(clipped, out=clipped)
    np.negative(clipped, out=clipped)
    exp = np.exp(clipped, out=clipped)
    denominator = exp + 1.0
    out = np.where(positive, 1.0, exp)
    np.divide(out, denominator, out=out)
    return out


class Tensor:
    """A NumPy-backed array with reverse-mode autodiff support."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data: Arrayable, requires_grad: bool = False):
        self.data: np.ndarray = _as_array(data)
        self.requires_grad: bool = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def make(data: np.ndarray, parents: Sequence["Tensor"],
             backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create an op output node; records the graph only when needed."""
        requires = is_grad_enabled() and any(p.requires_grad
                                              for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a constant tensor sharing the same data."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Autograd driver
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self.grad = grad if self.grad is None else self.grad + grad
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Arrayable) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor.make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor.make(-self.data, (self,), backward)

    def __sub__(self, other: Arrayable) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(-grad)

        return Tensor.make(data, (self, other), backward)

    def __rsub__(self, other: Arrayable) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: Arrayable) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor.make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Arrayable) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data ** 2))

        return Tensor.make(data, (self, other), backward)

    def __rtruediv__(self, other: Arrayable) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor.make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return Tensor.make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor.make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / data)

        return Tensor.make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data ** 2))

        return Tensor.make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = sigmoid_array(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return Tensor.make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor.make(data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return Tensor.make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor.make(data, (self,), backward)

    def maximum(self, other: Arrayable) -> "Tensor":
        """Elementwise maximum; ties send the full gradient to ``self``."""
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = np.maximum(self.data, other.data)
        self_wins = self.data >= other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * self_wins)
            if other.requires_grad:
                other._accumulate(grad * ~self_wins)

        return Tensor.make(data, (self, other), backward)

    def minimum(self, other: Arrayable) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = np.minimum(self.data, other.data)
        self_wins = self.data <= other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * self_wins)
            if other.requires_grad:
                other._accumulate(grad * ~self_wins)

        return Tensor.make(data, (self, other), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor.make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            d = data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                d = np.expand_dims(d, axis=axis)
            mask = (self.data == d)
            # Split the gradient evenly among tied maxima.
            counts = mask.sum(axis=axis if axis is not None else None, keepdims=True)
            self._accumulate(g * mask / counts)

        return Tensor.make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    g = np.expand_dims(grad, -1) * other.data
                else:
                    g = grad @ other.data.swapaxes(-1, -2)
                self._accumulate(unbroadcast(g, self.data.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    g = np.expand_dims(self.data, -1) * np.expand_dims(grad, -2)
                    g = g.reshape(other.data.shape) if g.shape != other.data.shape else g
                else:
                    g = self.data.swapaxes(-1, -2) @ grad
                other._accumulate(unbroadcast(g, other.data.shape))

        return Tensor.make(data, (self, other), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor.make(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor.make(data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        data = self.data.swapaxes(a, b)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.swapaxes(a, b))

        return Tensor.make(data, (self,), backward)

    def expand_dims(self, axis: int) -> "Tensor":
        data = np.expand_dims(self.data, axis)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.squeeze(grad, axis=axis))

        return Tensor.make(data, (self,), backward)

    def squeeze(self, axis: int) -> "Tensor":
        data = np.squeeze(self.data, axis=axis)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.expand_dims(grad, axis=axis))

        return Tensor.make(data, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        data = self.data[key]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate(full)

        return Tensor.make(data, (self,), backward)
