"""NumPy reverse-mode autodiff substrate (PyTorch substitute).

Public surface::

    from repro.tensor import Tensor, no_grad, ops, init
"""

from . import init, ops
from .ops import (binary_cross_entropy, concat, dropout, embedding,
                  log_softmax, masked_softmax, softmax, stack, where)
from .tensor import (Tensor, enable_grad, is_grad_enabled, no_grad,
                     sigmoid_array,
                     unbroadcast)

__all__ = [
    "Tensor",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "sigmoid_array",
    "unbroadcast",
    "concat",
    "stack",
    "where",
    "embedding",
    "softmax",
    "masked_softmax",
    "log_softmax",
    "dropout",
    "binary_cross_entropy",
    "ops",
    "init",
]
