"""Functional operations on :class:`~repro.tensor.Tensor` objects.

These cover the compound operations the KT models need beyond the method
operators on ``Tensor``: concatenation, stacking, embedding lookup,
(masked) softmax, dropout and conditional selection.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .tensor import Tensor, unbroadcast


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (gradient splits back)."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor.make(data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack equal-shaped tensors along a new axis."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slabs = np.moveaxis(grad, axis, 0)
        for tensor, slab in zip(tensors, slabs):
            if tensor.requires_grad:
                tensor._accumulate(slab)

    return Tensor.make(data, tensors, backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Select from ``a`` where ``condition`` else ``b``.

    ``condition`` is a boolean NumPy array (no gradient flows through it).
    """
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    condition = np.asarray(condition, dtype=bool)
    data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(unbroadcast(grad * condition, a.data.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(grad * ~condition, b.data.shape))

    return Tensor.make(data, (a, b), backward)


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup ``weight[indices]`` with scatter-add gradient.

    ``indices`` is an integer array of any shape; the result has shape
    ``indices.shape + (embedding_dim,)``.
    """
    indices = np.asarray(indices)
    if not np.issubdtype(indices.dtype, np.integer):
        raise TypeError("embedding indices must be integers")
    data = weight.data[indices]

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            full = np.zeros_like(weight.data)
            np.add.at(full, indices.reshape(-1),
                      grad.reshape(-1, weight.data.shape[-1]))
            weight._accumulate(full)

    return Tensor.make(data, (weight,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            dot = (grad * out).sum(axis=axis, keepdims=True)
            x._accumulate(out * (grad - dot))

    return Tensor.make(out, (x,), backward)


def masked_softmax(x: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax over positions where ``mask`` is True.

    Rows with no valid position produce an all-zero distribution instead of
    NaN.  This is how the bidirectional encoders handle boundary positions
    that have no context on one side (Eq. 25 in the paper: the first
    response uses only the backward direction).
    """
    mask = np.asarray(mask, dtype=bool)
    mask = np.broadcast_to(mask, x.data.shape)
    neg = np.where(mask, x.data, -np.inf)
    # A fully masked row would give exp(-inf - -inf) = nan; guard with 0.
    row_max = neg.max(axis=axis, keepdims=True)
    row_max = np.where(np.isneginf(row_max), 0.0, row_max)
    # exp(-inf) == +0.0, so masked positions zero out without a second
    # select; in-place ops keep the big (B, H, L, L) attention temporaries
    # to a single allocation.
    np.subtract(neg, row_max, out=neg)
    exp = np.exp(neg, out=neg)
    denom = exp.sum(axis=axis, keepdims=True)
    safe = np.where(denom == 0.0, 1.0, denom)
    out = np.divide(exp, safe, out=exp)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            dot = (grad * out).sum(axis=axis, keepdims=True)
            x._accumulate(out * (grad - dot))

    return Tensor.make(out, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_sum

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            softmax_vals = np.exp(out)
            x._accumulate(grad - softmax_vals * grad.sum(axis=axis, keepdims=True))

    return Tensor.make(out, (x,), backward)


def dropout(x: Tensor, rate: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout: scales kept activations by ``1 / (1 - rate)``."""
    if not training or rate <= 0.0:
        return x
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    keep = (rng.random(x.data.shape) >= rate) / (1.0 - rate)
    data = x.data * keep

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * keep)

    return Tensor.make(data, (x,), backward)


def binary_cross_entropy(probs: Tensor, targets: np.ndarray,
                         weights: Optional[np.ndarray] = None,
                         eps: float = 1e-7) -> Tensor:
    """Mean binary cross-entropy between probabilities and 0/1 targets.

    ``weights`` (same shape) can zero out padded positions; the mean is
    taken over the total weight so padding does not dilute the loss.
    """
    targets = np.asarray(targets, dtype=np.float64)
    clipped = probs.clip(eps, 1.0 - eps)
    losses = -(Tensor(targets) * clipped.log()
               + Tensor(1.0 - targets) * (1.0 - clipped).log())
    if weights is None:
        return losses.mean()
    weights = np.asarray(weights, dtype=np.float64)
    total = max(weights.sum(), 1.0)
    return (losses * Tensor(weights)).sum() * (1.0 / total)
