"""Weight initialization schemes.

The initializers take an explicit ``numpy.random.Generator`` so every model
in the repository is reproducible from a single seed (the experiment
harness derives per-model generators from the run seed).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .tensor import Tensor


def uniform(shape: Tuple[int, ...], low: float, high: float,
            rng: np.random.Generator, requires_grad: bool = True) -> Tensor:
    return Tensor(rng.uniform(low, high, size=shape), requires_grad=requires_grad)


def normal(shape: Tuple[int, ...], std: float, rng: np.random.Generator,
           requires_grad: bool = True) -> Tensor:
    return Tensor(rng.normal(0.0, std, size=shape), requires_grad=requires_grad)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator,
                   requires_grad: bool = True) -> Tensor:
    """Glorot/Xavier uniform; fan counts use the trailing two dimensions."""
    fan_in = shape[-2] if len(shape) >= 2 else shape[-1]
    fan_out = shape[-1]
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return uniform(shape, -bound, bound, rng, requires_grad)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator,
                    requires_grad: bool = True) -> Tensor:
    """He uniform for ReLU networks."""
    fan_in = shape[-2] if len(shape) >= 2 else shape[-1]
    bound = np.sqrt(6.0 / fan_in)
    return uniform(shape, -bound, bound, rng, requires_grad)


def zeros(shape: Tuple[int, ...], requires_grad: bool = True) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape: Tuple[int, ...], requires_grad: bool = True) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)
