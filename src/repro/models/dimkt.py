"""DIMKT — Difficulty-Matching Knowledge Tracing (Shen et al., SIGIR 2022).

"A state-of-the-art RNN-based DLKT method that fully exploits the question
difficulty in KT" (paper Sec. V-A3).  Question and concept difficulty are
*discretized statistics of the training data* (historical correct rates
binned into levels), embedded, and fused with the knowledge state through
the model's three gates:

* **SDF** — subjective difficulty feeling of the student facing the
  question,
* **PKA** — personalized knowledge acquisition given the response,
* **KSU** — knowledge state update combining the two.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro import nn
from repro.data import Batch, KTDataset
from repro.tensor import Tensor, concat, stack

from .base import InteractionEmbedder, SequentialKTModel


def compute_difficulty_levels(dataset: KTDataset, num_questions: int,
                              num_concepts: int,
                              bins: int = 10) -> Tuple[np.ndarray, np.ndarray]:
    """Bin historic correct rates into ``1..bins`` difficulty levels.

    Index 0 (padding / unseen) gets the median level, so questions never
    observed in training fall back to "average difficulty" instead of an
    arbitrary extreme.
    """
    question_correct = np.zeros(num_questions + 1)
    question_count = np.zeros(num_questions + 1)
    concept_correct = np.zeros(num_concepts + 1)
    concept_count = np.zeros(num_concepts + 1)
    for sequence in dataset:
        for interaction in sequence:
            question_correct[interaction.question_id] += interaction.correct
            question_count[interaction.question_id] += 1
            for concept in interaction.concept_ids:
                concept_correct[concept] += interaction.correct
                concept_count[concept] += 1

    def to_levels(correct, count):
        rates = np.where(count > 0, correct / np.maximum(count, 1), 0.5)
        # Difficulty = 1 - correct rate; level 1 easiest, ``bins`` hardest.
        levels = np.ceil((1.0 - rates) * bins).astype(np.int64)
        levels = np.clip(levels, 1, bins)
        levels[count == 0] = (bins + 1) // 2
        return levels

    return to_levels(question_correct, question_count), \
        to_levels(concept_correct, concept_count)


class DIMKT(SequentialKTModel):
    """Difficulty-aware gated recurrent knowledge tracer."""

    def __init__(self, num_questions: int, num_concepts: int, dim: int,
                 rng: np.random.Generator,
                 question_difficulty: np.ndarray,
                 concept_difficulty: np.ndarray,
                 bins: int = 10, dropout: float = 0.0):
        super().__init__()
        if len(question_difficulty) != num_questions + 1:
            raise ValueError("question_difficulty must cover ids 0..num_questions")
        self.dim = dim
        self.embedder = InteractionEmbedder(num_questions, num_concepts, dim, rng)
        self.question_difficulty = np.asarray(question_difficulty, dtype=np.int64)
        self.concept_difficulty = np.asarray(concept_difficulty, dtype=np.int64)
        self.qdiff_embedding = nn.Embedding(bins + 1, dim, rng)
        self.cdiff_embedding = nn.Embedding(bins + 1, dim, rng)
        # Gates (SDF / PKA / KSU) and the prediction head.
        self.sdf_gate = nn.Linear(2 * dim, dim, rng)
        self.sdf_cand = nn.Linear(2 * dim, dim, rng)
        self.pka_gate = nn.Linear(2 * dim, dim, rng)
        self.pka_cand = nn.Linear(2 * dim, dim, rng)
        self.ksu_gate = nn.Linear(3 * dim, dim, rng)
        self.head = nn.MLP([2 * dim, dim, 1], rng, dropout=dropout)

    @classmethod
    def from_dataset(cls, train: KTDataset, num_questions: int,
                     num_concepts: int, dim: int, rng: np.random.Generator,
                     bins: int = 10, dropout: float = 0.0) -> "DIMKT":
        """Build with difficulty levels estimated from ``train``."""
        qd, cd = compute_difficulty_levels(train, num_questions,
                                           num_concepts, bins)
        return cls(num_questions, num_concepts, dim, rng, qd, cd,
                   bins=bins, dropout=dropout)

    def _difficulty_vectors(self, batch: Batch) -> Tensor:
        qd = self.question_difficulty[batch.questions]
        # Concept difficulty of the primary (first) concept.
        cd = self.concept_difficulty[batch.concepts[:, :, 0]]
        return self.qdiff_embedding(qd) + self.cdiff_embedding(cd)

    def forward(self, batch: Batch) -> Tensor:
        questions = self.embedder.question_vectors(batch)
        difficulty = self._difficulty_vectors(batch)
        value = questions + difficulty                       # v_t
        response = self.embedder.response_embedding(batch.responses)

        batch_size, length = batch.questions.shape
        hidden = Tensor(np.zeros((batch_size, self.dim)))
        probabilities = []
        for t in range(length):
            v_t = value[:, t, :]
            hv = concat([hidden, v_t], axis=-1)
            # Prediction BEFORE seeing the response at t.
            prob = self.head(hv).squeeze(-1).sigmoid()
            probabilities.append(prob)
            # SDF: how difficult this question feels given the state.
            sdf = self.sdf_gate(hv).sigmoid() * self.sdf_cand(hv).tanh()
            # PKA: what was actually acquired given the observed response.
            sr = concat([sdf, response[:, t, :]], axis=-1)
            pka = self.pka_gate(sr).sigmoid() * self.pka_cand(sr).tanh()
            # KSU: gated state update.
            gate = self.ksu_gate(concat([hidden, v_t, response[:, t, :]],
                                        axis=-1)).sigmoid()
            hidden = gate * hidden + (1.0 - gate) * pka
        return stack(probabilities, axis=1)
