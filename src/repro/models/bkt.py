"""BKT — Bayesian Knowledge Tracing (Corbett & Anderson, 1994).

The classic HMM baseline the paper's Background (Sec. II-A1) builds on: a
two-state hidden Markov model per knowledge concept with parameters

* ``p_init``  — probability the concept starts mastered,
* ``p_learn`` — probability of transitioning to mastered after practice,
* ``p_guess`` — probability of a correct answer while unmastered,
* ``p_slip``  — probability of an incorrect answer while mastered.

Parameters are fitted per concept with expectation-maximization on the
training sequences.  (BKT is not in Table IV's baseline list; it is
provided for completeness and the ablation narrative.)
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.data import KTDataset, StudentSequence

from .base import ProbabilisticKTModel


@dataclass
class BKTParameters:
    p_init: float = 0.3
    p_learn: float = 0.2
    p_guess: float = 0.2
    p_slip: float = 0.1

    def clipped(self) -> "BKTParameters":
        """Keep parameters in the identifiable region (guess+slip < 1)."""
        return BKTParameters(
            p_init=float(np.clip(self.p_init, 0.01, 0.99)),
            p_learn=float(np.clip(self.p_learn, 0.01, 0.99)),
            p_guess=float(np.clip(self.p_guess, 0.01, 0.45)),
            p_slip=float(np.clip(self.p_slip, 0.01, 0.45)),
        )


def _forward_backward(responses: np.ndarray, params: BKTParameters):
    """Standard two-state HMM smoothing; returns P(mastered_t | all obs)."""
    n = len(responses)
    emit = np.empty((n, 2))  # emission prob of observed response per state
    emit[:, 0] = np.where(responses == 1, params.p_guess, 1 - params.p_guess)
    emit[:, 1] = np.where(responses == 1, 1 - params.p_slip, params.p_slip)
    transition = np.array([[1 - params.p_learn, params.p_learn],
                           [0.0, 1.0]])  # no forgetting in classic BKT

    alpha = np.empty((n, 2))
    alpha[0] = np.array([1 - params.p_init, params.p_init]) * emit[0]
    alpha[0] /= alpha[0].sum()
    for t in range(1, n):
        alpha[t] = (alpha[t - 1] @ transition) * emit[t]
        alpha[t] /= alpha[t].sum()

    beta = np.ones((n, 2))
    for t in range(n - 2, -1, -1):
        beta[t] = transition @ (emit[t + 1] * beta[t + 1])
        beta[t] /= beta[t].sum()

    gamma = alpha * beta
    gamma /= gamma.sum(axis=1, keepdims=True)
    return alpha, gamma


class BKT(ProbabilisticKTModel):
    """Per-concept Bayesian Knowledge Tracing fitted with EM."""

    def __init__(self, em_iterations: int = 10):
        self.em_iterations = em_iterations
        self.params: Dict[int, BKTParameters] = {}
        self._default = BKTParameters()

    # ------------------------------------------------------------------
    def fit(self, dataset: KTDataset) -> "BKT":
        per_concept: Dict[int, List[np.ndarray]] = defaultdict(list)
        for sequence in dataset:
            streams: Dict[int, List[int]] = defaultdict(list)
            for interaction in sequence:
                streams[interaction.concept_ids[0]].append(interaction.correct)
            for concept, responses in streams.items():
                if len(responses) >= 2:
                    per_concept[concept].append(np.asarray(responses))
        for concept, series in per_concept.items():
            self.params[concept] = self._fit_concept(series)
        return self

    def _fit_concept(self, series: List[np.ndarray]) -> BKTParameters:
        params = BKTParameters()
        for _ in range(self.em_iterations):
            init_num = learn_num = learn_den = 0.0
            guess_num = guess_den = slip_num = slip_den = 0.0
            for responses in series:
                _, gamma = _forward_backward(responses, params)
                init_num += gamma[0, 1]
                # Transition statistics (unmastered at t -> mastered at t+1).
                unmastered = gamma[:-1, 0]
                learn_den += unmastered.sum()
                learn_num += (unmastered * gamma[1:, 1]).sum()
                guess_den += gamma[:, 0].sum()
                guess_num += (gamma[:, 0] * (responses == 1)).sum()
                slip_den += gamma[:, 1].sum()
                slip_num += (gamma[:, 1] * (responses == 0)).sum()
            count = len(series)
            params = BKTParameters(
                p_init=init_num / max(count, 1),
                p_learn=learn_num / max(learn_den, 1e-9),
                p_guess=guess_num / max(guess_den, 1e-9),
                p_slip=slip_num / max(slip_den, 1e-9),
            ).clipped()
        return params

    # ------------------------------------------------------------------
    def predict_sequence(self, sequence: StudentSequence) -> np.ndarray:
        """P(correct) per position, filtering on prior responses only."""
        mastery: Dict[int, float] = {}
        predictions = np.empty(len(sequence))
        for index, interaction in enumerate(sequence):
            concept = interaction.concept_ids[0]
            params = self.params.get(concept, self._default)
            state = mastery.get(concept, params.p_init)
            predictions[index] = (state * (1 - params.p_slip)
                                  + (1 - state) * params.p_guess)
            # Bayes update on the observed response, then learning step.
            if interaction.correct:
                numerator = state * (1 - params.p_slip)
                denominator = numerator + (1 - state) * params.p_guess
            else:
                numerator = state * params.p_slip
                denominator = numerator + (1 - state) * (1 - params.p_guess)
            posterior = numerator / max(denominator, 1e-9)
            mastery[concept] = posterior + (1 - posterior) * params.p_learn
        return predictions
