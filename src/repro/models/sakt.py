"""SAKT — Self-Attentive Knowledge Tracing (Pandey & Karypis, EDM 2019).

The first transformer KT model: the target question embedding is the
attention *query* over past interaction embeddings (keys/values) under a
strict causal mask, followed by a feed-forward block and prediction head.

``SAKTPlus`` is the paper's Fig. 6 comparator "SAKT+ which is an improved
version of SAKT adding question ID embeddings"; here the base model already
embeds question ids (Eq. 23), so SAKT+ additionally *exposes averaged
attention weights over heads* for the interpretability comparison, and adds
the question embedding residually to the attended context.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.data import Batch
from repro.tensor import Tensor, concat

from .base import InteractionEmbedder, SequentialKTModel


class SAKT(SequentialKTModel):
    """Transformer KT model with question-as-query cross attention."""

    def __init__(self, num_questions: int, num_concepts: int, dim: int,
                 rng: np.random.Generator, heads: int = 2, layers: int = 1,
                 dropout: float = 0.0, max_length: int = 512):
        super().__init__()
        self.embedder = InteractionEmbedder(num_questions, num_concepts, dim, rng)
        self.positions = nn.PositionalEncoding(max_length, dim)
        self.blocks = nn.ModuleList([
            nn.TransformerBlock(dim, heads, rng, dropout=dropout)
            for _ in range(layers)
        ])
        self.head = nn.MLP([2 * dim, dim, 1], rng, dropout=dropout)

    def _attend(self, batch: Batch) -> Tensor:
        interactions = self.positions(self.embedder.interaction_vectors(batch))
        queries = self.embedder.question_vectors(batch)
        mask = nn.causal_mask(batch.length, strict=True)
        mask = mask[None, None] & batch.mask[:, None, None, :]
        state = queries
        for block in self.blocks:
            state = block(state, mask=mask, context=interactions)
        return state

    def forward(self, batch: Batch) -> Tensor:
        context = self._attend(batch)
        questions = self.embedder.question_vectors(batch)
        logits = self.head(concat([context, questions], axis=-1)).squeeze(-1)
        return logits.sigmoid()

    @property
    def last_attention(self) -> Optional[np.ndarray]:
        """Attention weights of the final block, shape ``(B, H, L, L)``."""
        return self.blocks[len(self.blocks) - 1].attention.last_weights


class SAKTPlus(SAKT):
    """SAKT with a residual question-embedding path and an attention probe."""

    def forward(self, batch: Batch) -> Tensor:
        context = self._attend(batch)
        questions = self.embedder.question_vectors(batch)
        enriched = context + questions
        logits = self.head(concat([enriched, questions], axis=-1)).squeeze(-1)
        return logits.sigmoid()

    def attention_to_history(self, batch: Batch) -> np.ndarray:
        """Head-averaged attention of each target over past responses.

        This is the quantity Fig. 6 reports in its ``Att.`` column: how much
        attention the model pays to each historical response when predicting
        the target (the last real position of each sequence).
        """
        self.predict_proba(batch)  # populate last_weights
        weights = self.last_attention  # (B, H, L, L)
        return weights.mean(axis=1)
