"""IKT — Interpretable Knowledge Tracing (Minn et al., AAAI 2022).

A non-neural, interpretable baseline: a Tree-Augmented Naive Bayes (TAN)
classifier over three causally meaningful features (paper Sec. V-A3):

* **skill mastery** — the student's smoothed success rate on the question's
  concepts so far,
* **ability profile** — the student's recent overall success rate,
* **problem difficulty** — the question's historical success rate in the
  training data.

All three are discretized; the TAN structure is the Chow-Liu tree over
class-conditional mutual information (built with ``networkx``), which
augments naive Bayes with one feature-to-feature dependency per node.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.data import KTDataset, StudentSequence

from .base import ProbabilisticKTModel

_SMOOTH = 1.0  # Laplace smoothing for every CPT


class _FeatureExtractor:
    """Online discretized features for one student's sequence."""

    def __init__(self, question_rate: Dict[int, float], mastery_bins: int,
                 ability_bins: int, difficulty_bins: int,
                 ability_window: int):
        self.question_rate = question_rate
        self.mastery_bins = mastery_bins
        self.ability_bins = ability_bins
        self.difficulty_bins = difficulty_bins
        self.ability_window = ability_window

    def extract(self, sequence: StudentSequence) -> List[Tuple[int, int, int]]:
        """One (mastery, ability, difficulty) triple per position."""
        concept_correct: Dict[int, float] = defaultdict(float)
        concept_count: Dict[int, float] = defaultdict(float)
        recent: List[int] = []
        features = []
        for interaction in sequence:
            concepts = interaction.concept_ids
            mastery_rates = [
                (concept_correct[c] + _SMOOTH) / (concept_count[c] + 2 * _SMOOTH)
                for c in concepts
            ]
            mastery = float(np.mean(mastery_rates))
            window = recent[-self.ability_window:]
            ability = (sum(window) + _SMOOTH) / (len(window) + 2 * _SMOOTH)
            difficulty = 1.0 - self.question_rate.get(interaction.question_id, 0.5)
            features.append((
                self._bin(mastery, self.mastery_bins),
                self._bin(ability, self.ability_bins),
                self._bin(difficulty, self.difficulty_bins),
            ))
            # Update running state AFTER emitting the feature (causality).
            for c in concepts:
                concept_correct[c] += interaction.correct
                concept_count[c] += 1
            recent.append(interaction.correct)
        return features

    @staticmethod
    def _bin(value: float, bins: int) -> int:
        return int(min(bins - 1, max(0, np.floor(value * bins))))


class TANClassifier:
    """Tree-Augmented Naive Bayes over discrete features."""

    def __init__(self, feature_cards: List[int]):
        self.feature_cards = feature_cards
        self.parents: List[Optional[int]] = [None] * len(feature_cards)
        self.class_prior = np.full(2, 0.5)
        self._tables: List[np.ndarray] = []

    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "TANClassifier":
        n_features = features.shape[1]
        self.parents = self._learn_structure(features, labels)
        counts = np.bincount(labels, minlength=2).astype(np.float64)
        self.class_prior = (counts + _SMOOTH) / (counts.sum() + 2 * _SMOOTH)
        self._tables = []
        for i in range(n_features):
            card = self.feature_cards[i]
            parent = self.parents[i]
            parent_card = 1 if parent is None else self.feature_cards[parent]
            table = np.full((2, parent_card, card), _SMOOTH)
            parent_values = (np.zeros(len(labels), dtype=np.int64)
                             if parent is None else features[:, parent])
            np.add.at(table, (labels, parent_values, features[:, i]), 1.0)
            table /= table.sum(axis=2, keepdims=True)
            self._tables.append(table)
        return self

    def _learn_structure(self, features: np.ndarray,
                         labels: np.ndarray) -> List[Optional[int]]:
        """Chow-Liu tree over class-conditional mutual information."""
        n_features = features.shape[1]
        graph = nx.Graph()
        graph.add_nodes_from(range(n_features))
        for i in range(n_features):
            for j in range(i + 1, n_features):
                cmi = self._conditional_mutual_information(
                    features[:, i], features[:, j], labels,
                    self.feature_cards[i], self.feature_cards[j])
                graph.add_edge(i, j, weight=cmi)
        tree = nx.maximum_spanning_tree(graph)
        parents: List[Optional[int]] = [None] * n_features
        if tree.number_of_edges():
            root = 0
            for parent, child in nx.bfs_edges(tree, root):
                parents[child] = parent
        return parents

    @staticmethod
    def _conditional_mutual_information(x: np.ndarray, y: np.ndarray,
                                        z: np.ndarray, card_x: int,
                                        card_y: int) -> float:
        """I(X; Y | Z) for discrete variables with add-one smoothing."""
        total = len(z) + _SMOOTH * card_x * card_y * 2
        joint = np.full((2, card_x, card_y), _SMOOTH)
        np.add.at(joint, (z, x, y), 1.0)
        joint /= total
        pz = joint.sum(axis=(1, 2), keepdims=True)
        px_z = joint.sum(axis=2, keepdims=True)
        py_z = joint.sum(axis=1, keepdims=True)
        ratio = joint * pz / (px_z * py_z)
        return float((joint * np.log(ratio)).sum())

    # ------------------------------------------------------------------
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """P(y=1 | x) for each row of ``features``."""
        log_posterior = np.tile(np.log(self.class_prior), (len(features), 1))
        for i, table in enumerate(self._tables):
            parent = self.parents[i]
            parent_values = (np.zeros(len(features), dtype=np.int64)
                             if parent is None else features[:, parent])
            for klass in (0, 1):
                log_posterior[:, klass] += np.log(
                    table[klass, parent_values, features[:, i]])
        log_posterior -= log_posterior.max(axis=1, keepdims=True)
        posterior = np.exp(log_posterior)
        posterior /= posterior.sum(axis=1, keepdims=True)
        return posterior[:, 1]


class IKT(ProbabilisticKTModel):
    """TAN over (skill mastery, ability profile, problem difficulty)."""

    def __init__(self, mastery_bins: int = 6, ability_bins: int = 6,
                 difficulty_bins: int = 10, ability_window: int = 10):
        self.mastery_bins = mastery_bins
        self.ability_bins = ability_bins
        self.difficulty_bins = difficulty_bins
        self.ability_window = ability_window
        self._extractor: Optional[_FeatureExtractor] = None
        self._classifier: Optional[TANClassifier] = None

    def fit(self, dataset: KTDataset) -> "IKT":
        question_rate = self._question_rates(dataset)
        self._extractor = _FeatureExtractor(
            question_rate, self.mastery_bins, self.ability_bins,
            self.difficulty_bins, self.ability_window)
        rows, labels = [], []
        for sequence in dataset:
            feats = self._extractor.extract(sequence)
            for feature, interaction in zip(feats, sequence):
                rows.append(feature)
                labels.append(interaction.correct)
        features = np.asarray(rows, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.int64)
        self._classifier = TANClassifier(
            [self.mastery_bins, self.ability_bins, self.difficulty_bins])
        self._classifier.fit(features, labels)
        return self

    def predict_sequence(self, sequence: StudentSequence) -> np.ndarray:
        if self._classifier is None or self._extractor is None:
            raise RuntimeError("IKT.predict_sequence called before fit")
        features = np.asarray(self._extractor.extract(sequence), dtype=np.int64)
        return self._classifier.predict_proba(features)

    @staticmethod
    def _question_rates(dataset: KTDataset) -> Dict[int, float]:
        correct: Dict[int, float] = defaultdict(float)
        count: Dict[int, float] = defaultdict(float)
        for sequence in dataset:
            for interaction in sequence:
                correct[interaction.question_id] += interaction.correct
                count[interaction.question_id] += 1
        return {q: (correct[q] + _SMOOTH) / (count[q] + 2 * _SMOOTH)
                for q in count}
