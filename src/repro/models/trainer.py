"""Training loop for left-to-right sequential KT models.

Implements the paper's protocol pieces that apply to every neural model:
Adam optimization, l2 weight decay, validation-AUC early stopping with a
10-epoch patience, and best-epoch weight restoration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.data import KTDataset, iterate_batches
from repro.eval import EarlyStopping, accuracy_score, auc_score
from repro.optim import Adam, clip_grad_norm

from .base import (ProbabilisticKTModel, SequentialKTModel,
                   gather_predictions)


@dataclass
class TrainConfig:
    """Hyper-parameters for one training run."""

    epochs: int = 30
    batch_size: int = 32
    lr: float = 1e-3
    weight_decay: float = 0.0
    patience: int = 10
    grad_clip: float = 5.0
    seed: int = 0
    verbose: bool = False


@dataclass
class TrainResult:
    """Per-epoch history plus the restored best validation score."""

    train_losses: List[float] = field(default_factory=list)
    val_aucs: List[float] = field(default_factory=list)
    best_val_auc: float = 0.0
    best_epoch: int = -1


def evaluate_sequential(model: SequentialKTModel, dataset: KTDataset,
                        batch_size: int = 64) -> Dict[str, float]:
    """AUC/ACC of a sequential model over all valid prediction positions."""
    labels, scores = gather_predictions(model, dataset, batch_size)
    return {"auc": auc_score(labels, scores),
            "acc": accuracy_score(labels, scores)}


def evaluate_probabilistic(model: ProbabilisticKTModel,
                           dataset: KTDataset) -> Dict[str, float]:
    """AUC/ACC of a fit-based model, skipping each sequence's first position
    (no history) to match the sequential convention."""
    labels, scores = [], []
    for sequence in dataset:
        probs = model.predict_sequence(sequence)
        labels.extend(sequence.responses[1:])
        scores.extend(probs[1:])
    labels = np.asarray(labels, dtype=np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    return {"auc": auc_score(labels, scores),
            "acc": accuracy_score(labels, scores)}


def fit_sequential(model: SequentialKTModel, train: KTDataset,
                   validation: Optional[KTDataset] = None,
                   config: Optional[TrainConfig] = None) -> TrainResult:
    """Train with Adam + early stopping on validation AUC."""
    config = config or TrainConfig()
    optimizer = Adam(model.parameters(), lr=config.lr,
                     weight_decay=config.weight_decay)
    stopper = EarlyStopping(patience=config.patience)
    result = TrainResult()
    shuffle_rng = np.random.default_rng(config.seed)

    for epoch in range(config.epochs):
        model.train()
        epoch_losses = []
        for batch in iterate_batches(list(train), config.batch_size,
                                     rng=shuffle_rng):
            optimizer.zero_grad()
            loss = model.loss(batch)
            loss.backward()
            if config.grad_clip:
                clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            epoch_losses.append(loss.item())
        result.train_losses.append(float(np.mean(epoch_losses)))

        if validation is not None and len(validation):
            metrics = evaluate_sequential(model, validation)
            result.val_aucs.append(metrics["auc"])
            if config.verbose:
                print(f"epoch {epoch:3d}  loss {result.train_losses[-1]:.4f}  "
                      f"val auc {metrics['auc']:.4f}")
            if stopper.update(metrics["auc"], epoch, model.state_dict()):
                break

    if stopper.should_restore:
        model.load_state_dict(stopper.best_state)
        result.best_val_auc = stopper.best_value
        result.best_epoch = stopper.best_epoch
    elif result.val_aucs:
        result.best_val_auc = max(result.val_aucs)
        result.best_epoch = int(np.argmax(result.val_aucs))
    return result
