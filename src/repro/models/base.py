"""Shared model interfaces and the Eq. 23-24 interaction embedder.

Every *sequential* baseline (DKT, SAKT, AKT, DIMKT, QIKT) implements
:class:`SequentialKTModel`: given a padded batch it returns, per position
``i``, the probability that the student answers question ``q_i`` correctly
using only interactions ``< i`` (left-to-right causality).  Position 0 has
no history and is excluded from losses and metrics via
:func:`prediction_mask`.

Non-neural baselines (IKT, BKT) implement :class:`ProbabilisticKTModel`
with ``fit(dataset)`` / ``predict_sequence(sequence)`` instead.
"""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np

from repro import nn
from repro.data import Batch, KTDataset, StudentSequence, collate
from repro.tensor import Tensor, no_grad

MASKED_RESPONSE = 2  # the third response category of Eq. 24


class InteractionEmbedder(nn.Module):
    """Implements Eq. 23-24 of the paper.

    Question embedding fused with the mean of its concept embeddings::

        e_i = q_i + (1/|K_i|) * sum_j k_j                       (Eq. 23)

    and the response embedding added on top, with *three* response
    categories — incorrect (0), correct (1), masked/unknown (2)::

        a_i = e_i + r_i                                          (Eq. 24)

    The masked category is what the counterfactual sequence construction
    uses to hide responses whose correctness is unknown after an
    intervention.
    """

    def __init__(self, num_questions: int, num_concepts: int, dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.dim = dim
        # +1 for padding id 0.
        self.question_embedding = nn.Embedding(num_questions + 1, dim, rng)
        self.concept_embedding = nn.Embedding(num_concepts + 1, dim, rng)
        self.response_embedding = nn.Embedding(3, dim, rng)

    def question_vectors(self, batch: Batch) -> Tensor:
        """``e_i`` for every position: question id + mean concept ids.

        Padded concept slots (id 0 beyond each step's real count) are
        excluded from the sum: the pad embedding row is *not* zero, so
        without the mask the vector would depend on how wide the batch
        happened to be collated — the same interaction would embed
        differently across batches, which both violates Eq. 23 and makes
        per-student caching (``repro.serve``) unsound.
        """
        question = self.question_embedding(batch.questions)
        real = (batch.concepts != 0)[..., None].astype(np.float64)
        concept_sum = (self.concept_embedding(batch.concepts)
                       * Tensor(real)).sum(axis=2)
        counts = batch.concept_counts[..., None].astype(np.float64)
        return question + concept_sum * Tensor(1.0 / counts)

    def interaction_vectors(self, batch: Batch,
                            responses: np.ndarray = None) -> Tensor:
        """``a_i`` for every position; ``responses`` may override the batch's
        own correctness (used for counterfactual/masked variants)."""
        if responses is None:
            responses = batch.responses
        return self.question_vectors(batch) + self.response_embedding(responses)


def prediction_mask(batch: Batch) -> np.ndarray:
    """Positions with a defined left-to-right prediction: real and not first."""
    mask = batch.mask.copy()
    mask[:, 0] = False
    return mask


class SequentialKTModel(nn.Module, abc.ABC):
    """Left-to-right DLKT model."""

    @abc.abstractmethod
    def forward(self, batch: Batch) -> Tensor:
        """Return ``(B, L)`` probabilities of a correct answer per position."""

    def predict_proba(self, batch: Batch) -> np.ndarray:
        """Inference-mode probabilities as a plain array."""
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                probs = self.forward(batch).data
        finally:
            if was_training:
                self.train()
        return probs

    def loss(self, batch: Batch) -> Tensor:
        """Masked BCE over valid prediction positions."""
        from repro.tensor import binary_cross_entropy
        probs = self.forward(batch)
        weights = prediction_mask(batch).astype(np.float64)
        return binary_cross_entropy(probs, batch.responses.astype(np.float64),
                                    weights=weights)


class ProbabilisticKTModel(abc.ABC):
    """Non-neural KT model fitted in closed form / EM over a dataset."""

    @abc.abstractmethod
    def fit(self, dataset: KTDataset) -> "ProbabilisticKTModel":
        ...

    @abc.abstractmethod
    def predict_sequence(self, sequence: StudentSequence) -> np.ndarray:
        """Probability of correct for each position given prior history."""


def gather_predictions(model: SequentialKTModel, dataset: KTDataset,
                       batch_size: int = 64) -> Tuple[np.ndarray, np.ndarray]:
    """Collect (labels, scores) over all valid prediction positions."""
    labels, scores = [], []
    sequences = list(dataset)
    for start in range(0, len(sequences), batch_size):
        batch = collate(sequences[start:start + batch_size])
        probs = model.predict_proba(batch)
        valid = prediction_mask(batch)
        labels.append(batch.responses[valid].astype(np.float64))
        scores.append(probs[valid])
    return np.concatenate(labels), np.concatenate(scores)
