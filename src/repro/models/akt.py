"""AKT — Context-Aware Attentive Knowledge Tracing (Ghosh et al., KDD 2020).

Two signature components, both reproduced here:

* **Monotonic attention** — attention logits decay exponentially with the
  distance between query and key positions (older evidence counts less);
  implemented by :class:`repro.nn.MultiHeadAttention` with
  ``monotonic=True``.
* **Rasch-model embeddings** — a question is its concept embedding plus a
  scalar per-question difficulty ``mu_q`` times a concept *variation*
  vector: ``e_q = c + mu_q * d``; interactions get an analogous
  ``mu_q * f`` term.

Architecture: a question self-attention stack and a knowledge (interaction)
self-attention stack, then a knowledge-retriever cross attention where
queries/keys are question states and values are knowledge states, under a
strict causal mask.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.data import Batch
from repro.tensor import Tensor, concat, embedding

from .base import SequentialKTModel


class RaschEmbedder(nn.Module):
    """Rasch (1PL) question/interaction embeddings with a difficulty scalar."""

    def __init__(self, num_questions: int, num_concepts: int, dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.dim = dim
        self.concept_embedding = nn.Embedding(num_concepts + 1, dim, rng)
        self.concept_variation = nn.Embedding(num_concepts + 1, dim, rng)
        self.response_embedding = nn.Embedding(3, dim, rng)
        self.response_variation = nn.Embedding(3, dim, rng)
        # mu_q: scalar difficulty per question (the Rasch scalar).
        self.difficulty = nn.Embedding(num_questions + 1, 1, rng, std=0.01)

    def _mean_concepts(self, table: nn.Embedding, batch: Batch) -> Tensor:
        summed = table(batch.concepts).sum(axis=2)
        counts = batch.concept_counts[..., None].astype(np.float64)
        return summed * Tensor(1.0 / counts)

    def question_vectors(self, batch: Batch) -> Tensor:
        """``e_q = c_bar + mu_q * d_bar``."""
        base = self._mean_concepts(self.concept_embedding, batch)
        variation = self._mean_concepts(self.concept_variation, batch)
        mu = self.difficulty(batch.questions)          # (B, L, 1)
        return base + mu * variation

    def interaction_vectors(self, batch: Batch,
                            responses: np.ndarray = None) -> Tensor:
        """``a = e_q + r + mu_q * f_r`` with the 3-category response space."""
        if responses is None:
            responses = batch.responses
        mu = self.difficulty(batch.questions)
        response = embedding(self.response_embedding.weight, responses)
        response_var = embedding(self.response_variation.weight, responses)
        return self.question_vectors(batch) + response + mu * response_var


class AKT(SequentialKTModel):
    """Monotonic-attention KT model with Rasch embeddings."""

    def __init__(self, num_questions: int, num_concepts: int, dim: int,
                 rng: np.random.Generator, heads: int = 2, layers: int = 1,
                 dropout: float = 0.0):
        super().__init__()
        self.embedder = RaschEmbedder(num_questions, num_concepts, dim, rng)
        self.question_encoder = nn.ModuleList([
            nn.TransformerBlock(dim, heads, rng, dropout=dropout, monotonic=True)
            for _ in range(layers)
        ])
        self.knowledge_encoder = nn.ModuleList([
            nn.TransformerBlock(dim, heads, rng, dropout=dropout, monotonic=True)
            for _ in range(layers)
        ])
        self.retriever = nn.MultiHeadAttention(dim, heads, rng,
                                               dropout=dropout, monotonic=True)
        self.norm = nn.LayerNorm(dim)
        self.head = nn.MLP([2 * dim, dim, 1], rng, dropout=dropout)

    def forward(self, batch: Batch) -> Tensor:
        questions = self.embedder.question_vectors(batch)
        interactions = self.embedder.interaction_vectors(batch)

        # Self-attention may look at the current position (non-strict):
        # contextualizing a question with itself leaks nothing.
        self_mask = nn.causal_mask(batch.length, strict=False)
        self_mask = self_mask[None, None] & batch.mask[:, None, None, :]
        question_state = questions
        for block in self.question_encoder:
            question_state = block(question_state, mask=self_mask)
        knowledge_state = interactions
        for block in self.knowledge_encoder:
            knowledge_state = block(knowledge_state, mask=self_mask)

        # Retrieval must be strictly causal: the value stream contains the
        # response at each position.
        strict = nn.causal_mask(batch.length, strict=True)
        strict = strict[None, None] & batch.mask[:, None, None, :]
        retrieved = self.retriever(question_state, question_state,
                                   knowledge_state, mask=strict)
        retrieved = self.norm(retrieved)

        logits = self.head(concat([retrieved, questions], axis=-1)).squeeze(-1)
        return logits.sigmoid()
