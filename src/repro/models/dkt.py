"""DKT — Deep Knowledge Tracing (Piech et al., NeurIPS 2015).

The pioneering DLKT baseline: an LSTM consumes the interaction sequence and
a prediction head scores the next question.  Following the modern
formulation used by the paper's framework, the input at step ``i`` is the
fused interaction embedding ``a_i`` (Eq. 23-24) and the prediction for
position ``i`` combines the hidden state after step ``i-1`` with the target
question embedding ``e_i`` through an MLP (Eq. 26 shape).
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.data import Batch
from repro.tensor import Tensor, concat

from .base import InteractionEmbedder, SequentialKTModel


class DKT(SequentialKTModel):
    """LSTM knowledge tracer."""

    def __init__(self, num_questions: int, num_concepts: int, dim: int,
                 rng: np.random.Generator, dropout: float = 0.0):
        super().__init__()
        self.embedder = InteractionEmbedder(num_questions, num_concepts, dim, rng)
        self.lstm = nn.LSTM(dim, dim, rng)
        self.head = nn.MLP([2 * dim, dim, 1], rng, dropout=dropout)

    def forward(self, batch: Batch) -> Tensor:
        interactions = self.embedder.interaction_vectors(batch)     # (B, L, d)
        questions = self.embedder.question_vectors(batch)           # (B, L, d)
        hidden = self.lstm(interactions)                            # state after step i
        batch_size, length, dim = hidden.shape
        # Shift: prediction at position i uses the state after step i-1.
        zeros = Tensor(np.zeros((batch_size, 1, dim)))
        history = concat([zeros, hidden[:, :length - 1, :]], axis=1)
        features = concat([history, questions], axis=-1)
        logits = self.head(features).squeeze(-1)
        return logits.sigmoid()
