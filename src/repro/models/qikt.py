"""QIKT — Question-centric Interpretable KT (Chen et al., AAAI 2023).

"An ante-hoc interpretable DLKT method that employs IRT in the prediction
layer from a question-centric level" (paper Sec. V-A3).  An LSTM encodes
the interaction history; the prediction is a *linear combination of three
explainable scalar scores* pushed through a sigmoid (the IRT-style layer):

* ``knowledge_acquisition`` — what the student has absorbed overall,
* ``knowledge_mastery`` — how well the state matches this question's
  concepts,
* ``question_solving`` — the question's intrinsic solvability (negated
  difficulty).

Each scalar is exposed on :meth:`explain` so downstream tooling can report
the interpretable decomposition.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro import nn
from repro.data import Batch
from repro.tensor import Tensor, concat, no_grad

from .base import InteractionEmbedder, SequentialKTModel


class QIKT(SequentialKTModel):
    """LSTM encoder + IRT-style interpretable prediction layer."""

    def __init__(self, num_questions: int, num_concepts: int, dim: int,
                 rng: np.random.Generator, dropout: float = 0.0):
        super().__init__()
        self.embedder = InteractionEmbedder(num_questions, num_concepts, dim, rng)
        self.lstm = nn.LSTM(dim, dim, rng)
        self.acquisition_head = nn.MLP([dim, dim // 2 or 1, 1], rng, dropout=dropout)
        self.mastery_head = nn.MLP([2 * dim, dim // 2 or 1, 1], rng, dropout=dropout)
        self.solving_head = nn.MLP([dim, dim // 2 or 1, 1], rng, dropout=dropout)
        # Learnable IRT mixing weights (initialized to an equal blend).
        self.mix = Tensor(np.array([1.0, 1.0, 1.0]), requires_grad=True)

    def _scores(self, batch: Batch):
        interactions = self.embedder.interaction_vectors(batch)
        questions = self.embedder.question_vectors(batch)
        hidden = self.lstm(interactions)
        batch_size, length, dim = hidden.shape
        zeros = Tensor(np.zeros((batch_size, 1, dim)))
        history = concat([zeros, hidden[:, :length - 1, :]], axis=1)

        acquisition = self.acquisition_head(history).squeeze(-1)
        mastery = self.mastery_head(concat([history, questions], axis=-1)).squeeze(-1)
        solving = self.solving_head(questions).squeeze(-1)
        return acquisition, mastery, solving

    def forward(self, batch: Batch) -> Tensor:
        acquisition, mastery, solving = self._scores(batch)
        logit = (self.mix[0] * acquisition
                 + self.mix[1] * mastery
                 + self.mix[2] * solving)
        return logit.sigmoid()

    def explain(self, batch: Batch) -> Dict[str, np.ndarray]:
        """Per-position interpretable score decomposition."""
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                acquisition, mastery, solving = self._scores(batch)
        finally:
            if was_training:
                self.train()
        return {
            "knowledge_acquisition": acquisition.data,
            "knowledge_mastery": mastery.data,
            "question_solving": solving.data,
            "mix_weights": self.mix.data.copy(),
        }
