"""KTM — Knowledge Tracing Machines (Vie & Kashima, AAAI 2019).

A machine-learning baseline from the paper's background (Sec. II-A1):
*"KTM leverages a factorization machine to explore underlying student and
question features."*  Each interaction becomes a sparse binary feature
vector — student id, question id, concept ids, and PFA-style discretized
win/fail counters per concept — and a second-order factorization machine
predicts correctness:

    logit(x) = w0 + Σ_i w_i x_i + Σ_{i<j} <v_i, v_j> x_i x_j

For binary features the pairwise term reduces to
``0.5 Σ_f [(Σ_i v_if)^2 − Σ_i v_if^2]`` over active features, which is what
the implementation uses.  Training is plain SGD on the log-loss.

KTM is not part of Table IV's baseline list; it is provided for
completeness of the background systems.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

import numpy as np

from repro.data import Interaction, KTDataset, StudentSequence

from .base import ProbabilisticKTModel

_COUNT_BINS = (0, 1, 2, 4, 8, 16)  # discretization for win/fail counters


def _bin_count(count: int) -> int:
    for level, boundary in enumerate(reversed(_COUNT_BINS)):
        if count >= boundary:
            return len(_COUNT_BINS) - 1 - level
    return 0


class KTM(ProbabilisticKTModel):
    """Second-order factorization machine over sparse KT features."""

    def __init__(self, factors: int = 8, lr: float = 0.05,
                 epochs: int = 5, reg: float = 1e-4, seed: int = 0):
        self.factors = factors
        self.lr = lr
        self.epochs = epochs
        self.reg = reg
        self.seed = seed
        self._feature_index: Dict[str, int] = {}
        self.w0 = 0.0
        self.w: np.ndarray = np.zeros(0)
        self.v: np.ndarray = np.zeros((0, factors))

    # ------------------------------------------------------------------
    # Feature construction
    # ------------------------------------------------------------------
    def _feature(self, name: str, grow: bool) -> int:
        if name not in self._feature_index:
            if not grow:
                return -1
            self._feature_index[name] = len(self._feature_index)
        return self._feature_index[name]

    def _features_for(self, sequence: StudentSequence,
                      interaction: Interaction,
                      wins: Dict[int, int], fails: Dict[int, int],
                      grow: bool) -> List[int]:
        names = [f"student:{sequence.student_id}",
                 f"question:{interaction.question_id}"]
        for concept in interaction.concept_ids:
            names.append(f"concept:{concept}")
            names.append(f"wins:{concept}:{_bin_count(wins[concept])}")
            names.append(f"fails:{concept}:{_bin_count(fails[concept])}")
        ids = [self._feature(n, grow) for n in names]
        return [i for i in ids if i >= 0]

    # ------------------------------------------------------------------
    # FM math
    # ------------------------------------------------------------------
    def _logit(self, active: List[int]) -> float:
        linear = self.w[active].sum()
        factor_sum = self.v[active].sum(axis=0)
        factor_sq = (self.v[active] ** 2).sum(axis=0)
        pairwise = 0.5 * float((factor_sum ** 2 - factor_sq).sum())
        return self.w0 + float(linear) + pairwise

    def _sgd_step(self, active: List[int], label: int) -> None:
        logit = self._logit(active)
        prob = 1.0 / (1.0 + np.exp(-np.clip(logit, -30, 30)))
        error = prob - label  # d(logloss)/d(logit)
        self.w0 -= self.lr * error
        factor_sum = self.v[active].sum(axis=0)
        for i in active:
            self.w[i] -= self.lr * (error + self.reg * self.w[i])
            grad_v = error * (factor_sum - self.v[i]) + self.reg * self.v[i]
            self.v[i] -= self.lr * grad_v

    # ------------------------------------------------------------------
    def fit(self, dataset: KTDataset) -> "KTM":
        rng = np.random.default_rng(self.seed)
        # First pass: build the feature space.
        rows: List[List[int]] = []
        labels: List[int] = []
        for sequence in dataset:
            wins: Dict[int, int] = defaultdict(int)
            fails: Dict[int, int] = defaultdict(int)
            for interaction in sequence:
                rows.append(self._features_for(sequence, interaction,
                                               wins, fails, grow=True))
                labels.append(interaction.correct)
                for concept in interaction.concept_ids:
                    if interaction.correct:
                        wins[concept] += 1
                    else:
                        fails[concept] += 1
        count = len(self._feature_index)
        self.w = np.zeros(count)
        self.v = rng.normal(0.0, 0.01, size=(count, self.factors))
        order = np.arange(len(rows))
        for _ in range(self.epochs):
            rng.shuffle(order)
            for index in order:
                self._sgd_step(rows[index], labels[index])
        return self

    def predict_sequence(self, sequence: StudentSequence) -> np.ndarray:
        if self.w.size == 0:
            raise RuntimeError("KTM.predict_sequence called before fit")
        wins: Dict[int, int] = defaultdict(int)
        fails: Dict[int, int] = defaultdict(int)
        probs = np.empty(len(sequence))
        for index, interaction in enumerate(sequence):
            active = self._features_for(sequence, interaction,
                                        wins, fails, grow=False)
            if active:
                logit = self._logit(active)
            else:
                logit = self.w0
            probs[index] = 1.0 / (1.0 + np.exp(-np.clip(logit, -30, 30)))
            for concept in interaction.concept_ids:
                if interaction.correct:
                    wins[concept] += 1
                else:
                    fails[concept] += 1
        return probs
