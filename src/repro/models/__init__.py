"""Baseline knowledge-tracing models (paper Sec. V-A3).

Neural (left-to-right): DKT, SAKT, SAKT+, AKT, DIMKT, QIKT.
Non-neural: IKT (tree-augmented naive Bayes), BKT (classic HMM).
"""

from .akt import AKT, RaschEmbedder
from .base import (InteractionEmbedder, MASKED_RESPONSE, ProbabilisticKTModel,
                   SequentialKTModel, gather_predictions, prediction_mask)
from .bkt import BKT, BKTParameters
from .dimkt import DIMKT, compute_difficulty_levels
from .dkt import DKT
from .ikt import IKT, TANClassifier
from .ktm import KTM
from .qikt import QIKT
from .sakt import SAKT, SAKTPlus
from .trainer import (TrainConfig, TrainResult, evaluate_probabilistic,
                      evaluate_sequential, fit_sequential)

__all__ = [
    "SequentialKTModel", "ProbabilisticKTModel", "InteractionEmbedder",
    "MASKED_RESPONSE", "prediction_mask", "gather_predictions",
    "DKT", "SAKT", "SAKTPlus", "AKT", "RaschEmbedder",
    "DIMKT", "compute_difficulty_levels",
    "IKT", "TANClassifier", "KTM", "QIKT", "BKT", "BKTParameters",
    "TrainConfig", "TrainResult", "fit_sequential",
    "evaluate_sequential", "evaluate_probabilistic",
]
