"""``python -m repro.obs`` — terminal snapshot of a live metrics endpoint.

Fetches ``GET /v1/metrics`` from a gateway, router, or worker and
renders the registry as fixed-width tables (the
``repro.interpret.ascii_plots`` renderer), plus the most recent spans:

    python -m repro.obs --url http://127.0.0.1:8080
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.request


def fetch_snapshot(url: str, timeout: float = 10.0) -> dict:
    endpoint = url.rstrip("/") + "/v1/metrics"
    with urllib.request.urlopen(endpoint, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _label_str(labels: dict) -> str:
    if not labels:
        return "-"
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def render_snapshot(snapshot: dict) -> str:
    from repro.interpret.ascii_plots import comparison_table

    sections = []
    counters = snapshot.get("counters", [])
    if counters:
        rows = [(e["name"], _label_str(e["labels"]), e["value"])
                for e in counters]
        sections.append(comparison_table(
            ("counter", "labels", "value"), rows, title="counters"))
    gauges = snapshot.get("gauges", [])
    if gauges:
        rows = [(e["name"], _label_str(e["labels"]), e["value"])
                for e in gauges]
        sections.append(comparison_table(
            ("gauge", "labels", "value"), rows, title="gauges"))
    histograms = snapshot.get("histograms", [])
    if histograms:
        rows = []
        for e in histograms:
            data = e["data"]
            rows.append((e["name"], _label_str(e["labels"]),
                         data["count"],
                         data["p50"] if data["p50"] is not None else "-",
                         data["p95"] if data["p95"] is not None else "-",
                         data["p99"] if data["p99"] is not None else "-",
                         data["max"] if data["max"] is not None else "-"))
        sections.append(comparison_table(
            ("histogram", "labels", "count", "p50", "p95", "p99", "max"),
            rows, title="histograms"))
    spans = snapshot.get("spans", [])
    if spans:
        rows = [(s["name"], s.get("request_id") or "-", s["elapsed_s"])
                for s in spans[-20:]]
        sections.append(comparison_table(
            ("span", "request_id", "elapsed_s"), rows,
            title="recent spans"))
    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Fetch and render /v1/metrics from a gateway, "
                    "router, or worker.")
    parser.add_argument("--url", required=True,
                        help="base URL, e.g. http://127.0.0.1:8080")
    parser.add_argument("--json", action="store_true",
                        help="print the raw JSON snapshot instead of "
                             "tables")
    args = parser.parse_args(argv)
    try:
        snapshot = fetch_snapshot(args.url)
    except OSError as error:
        print(f"error: could not fetch {args.url}/v1/metrics: {error}",
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(render_snapshot(snapshot))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
