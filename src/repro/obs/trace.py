"""Request IDs and per-stage spans for cross-process tracing.

The gateway stamps each :class:`~repro.serve.protocol.BatchEnvelope`
with a request ID at admission; the router propagates it on the
router→worker hop (protocol v2's optional ``request_id`` envelope
field), and every stage wraps its work in a :class:`Span`.  Completed
spans land in a bounded in-process log that ``/v1/metrics`` exposes, so
one ID can be followed gateway → router → worker without any shared
infrastructure.

Determinism: IDs come from a process-local monotonic counter plus a
configurable prefix — no wall clock, no ``uuid`` — and span durations
read the injectable obs clock, so replayed traffic traces identically.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import List, Optional

from .metrics import Histogram, clock

__all__ = ["new_request_id", "set_id_prefix", "Span", "recent_spans",
           "clear_spans", "SPAN_LOG_LIMIT"]

#: Completed spans retained per process; old spans fall off the back.
SPAN_LOG_LIMIT = 256

_lock = threading.Lock()
_prefix = "req"
_counter = itertools.count(1)
_spans: deque = deque(maxlen=SPAN_LOG_LIMIT)


def set_id_prefix(prefix: str) -> str:
    """Set the request-ID prefix (returns the previous one).

    Each process in a cluster gets a distinct prefix (``gw``, ``rt``,
    ``w0``…) so IDs minted by different processes cannot collide.
    """
    global _prefix
    with _lock:
        previous, _prefix = _prefix, prefix
    return previous


def new_request_id() -> str:
    """Mint a process-unique request ID, e.g. ``gw-00000007``.

    Monotonic-counter based: deterministic under replay (INV003), and
    unique across processes via the per-process prefix.
    """
    with _lock:
        prefix = _prefix
    return f"{prefix}-{next(_counter):08d}"


class Span:
    """Context manager timing one named stage of one request.

    On exit the completed span is appended to the process span log
    (and, when given, its duration observed into a histogram).  Spans
    are cheap enough for per-request use: one clock read on entry, one
    on exit, one bounded-deque append.
    """

    __slots__ = ("name", "request_id", "elapsed_s", "_histogram",
                 "_start")

    def __init__(self, name: str, request_id: Optional[str] = None,
                 histogram: Optional[Histogram] = None) -> None:
        self.name = name
        self.request_id = request_id
        self.elapsed_s = 0.0
        self._histogram = histogram

    def __enter__(self) -> "Span":
        self._start = clock()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed_s = clock() - self._start
        if self._histogram is not None:
            self._histogram.observe(self.elapsed_s)
        with _lock:
            _spans.append({"name": self.name,
                           "request_id": self.request_id,
                           "elapsed_s": self.elapsed_s})


def recent_spans(limit: int = SPAN_LOG_LIMIT) -> List[dict]:
    """Most recent completed spans, oldest first."""
    with _lock:
        spans = list(_spans)
    return spans[-limit:]


def clear_spans() -> None:
    """Drop the span log (test isolation)."""
    with _lock:
        _spans.clear()
