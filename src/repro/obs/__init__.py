"""repro.obs — the serving stack's telemetry layer.

Dependency-free metrics (:class:`Counter` / :class:`Gauge` /
:class:`Histogram` in an injectable :class:`MetricsRegistry`) plus
request-scoped tracing (:func:`new_request_id`, :class:`Span`).  See
``docs/OBSERVABILITY.md`` for the metric catalogue and conventions, and
``python -m repro.obs --url http://host:port`` for a terminal snapshot
of a live gateway or router.

This package is the only serve/cluster-side module allowed to import
``time`` (INV005): everything else reads :func:`clock` / :func:`sleep`
through here, which keeps wall-clock out of replay paths and lets tests
pin a fake clock.
"""

from . import names
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    clock,
    estimate_quantile,
    get_registry,
    render_prometheus,
    set_clock,
    set_registry,
    sleep,
)
from .trace import (
    SPAN_LOG_LIMIT,
    Span,
    clear_spans,
    new_request_id,
    recent_spans,
    set_id_prefix,
)

__all__ = [
    "names",
    "DEFAULT_LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "clock",
    "estimate_quantile",
    "get_registry",
    "render_prometheus",
    "set_clock",
    "set_registry",
    "sleep",
    "SPAN_LOG_LIMIT",
    "Span",
    "clear_spans",
    "new_request_id",
    "recent_spans",
    "set_id_prefix",
]
