"""The metric-name catalogue: every series the serving stack emits.

One constant per metric, grouped by kind at the bottom — instrumentation
sites import these instead of spelling strings so a renamed metric is a
one-line change, and ``tools/check_docs.py`` machine-checks this module
against the table in ``docs/OBSERVABILITY.md`` (the same way the error
taxonomy is checked against ``docs/API.md``).

Naming conventions (documented in ``docs/OBSERVABILITY.md``): counters
end in ``_total``, byte gauges in ``_bytes``, latency histograms in
``_seconds``; the prefix names the owning subsystem (``service_``,
``stream_cache_``, ``engine_``, ``http_``, ``router_``, ``wal_``,
``online_``).
"""

from __future__ import annotations

# --- service scheduler (repro.serve.service) -------------------------------
SERVICE_REQUESTS_TOTAL = "service_requests_total"
SERVICE_COALESCED_READS_TOTAL = "service_coalesced_reads_total"
SERVICE_BATCH_SECONDS = "service_batch_seconds"
SERVICE_BATCH_SIZE = "service_batch_size"
SERVICE_QUERY_SECONDS = "service_query_seconds"
SERVICE_ADMISSION_WAIT_SECONDS = "service_admission_wait_seconds"

# --- forward-stream cache (repro.serve.forward_cache) ----------------------
STREAM_CACHE_HITS_TOTAL = "stream_cache_hits_total"
STREAM_CACHE_MISSES_TOTAL = "stream_cache_misses_total"
STREAM_CACHE_EVICTIONS_TOTAL = "stream_cache_evictions_total"
STREAM_CACHE_REBUILDS_TOTAL = "stream_cache_rebuilds_total"
STREAM_CACHE_RESIDENT_BYTES = "stream_cache_resident_bytes"
STREAM_CACHE_ENTRIES = "stream_cache_entries"

# --- inference engine (repro.serve.engine) ---------------------------------
ENGINE_FORWARD_CALLS_TOTAL = "engine_forward_calls_total"
ENGINE_WORKER_TASKS_TOTAL = "engine_worker_tasks_total"

# --- HTTP gateway (repro.serve.http_gateway) -------------------------------
HTTP_REQUESTS_TOTAL = "http_requests_total"
HTTP_ERRORS_TOTAL = "http_errors_total"
HTTP_REQUEST_SECONDS = "http_request_seconds"

# --- cluster router (repro.cluster.router) ---------------------------------
ROUTER_FANOUT_SECONDS = "router_fanout_seconds"
ROUTER_SHARD_UNAVAILABLE_TOTAL = "router_shard_unavailable_total"

# --- write-ahead log (repro.cluster.wal) -----------------------------------
WAL_APPEND_SECONDS = "wal_append_seconds"
WAL_FSYNC_SECONDS = "wal_fsync_seconds"
WAL_SEGMENT_ROLLS_TOTAL = "wal_segment_rolls_total"

# --- continual trainer (repro.online) --------------------------------------
ONLINE_ROUNDS_TOTAL = "online_rounds_total"
ONLINE_FINE_TUNE_SECONDS = "online_fine_tune_seconds"
ONLINE_GATE_DECISIONS_TOTAL = "online_gate_decisions_total"

#: Kind registries ``tools/check_docs.py`` extracts (via AST) to verify
#: the ``docs/OBSERVABILITY.md`` catalogue table: every name below must
#: have a table row with the matching kind, and the table may document
#: nothing that is not registered here.
COUNTERS = (
    SERVICE_REQUESTS_TOTAL,
    SERVICE_COALESCED_READS_TOTAL,
    STREAM_CACHE_HITS_TOTAL,
    STREAM_CACHE_MISSES_TOTAL,
    STREAM_CACHE_EVICTIONS_TOTAL,
    STREAM_CACHE_REBUILDS_TOTAL,
    ENGINE_FORWARD_CALLS_TOTAL,
    ENGINE_WORKER_TASKS_TOTAL,
    HTTP_REQUESTS_TOTAL,
    HTTP_ERRORS_TOTAL,
    ROUTER_SHARD_UNAVAILABLE_TOTAL,
    WAL_SEGMENT_ROLLS_TOTAL,
    ONLINE_ROUNDS_TOTAL,
    ONLINE_GATE_DECISIONS_TOTAL,
)

GAUGES = (
    STREAM_CACHE_RESIDENT_BYTES,
    STREAM_CACHE_ENTRIES,
)

HISTOGRAMS = (
    SERVICE_BATCH_SECONDS,
    SERVICE_BATCH_SIZE,
    SERVICE_QUERY_SECONDS,
    SERVICE_ADMISSION_WAIT_SECONDS,
    HTTP_REQUEST_SECONDS,
    ROUTER_FANOUT_SECONDS,
    WAL_APPEND_SECONDS,
    WAL_FSYNC_SECONDS,
    ONLINE_FINE_TUNE_SECONDS,
)
