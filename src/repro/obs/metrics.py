"""Dependency-free, thread-safe metrics primitives for the serving stack.

Three instrument kinds — :class:`Counter`, :class:`Gauge`,
:class:`Histogram` (fixed log-spaced latency buckets with p50/p95/p99
estimation) — live in a :class:`MetricsRegistry` that is process-global
by default (:func:`get_registry`) but injectable (:func:`set_registry`),
so tests and the zero-overhead benchmark arm can swap in a fresh or
disabled registry without touching instrumented code.

Time discipline: everything here reads the injectable monotonic
:func:`clock` (``time.perf_counter`` by default — never wall clock, so
instrumenting INV003-scoped modules like ``repro.cluster.wal`` stays
clean, and deterministic replay/tests can pin the clock).  This module
is the *only* place the serving and cluster layers touch ``time``
directly — INV005 (``tools/invariants``) enforces that.

Every lock here follows the INV001 discipline: state shared across
request threads is only touched inside ``with self._lock``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS", "SIZE_BUCKETS", "Counter", "Gauge",
    "Histogram", "MetricsRegistry", "Timer", "clock", "set_clock",
    "sleep", "get_registry", "set_registry", "render_prometheus",
    "estimate_quantile",
]

#: Histogram upper bounds for latencies in seconds: log-spaced, three
#: buckets per decade from 10µs to 100s (~2.15x resolution).  Fixed
#: bounds keep observation O(log buckets) and make snapshots mergeable.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    10.0 ** (exponent / 3.0) for exponent in range(-15, 7))

#: Histogram upper bounds for small counts (batch sizes, fan-out widths).
SIZE_BUCKETS: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
                                   128.0, 256.0, 512.0, 1024.0)

_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


# ---------------------------------------------------------------------------
# Injectable monotonic clock (and the serving stack's only time import)
# ---------------------------------------------------------------------------
_clock: Callable[[], float] = time.perf_counter


def clock() -> float:
    """Monotonic seconds from the injectable obs clock."""
    return _clock()


def set_clock(fn: Callable[[], float]) -> Callable[[], float]:
    """Swap the obs clock (returns the previous one).

    Tests and deterministic replay pin a fake monotonic clock here; the
    default is ``time.perf_counter`` — never wall time.
    """
    global _clock
    previous, _clock = _clock, fn
    return previous


def sleep(seconds: float) -> None:
    """``time.sleep`` behind the obs facade, so serve/cluster modules
    that need to wait (the supervisor's boot poll) satisfy INV005
    without importing ``time`` themselves."""
    time.sleep(seconds)


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------
class Counter:
    """Monotonically increasing count, safe across request threads."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def snapshot(self):
        return self.value


class Gauge:
    """A value that goes up and down (resident bytes, queue depth)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self):
        return self.value


class Histogram:
    """Fixed-bucket distribution with quantile estimation.

    Buckets are *upper bounds* in ascending order (defaults to the
    log-spaced latency ladder); observations beyond the last bound land
    in an implicit overflow bucket.  A snapshot is internally
    consistent — count, sum, min/max, and per-bucket counts are read
    under one lock acquisition — so ``sum(buckets) == count`` holds
    even mid-traffic.
    """

    def __init__(self, buckets: Optional[Tuple[float, ...]] = None):
        bounds = tuple(float(b) for b in
                       (DEFAULT_LATENCY_BUCKETS if buckets is None
                        else buckets))
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must be strictly "
                             "ascending upper bounds")
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)   # +1: overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min = None
        self._max = None

    def observe(self, value: float) -> None:
        value = float(value)
        # Bisect outside the lock: bounds are immutable.
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            self._counts[lo] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> dict:
        with self._lock:
            counts = list(self._counts)
            data = {"count": self._count, "sum": self._sum,
                    "min": self._min, "max": self._max}
        data["buckets"] = [[bound, counts[i]]
                           for i, bound in enumerate(self.bounds)]
        data["overflow"] = counts[-1]
        for q in _QUANTILES:
            data[f"p{int(q * 100)}"] = estimate_quantile(data, q)
        return data

    def quantile(self, q: float) -> Optional[float]:
        """Estimated q-quantile (``None`` before any observation)."""
        return estimate_quantile(self.snapshot(), q)


def estimate_quantile(snapshot: dict, q: float) -> Optional[float]:
    """Bucket-interpolated quantile from a :meth:`Histogram.snapshot`.

    Linear interpolation inside the bucket holding the target rank,
    clamped to the observed min/max — an estimate with error bounded by
    the bucket width, which the log-spaced defaults keep proportional.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be within [0, 1], got {q}")
    total = snapshot["count"]
    if total == 0:
        return None
    target = q * total
    cumulative = 0.0
    lower = snapshot["min"]
    for bound, bucket_count in snapshot["buckets"]:
        if bucket_count:
            upper = min(bound, snapshot["max"])
            if cumulative + bucket_count >= target:
                fraction = (target - cumulative) / bucket_count
                lower = min(lower, upper)
                return lower + (upper - lower) * max(0.0, min(1.0,
                                                              fraction))
            cumulative += bucket_count
            lower = max(lower, upper)
    return snapshot["max"]   # target rank sits in the overflow bucket


class Timer:
    """Context-manager stopwatch on the obs clock.

    The Table VI efficiency bench's instrument, folded into the obs
    layer; optionally feeds a :class:`Histogram` on exit.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed_ms >= 0
    True
    """

    def __init__(self, histogram: Optional[Histogram] = None) -> None:
        self.elapsed_s = 0.0
        self._histogram = histogram

    def __enter__(self) -> "Timer":
        self._start = clock()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed_s = clock() - self._start
        if self._histogram is not None:
            self._histogram.observe(self.elapsed_s)

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_s * 1000.0


# ---------------------------------------------------------------------------
# No-op instruments (what a disabled registry hands out)
# ---------------------------------------------------------------------------
class _NullCounter(Counter):
    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
class MetricsRegistry:
    """Named, labelled series with get-or-create semantics.

    Series identity is ``(name, sorted labels)``; a name is pinned to
    one instrument kind at first use and a later mismatch raises (a
    programming error, not traffic).  ``enabled=False`` hands out
    shared no-op instruments — the zero-overhead arm of the bench and
    a cheap global kill switch.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._series: Dict[tuple, object] = {}
        self._kinds: Dict[str, str] = {}

    @staticmethod
    def _key(name: str, labels: dict) -> tuple:
        return (name, tuple(sorted((str(k), str(v))
                                   for k, v in labels.items())))

    def _get_or_create(self, kind: str, name: str, labels: dict,
                       factory):
        key = self._key(name, labels)
        with self._lock:
            known = self._kinds.get(name)
            if known is not None and known != kind:
                raise ValueError(f"metric '{name}' is a {known}, not a "
                                 f"{kind}")
            series = self._series.get(key)
            if series is None:
                series = factory()
                self._series[key] = series
                self._kinds[name] = kind
            return series

    def counter(self, name: str, **labels) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        return self._get_or_create("counter", name, labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        return self._get_or_create("gauge", name, labels, Gauge)

    def histogram(self, name: str,
                  buckets: Optional[Tuple[float, ...]] = None,
                  **labels) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        return self._get_or_create("histogram", name, labels,
                                   lambda: Histogram(buckets))

    def counter_total(self, name: str) -> int:
        """Sum of a counter across all its label sets."""
        with self._lock:
            series = [s for (n, _), s in self._series.items()
                      if n == name]
        return sum(s.value for s in series)

    def snapshot(self) -> dict:
        """Every series, grouped by kind, JSON-ready.

        Per-series values are read under each instrument's own lock
        (each one internally consistent); the series listing itself is
        copied under the registry lock, so a series registered
        mid-snapshot is either fully present or fully absent.
        """
        with self._lock:
            series = [(name, dict(labels), self._kinds[name], instrument)
                      for (name, labels), instrument
                      in sorted(self._series.items())]
        result = {"counters": [], "gauges": [], "histograms": []}
        for name, labels, kind, instrument in series:
            entry = {"name": name, "labels": labels,
                     "value" if kind != "histogram" else "data":
                     instrument.snapshot()}
            result[kind + "s"].append(entry)
        return result

    def render_prometheus(self) -> str:
        return render_prometheus(self.snapshot())


def render_prometheus(snapshot: dict) -> str:
    """Prometheus text exposition (v0.0.4) of a registry snapshot."""
    lines: List[str] = []
    typed = set()

    def label_str(labels: dict, extra: Optional[dict] = None) -> str:
        merged = dict(labels)
        if extra:
            merged.update(extra)
        if not merged:
            return ""
        body = ",".join(f'{k}="{v}"' for k, v in sorted(merged.items()))
        return "{" + body + "}"

    def declare(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for entry in snapshot["counters"]:
        declare(entry["name"], "counter")
        lines.append(f"{entry['name']}{label_str(entry['labels'])} "
                     f"{entry['value']}")
    for entry in snapshot["gauges"]:
        declare(entry["name"], "gauge")
        lines.append(f"{entry['name']}{label_str(entry['labels'])} "
                     f"{entry['value']}")
    for entry in snapshot["histograms"]:
        name, labels, data = entry["name"], entry["labels"], entry["data"]
        declare(name, "histogram")
        cumulative = 0
        for bound, count in data["buckets"]:
            cumulative += count
            lines.append(f"{name}_bucket"
                         f"{label_str(labels, {'le': repr(bound)})} "
                         f"{cumulative}")
        lines.append(f"{name}_bucket{label_str(labels, {'le': '+Inf'})} "
                     f"{data['count']}")
        lines.append(f"{name}_sum{label_str(labels)} {data['sum']}")
        lines.append(f"{name}_count{label_str(labels)} {data['count']}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# The process-global (but injectable) registry
# ---------------------------------------------------------------------------
_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The registry instrumented components bind at construction."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process registry (returns the previous one).

    Components capture their instrument handles when *they* are
    constructed, so a swap affects components built afterwards — which
    is exactly what the bench's instrumented-vs-disabled arms and
    isolated tests need.
    """
    global _registry
    previous, _registry = _registry, registry
    return previous
