"""Adaptive response probability generator (Sec. IV-D1, Eq. 23-26).

Encoder-MLP structure: the fused question/concept/response embeddings run
through a bidirectional knowledge-state encoder, and an MLP combines each
hidden state ``h_i`` with the question embedding ``e_i`` to produce the
probability of answering ``q_i`` correctly:

    p_i = sigma(ReLU([h_i ⊕ e_i] W1 + b1) W2 + b2)                (Eq. 26)

The generator is *variant-agnostic*: callers pass any response-category
array (factual, masked, counterfactual) over the same question batch, which
is how one stacked forward pass serves all seven sequence variants.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.data import Batch
from repro.models import InteractionEmbedder
from repro.tensor import Tensor, concat

from .encoders import BidirectionalEncoder


class ResponseProbabilityGenerator(nn.Module):
    """Bidirectional encoder + Eq. 26 MLP head."""

    def __init__(self, num_questions: int, num_concepts: int, dim: int,
                 encoder: BidirectionalEncoder, rng: np.random.Generator,
                 dropout: float = 0.0):
        super().__init__()
        self.dim = dim
        self.embedder = InteractionEmbedder(num_questions, num_concepts,
                                            dim, rng)
        self.encoder = encoder
        self.head = nn.MLP([2 * dim, dim, 1], rng, dropout=dropout)

    def forward(self, batch: Batch, responses: Optional[np.ndarray] = None,
                question_override: Optional[Tensor] = None,
                override_cols: Optional[np.ndarray] = None) -> Tensor:
        """Per-position correct-answer probabilities, shape ``(B, L)``.

        Parameters
        ----------
        responses:
            Response-category array (0/1/2) overriding ``batch.responses``;
            this is where counterfactual variants plug in.
        question_override / override_cols:
            Replace the question embedding ``e`` at one column per row with
            a caller-supplied vector — used by concept-proficiency tracing
            (Eq. 30), where the probed "virtual question" is the average of
            the concept's question embeddings.
        """
        questions = self.embedder.question_vectors(batch)
        if question_override is not None:
            if override_cols is None:
                raise ValueError("question_override requires override_cols")
            from repro.tensor import where
            keep = np.ones(questions.shape, dtype=bool)
            keep[np.arange(len(override_cols)), override_cols, :] = False
            questions = where(keep, questions, question_override.expand_dims(1))
        if responses is None:
            responses = batch.responses
        response_vectors = self.embedder.response_embedding(responses)
        interactions = questions + response_vectors
        hidden = self.encoder(interactions, mask=batch.mask)
        logits = self.head(concat([hidden, questions], axis=-1)).squeeze(-1)
        return logits.sigmoid()
