"""RCKT core: the paper's contribution (Sec. IV)."""

from .config import ENCODERS, PAPER_HYPERPARAMETERS, RCKTConfig, paper_config
from .encoders import (AttentionStreamState, BiAKTEncoder, BiDKTEncoder,
                       BidirectionalEncoder, BiSAKTEncoder,
                       ForwardStreamState, LSTMStreamState, build_encoder,
                       shift_and_combine)
from .generator import ResponseProbabilityGenerator
from .influence import (ExactInfluenceResult, InfluenceComputation,
                        compute_influences)
from .losses import counterfactual_loss, joint_bce_losses
from .masking import (COUNTERFACTUAL_VARIANTS, JOINT_VARIANTS, MASKED,
                      VARIANT_ORDER, VariantSet, build_exact_counterfactual,
                      build_variants, check_window, window_start,
                      window_starts)
from .multi_target import (MultiTargetContext, column_banded_chunks,
                           map_chunks, predict_dataset_fast,
                           score_batch_targets, score_targets)
from .rckt import RCKT, replicate_batch
from .trainer import RCKTTrainResult, evaluate_rckt, fit_rckt

__all__ = [
    "RCKTConfig", "paper_config", "PAPER_HYPERPARAMETERS", "ENCODERS",
    "BidirectionalEncoder", "BiDKTEncoder", "BiSAKTEncoder", "BiAKTEncoder",
    "build_encoder", "shift_and_combine",
    "ForwardStreamState", "LSTMStreamState", "AttentionStreamState",
    "ResponseProbabilityGenerator",
    "MASKED", "VARIANT_ORDER", "COUNTERFACTUAL_VARIANTS", "JOINT_VARIANTS",
    "VariantSet", "build_variants", "build_exact_counterfactual",
    "window_start", "window_starts", "check_window",
    "InfluenceComputation", "ExactInfluenceResult", "compute_influences",
    "counterfactual_loss", "joint_bce_losses",
    "RCKT", "replicate_batch",
    "MultiTargetContext", "column_banded_chunks", "map_chunks",
    "predict_dataset_fast", "score_batch_targets", "score_targets",
    "fit_rckt", "evaluate_rckt", "RCKTTrainResult",
]
