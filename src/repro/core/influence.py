"""Response influence measurement (Sec. IV-C).

After the approximation (Eq. 18-22), the influence of past response ``i``
on the target is estimated *backward*: intervene on the assumed target
response and observe the change in the predicted probability of the past
response keeping its own correctness:

    Δ_(t+1)+→i+ = p(r_i=1 | F, target=correct) − p(r_i=1 | CF, target=incorrect)
    Δ_(t+1)−→i− = p(r_i=0 | F, target=incorrect) − p(r_i=0 | CF, target=correct)

Totals ``Δ+ = Σ_i+ Δ_i`` and ``Δ− = Σ_i− Δ_i`` drive both the prediction
rule (Eq. 13: answer correct iff ``Δ+ − Δ− ≥ 0``) and the counterfactual
loss (Eq. 16).  All quantities here are differentiable Tensors so the same
code path serves training and inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np
from repro.tensor import Tensor

from .masking import COUNTERFACTUAL_VARIANTS, VariantSet


@dataclass
class InfluenceComputation:
    """Differentiable influence quantities for one batch of targets.

    All fields are Tensors; ``(B, L)`` per-position or ``(B,)`` totals.
    ``correct_deltas[b, i]`` is zero unless position ``i`` is a factual
    *correct* history position of row ``b`` (mirrors Eq. 12's index sets).
    """

    correct_deltas: Tensor
    incorrect_deltas: Tensor
    delta_plus: Tensor
    delta_minus: Tensor
    history_lengths: np.ndarray   # (B,) number of past responses t
    scores: np.ndarray            # (B,) in (0, 1): (Δ+-Δ-)/(2t) + 1/2

    def decision(self) -> np.ndarray:
        """Eq. 13 binary predictions (threshold at score 0.5 ⇔ Δ+−Δ− ≥ 0)."""
        return (self.scores >= 0.5).astype(np.int64)


SCORE_NORMALIZATIONS = ("t", "sum", "raw")


def compute_influences(probabilities: Dict[str, Tensor],
                       variants: VariantSet,
                       normalization: str = "t") -> InfluenceComputation:
    """Combine the four variant probability grids into influences.

    ``probabilities`` maps variant name -> ``(B, L)`` Tensor of
    p(correct); the caller obtains them from one stacked generator pass.

    ``normalization`` shapes the continuous *score* only (the Eq. 13 sign
    decision is identical under all three since each maps Δ+−Δ− through an
    odd monotone transform):

    * ``"t"``   — the paper's Eq. 16 scaling, (Δ+−Δ−)/(2t) + 1/2;
    * ``"sum"`` — (Δ+−Δ−)/(Δ+ + Δ− + ε) mapped into (0, 1): scale-free
      across history lengths (an extension; helps ranking when prefix
      lengths vary widely);
    * ``"raw"`` — sigmoid of the unnormalized gap.
    """
    if normalization not in SCORE_NORMALIZATIONS:
        raise ValueError(f"normalization must be one of "
                         f"{SCORE_NORMALIZATIONS}, got '{normalization}'")
    missing = set(COUNTERFACTUAL_VARIANTS) - set(probabilities)
    if missing:
        raise KeyError(f"missing variant probabilities: {sorted(missing)}")

    correct = Tensor(variants.correct_mask.astype(np.float64))
    incorrect = Tensor(variants.incorrect_mask.astype(np.float64))

    # Correct response influences: drop in P(r_i = 1) when the assumed
    # correct target is flipped to incorrect.
    correct_deltas = (probabilities["f_plus"]
                      - probabilities["cf_minus"]) * correct
    # Incorrect response influences: drop in P(r_i = 0); with
    # p = P(correct), P(incorrect) = 1 - p, so the difference flips sign.
    incorrect_deltas = (probabilities["cf_plus"]
                        - probabilities["f_minus"]) * incorrect

    delta_plus = correct_deltas.sum(axis=1)
    delta_minus = incorrect_deltas.sum(axis=1)

    history_lengths = variants.history_mask.sum(axis=1).astype(np.float64)
    safe_t = np.maximum(history_lengths, 1.0)
    gap = delta_plus.data - delta_minus.data
    if normalization == "t":
        scores = gap / (2.0 * safe_t) + 0.5
    elif normalization == "sum":
        total = np.abs(delta_plus.data) + np.abs(delta_minus.data) + 1e-9
        scores = gap / total / 2.0 + 0.5
    else:  # raw
        scores = 1.0 / (1.0 + np.exp(-np.clip(gap, -30, 30)))
    # Rows with no history carry no influence evidence: neutral score.
    scores = np.where(history_lengths == 0, 0.5, scores)

    return InfluenceComputation(
        correct_deltas=correct_deltas,
        incorrect_deltas=incorrect_deltas,
        delta_plus=delta_plus,
        delta_minus=delta_minus,
        history_lengths=history_lengths,
        scores=scores,
    )


@dataclass
class ExactInfluenceResult:
    """Forward (pre-approximation) influences for a single sequence.

    ``deltas[i]`` is the influence of past response ``i`` on the target,
    signed by Eq. 9/11 (correct influences from P(correct) drops, incorrect
    influences from P(incorrect) drops); entries at the target itself are 0.
    """

    deltas: np.ndarray
    correct_positions: np.ndarray
    incorrect_positions: np.ndarray
    delta_plus: float
    delta_minus: float
    score: float

    def decision(self) -> int:
        return int(self.score >= 0.5)
