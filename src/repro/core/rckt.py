"""The RCKT model: counterfactual reasoning over response influences.

Ties together the pieces of Sec. IV: the adaptive probability generator
(bidirectional encoder + MLP), the counterfactual sequence construction,
the approximated influence computation, the Eq. 13 prediction rule and the
Eq. 16/29 training objective.  Also exposes the *exact* (pre-approximation)
forward influence path used by Table VI.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import nn
from repro.data import Batch, KTDataset, StudentSequence, collate
from repro.tensor import Tensor, no_grad
from repro.utils import derive_rng

from .config import RCKTConfig
from .encoders import build_encoder
from .generator import ResponseProbabilityGenerator
from .influence import (ExactInfluenceResult, InfluenceComputation,
                        compute_influences)
from .losses import counterfactual_loss, joint_bce_losses
from .masking import (COUNTERFACTUAL_VARIANTS, MASKED, VARIANT_ORDER,
                      build_exact_counterfactual, build_variants)


def replicate_batch(batch: Batch, times: int) -> Batch:
    """Stack ``times`` copies of a batch along the batch axis."""
    return Batch(
        questions=np.tile(batch.questions, (times, 1)),
        responses=np.tile(batch.responses, (times, 1)),
        concepts=np.tile(batch.concepts, (times, 1, 1)),
        concept_counts=np.tile(batch.concept_counts, (times, 1)),
        mask=np.tile(batch.mask, (times, 1)),
    )


class RCKT(nn.Module):
    """Response influence-based Counterfactual Knowledge Tracing."""

    def __init__(self, num_questions: int, num_concepts: int,
                 config: Optional[RCKTConfig] = None):
        super().__init__()
        self.config = config or RCKTConfig()
        rng = derive_rng(self.config.seed, "rckt", self.config.encoder)
        encoder = build_encoder(self.config.encoder, self.config.dim,
                                self.config.layers, rng,
                                heads=self.config.heads,
                                dropout=self.config.dropout)
        self.generator = ResponseProbabilityGenerator(
            num_questions, num_concepts, self.config.dim, encoder, rng,
            dropout=self.config.dropout)

    # ------------------------------------------------------------------
    # Variant plumbing
    # ------------------------------------------------------------------
    def _variant_probabilities(self, batch: Batch, variants,
                               names: Sequence[str],
                               question_override: Optional[Tensor] = None
                               ) -> Dict[str, Tensor]:
        """One stacked generator pass for all requested variants."""
        stacked_responses = variants.stacked(names)
        big = replicate_batch(batch, len(names))
        override_cols = None
        override = None
        if question_override is not None:
            from repro.tensor import concat as tensor_concat
            override = tensor_concat([question_override] * len(names), axis=0)
            override_cols = np.tile(variants.target_cols, len(names))
        probs = self.generator(big, responses=stacked_responses,
                               question_override=override,
                               override_cols=override_cols)
        rows = batch.questions.shape[0]
        return {name: probs[i * rows:(i + 1) * rows]
                for i, name in enumerate(names)}

    def influences(self, batch: Batch, target_cols: np.ndarray,
                   question_override: Optional[Tensor] = None
                   ) -> InfluenceComputation:
        """Approximated response influences for each row's target.

        ``question_override`` (``(B, dim)``) replaces the target question
        embedding — the Eq. 30 mechanism for probing proficiency on a
        *concept* instead of a concrete question.
        """
        variants = build_variants(batch.responses, batch.mask, target_cols,
                                  use_monotonicity=self.config.use_monotonicity)
        probs = self._variant_probabilities(batch, variants,
                                            COUNTERFACTUAL_VARIANTS,
                                            question_override=question_override)
        return compute_influences(probs, variants,
                                  normalization=self.config.score_normalization)

    # ------------------------------------------------------------------
    # Training objective (Eq. 29)
    # ------------------------------------------------------------------
    def loss(self, batch: Batch, target_cols: np.ndarray) -> Tensor:
        config = self.config
        use_joint = config.use_joint and config.lambda_balance > 0
        names = VARIANT_ORDER if use_joint else COUNTERFACTUAL_VARIANTS
        variants = build_variants(batch.responses, batch.mask, target_cols,
                                  use_monotonicity=config.use_monotonicity)
        probs = self._variant_probabilities(batch, variants, names)
        influence = compute_influences(probs, variants)
        labels = batch.responses[np.arange(len(target_cols)), target_cols]
        loss = counterfactual_loss(influence, labels, alpha=config.alpha,
                                   use_constraint=config.use_constraint)
        if use_joint:
            bce = joint_bce_losses(probs, batch.responses,
                                   variants.history_mask)
            regularizer = bce["factual"] + bce["m_plus"] + bce["m_minus"]
            loss = loss + config.lambda_balance * regularizer
        return loss

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict_scores(self, batch: Batch, target_cols: np.ndarray) -> np.ndarray:
        """Influence-difference scores in (0, 1); >= 0.5 means "correct"."""
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                influence = self.influences(batch, target_cols)
        finally:
            if was_training:
                self.train()
        return influence.scores

    def predict_dataset(self, dataset: KTDataset, batch_size: int = 32,
                        stride: int = 1, legacy: bool = False,
                        target_batch: int = 64, workers: int = 1,
                        window: Optional[int] = None, window_hop: int = 1
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """(labels, scores) treating every position >= 1 as a target.

        Each evaluated position becomes a prefix sample (history before it,
        target at its end), matching the left-to-right protocol of the
        baselines.  ``stride`` subsamples target positions for faster
        approximate evaluation (stride=1 evaluates everything).

        The default path collates each sequence **once** and evaluates
        its target positions as truncated-mask rows over the shared
        padded batch (:mod:`repro.core.multi_target`; the serving entry
        points build such rows via :func:`repro.data.expand_targets`),
        so scoring a length-``T`` sequence does O(T) collation work
        instead of materializing ``T`` prefix copies.  ``legacy=True`` selects the original per-prefix
        bucketing path, kept as the golden reference the parity suite
        checks the fast path against.  ``target_batch`` caps how many
        expanded targets share one stacked generator pass (each target
        becomes ``len(COUNTERFACTUAL_VARIANTS)`` generator rows).
        ``workers > 1`` spreads the independent target chunks over that
        many threads (NumPy's kernels release the GIL); scores and their
        order are identical to the single-threaded sweep.

        ``window`` / ``window_hop`` bound every target's history to a
        sliding window of its most recent responses (exact truncation
        semantics — see :func:`repro.core.masking.window_start`); the
        legacy path predates windowing, so combining ``legacy=True``
        with a window raises ``ValueError``.
        """
        if legacy:
            if window is not None:
                raise ValueError("window is not supported on the legacy "
                                 "per-prefix path")
            return self._predict_dataset_legacy(dataset, batch_size, stride)
        from .multi_target import predict_dataset_fast
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                return predict_dataset_fast(self, dataset,
                                            batch_size=batch_size,
                                            stride=stride,
                                            target_batch=target_batch,
                                            workers=workers,
                                            window=window,
                                            window_hop=window_hop)
        finally:
            if was_training:
                self.train()

    def _predict_dataset_legacy(self, dataset: KTDataset, batch_size: int,
                                stride: int) -> Tuple[np.ndarray, np.ndarray]:
        """Reference implementation: one re-collated prefix per target."""
        specs: List[Tuple[StudentSequence, int]] = []
        for sequence in dataset:
            for col in range(self.config.min_history, len(sequence), stride):
                specs.append((sequence, col))
        labels, scores = [], []
        for prefix_batch, cols, ys in _bucket_prefixes(specs, batch_size):
            scores.append(self.predict_scores(prefix_batch, cols))
            labels.append(ys)
        if not labels:
            return np.array([]), np.array([])
        return np.concatenate(labels), np.concatenate(scores)

    # ------------------------------------------------------------------
    # Exact (pre-approximation) influence path — Table VI
    # ------------------------------------------------------------------
    def exact_influences(self, sequence: StudentSequence,
                         target_col: Optional[int] = None) -> ExactInfluenceResult:
        """Forward influences by flipping every past response (Eq. 4-11).

        Builds one counterfactual row per past response plus one factual
        row, so inference cost grows linearly with history length — the
        inefficiency Sec. IV-C4's approximation removes.
        """
        if target_col is None:
            target_col = len(sequence) - 1
        if target_col < 1:
            raise ValueError("target needs at least one past response")
        base = collate([sequence])
        responses = base.responses[0]
        mask = base.mask[0]

        factual_row = responses.copy()
        factual_row[target_col] = MASKED
        rows = [factual_row]
        for col in range(target_col):
            rows.append(build_exact_counterfactual(
                responses, mask, target_col, col,
                use_monotonicity=self.config.use_monotonicity))
        stacked = np.stack(rows, axis=0)
        big = replicate_batch(base, len(rows))

        was_training = self.training
        self.eval()
        try:
            with no_grad():
                probs = self.generator(big, responses=stacked).data
        finally:
            if was_training:
                self.train()

        factual_p = probs[0, target_col]
        deltas = np.zeros(len(sequence))
        correct_positions = np.zeros(len(sequence), dtype=bool)
        incorrect_positions = np.zeros(len(sequence), dtype=bool)
        for col in range(target_col):
            counterfactual_p = probs[1 + col, target_col]
            if responses[col] == 1:
                # Eq. 9: drop in P(correct) after flipping a correct answer.
                deltas[col] = factual_p - counterfactual_p
                correct_positions[col] = True
            else:
                # Eq. 11: drop in P(incorrect) after flipping an incorrect one.
                deltas[col] = (1.0 - factual_p) - (1.0 - counterfactual_p)
                incorrect_positions[col] = True
        delta_plus = float(deltas[correct_positions].sum())
        delta_minus = float(deltas[incorrect_positions].sum())
        history = max(int(target_col), 1)
        score = (delta_plus - delta_minus) / (2.0 * history) + 0.5
        return ExactInfluenceResult(
            deltas=deltas,
            correct_positions=correct_positions,
            incorrect_positions=incorrect_positions,
            delta_plus=delta_plus,
            delta_minus=delta_minus,
            score=float(score),
        )


def _bucket_prefixes(specs: Sequence[Tuple[StudentSequence, int]],
                     batch_size: int):
    """Group prefix samples by identical length and yield batches.

    Equal-length buckets keep the bidirectional LSTM exact: no padding ever
    enters the reversed stream.
    """
    buckets: Dict[int, List[Tuple[StudentSequence, int]]] = {}
    for sequence, col in specs:
        buckets.setdefault(col + 1, []).append((sequence, col))
    for length in sorted(buckets):
        group = buckets[length]
        for start in range(0, len(group), batch_size):
            chunk = group[start:start + batch_size]
            prefix_batch = collate([seq[:col + 1] for seq, col in chunk])
            cols = np.array([col for _, col in chunk])
            labels = np.array([seq[col].correct for seq, col in chunk],
                              dtype=np.float64)
            yield prefix_batch, cols, labels
