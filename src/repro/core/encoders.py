"""Bidirectional knowledge-state encoders (Eq. 25, Sec. V-A4).

The response influence approximation requires the encoder to see both past
and future context while *strictly excluding the position being predicted*:

    h_i = fwdEnc(A_{1:i-1}) + bwdEnc(A_{i+1:t+1})                  (Eq. 25)

Multi-layer subtlety: naively stacking a bidirectional layer leaks the
excluded position — the layer-1 state at ``i-1`` would already contain
backward information flowing through position ``i``.  We therefore keep two
*independent directional streams* through every layer (forward layers only
ever read forward-stream states, backward layers only backward-stream
states, as in ELMo's bidirectional LM) and combine them with a one-step
shift only at the very end.  A perturbation test in the suite verifies that
``h_i`` is exactly invariant to the input at position ``i``.

Three adapters mirror the paper's Sec. V-A4:

* ``BiDKTEncoder``  — stacked LSTMs (BiLSTM).
* ``BiSAKTEncoder`` — transformer blocks with directional masks, responses
  as queries.
* ``BiAKTEncoder``  — the same with AKT's monotonic (distance-decay)
  attention, "bi-directional due to the duality of distance".
"""

from __future__ import annotations

import abc
from typing import List, Optional, Tuple

import numpy as np

from repro import nn
from repro.tensor import Tensor, concat

# Initial capacity of the transformer encoders' sinusoidal positional
# tables.  This is *not* a sequence-length cap: the tables grow
# geometrically on demand (:class:`repro.nn.PositionalEncoding.ensure`),
# so arbitrarily long histories encode exactly — growth only re-derives
# the deterministic sinusoid table, never changes existing rows.  Compute
# still scales with length (quadratically for attention); long-history
# *serving* bounds it with the sliding-window mode instead
# (:func:`repro.core.masking.window_start`, ``InferenceEngine(window=...)``).
MAX_ENCODED_LENGTH = 128


class ForwardStreamState(abc.ABC):
    """Opaque per-row forward-encoder state, extensible one step at a time.

    The forward stream of Eq. 25 is strictly causal, so the state after
    position ``j`` fully determines how positions ``> j`` will encode —
    this is what the serving layer caches per student so ``record()``
    appends a step instead of re-encoding the history
    (:mod:`repro.serve.forward_cache`).  Concrete layouts: LSTM carry
    ``(h, c)`` per layer; attention projected key/value prefixes per
    layer (:class:`repro.nn.KVCache`).
    """

    length: int

    @property
    @abc.abstractmethod
    def nbytes(self) -> int:
        """Approximate resident bytes (drives the serving LRU budget)."""

    @abc.abstractmethod
    def clone(self) -> "ForwardStreamState":
        """Independent deep copy — extending the clone (or the original)
        never touches the other.  The recourse search forks a student's
        cached state into per-world timelines this way instead of
        re-encoding the shared prefix."""


class LSTMStreamState(ForwardStreamState):
    """Per-layer carry states of a stacked forward LSTM."""

    __slots__ = ("h", "c", "length")

    def __init__(self, h: List[np.ndarray], c: List[np.ndarray],
                 length: int = 0):
        self.h = h
        self.c = c
        self.length = length

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for a in self.h) + sum(a.nbytes for a in self.c)

    def clone(self) -> "LSTMStreamState":
        return LSTMStreamState([a.copy() for a in self.h],
                               [a.copy() for a in self.c], self.length)


class AttentionStreamState(ForwardStreamState):
    """Per-layer projected key/value prefixes of a directional stack."""

    __slots__ = ("caches", "length")

    def __init__(self, caches: List[nn.KVCache], length: int = 0):
        self.caches = caches
        self.length = length

    @property
    def nbytes(self) -> int:
        return sum(cache.nbytes for cache in self.caches)

    def clone(self) -> "AttentionStreamState":
        return AttentionStreamState(
            [cache.clone() for cache in self.caches], self.length)


def shift_and_combine(forward_stream: Tensor, backward_stream: Tensor) -> Tensor:
    """``h_i = forward[i-1] + backward[i+1]`` with zeros past the edges.

    The zero contribution at the boundary realizes the paper's rule that
    the first response "directly uses" the backward encoder output (adding
    a zero forward part is the same thing), and symmetrically for the last.
    """
    batch, length, dim = forward_stream.shape
    zeros = Tensor(np.zeros((batch, 1, dim)))
    past = concat([zeros, forward_stream[:, :length - 1, :]], axis=1)
    future = concat([backward_stream[:, 1:, :], zeros], axis=1)
    return past + future


class BidirectionalEncoder(nn.Module, abc.ABC):
    """Maps interaction embeddings ``(B, L, d)`` to hidden states ``h_i``.

    The two directional streams are exposed separately because the
    multi-target fast path exploits an asymmetry of Eq. 25: the *forward*
    stream at position ``j`` only reads inputs ``<= j``, which for every
    counterfactual variant are independent of the target column, so one
    forward pass per sequence serves all of its targets.  Only the
    *backward* stream (which consumes the intervened target first) needs
    one row per target.
    """

    @abc.abstractmethod
    def forward_stream(self, interactions: Tensor,
                       mask: Optional[np.ndarray] = None) -> Tensor:
        """Directional states summarizing inputs ``<= j`` at position ``j``."""

    @abc.abstractmethod
    def backward_stream(self, interactions: Tensor,
                        mask: Optional[np.ndarray] = None) -> Tensor:
        """Directional states summarizing inputs ``>= j`` at position ``j``."""

    def forward(self, interactions: Tensor,
                mask: Optional[np.ndarray] = None) -> Tensor:
        """``mask`` is ``(B, L)`` with True at real positions."""
        return shift_and_combine(self.forward_stream(interactions, mask),
                                 self.backward_stream(interactions, mask))

    # ------------------------------------------------------------------
    # Incremental forward-stream serving API (no-grad, eval mode)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def new_forward_state(self, rows: int) -> ForwardStreamState:
        """Empty per-row state for incremental forward-stream encoding."""

    @abc.abstractmethod
    def extend_forward_state(self, state: ForwardStreamState,
                             x: np.ndarray) -> np.ndarray:
        """Advance ``state`` by one appended position.

        ``x`` is the ``(rows, dim)`` raw interaction embedding of the new
        position; returns the final-layer forward-stream output at that
        position, exactly what :meth:`forward_stream` would emit there
        (to roundoff) had the whole sequence been re-encoded.
        """

    @abc.abstractmethod
    def forward_stream_with_capture(self, interactions: Tensor,
                                    mask: Optional[np.ndarray] = None
                                    ) -> Tuple[np.ndarray, object]:
        """Batched :meth:`forward_stream` that also captures per-layer
        internals (``capture``), from which :meth:`state_from_capture`
        cuts per-row extensible states — the warm-up path that builds a
        cold student's cache in one vectorized pass.
        """

    @abc.abstractmethod
    def state_from_capture(self, capture: object, row_indices,
                           length: int) -> ForwardStreamState:
        """Extract the state of ``row_indices`` (all of real length
        ``length``) from a :meth:`forward_stream_with_capture` capture.
        Copies: the returned state outlives the batch arrays.
        """


class BiDKTEncoder(BidirectionalEncoder):
    """Stacked bidirectional LSTM (the RCKT-DKT backbone)."""

    def __init__(self, dim: int, layers: int, rng: np.random.Generator,
                 dropout: float = 0.0):
        super().__init__()
        self.forward_layers = nn.ModuleList(
            [nn.LSTM(dim, dim, rng) for _ in range(layers)])
        self.backward_layers = nn.ModuleList(
            [nn.LSTM(dim, dim, rng, reverse=True) for _ in range(layers)])
        self.dropout = nn.Dropout(dropout, rng) if dropout > 0 else None

    def _run_stack(self, layers: nn.ModuleList, x: Tensor,
                   mask: Optional[np.ndarray] = None) -> Tensor:
        # Only thread the mask through the recurrence when it actually
        # truncates rows: an all-True mask is a no-op, and skipping it keeps
        # the exact-length bucket paths free of per-step select overhead.
        if mask is not None and mask.all():
            mask = None
        for i, layer in enumerate(layers):
            x = layer(x, mask=mask)
            if self.dropout is not None and i + 1 < len(layers):
                x = self.dropout(x)
        return x

    def forward_stream(self, interactions: Tensor,
                       mask: Optional[np.ndarray] = None) -> Tensor:
        return self._run_stack(self.forward_layers, interactions, mask=mask)

    def backward_stream(self, interactions: Tensor,
                        mask: Optional[np.ndarray] = None) -> Tensor:
        return self._run_stack(self.backward_layers, interactions, mask=mask)

    # ------------------------------------------------------------------
    # Incremental forward-stream serving API
    # ------------------------------------------------------------------
    def new_forward_state(self, rows: int) -> LSTMStreamState:
        h = [np.zeros((rows, layer.hidden_dim))
             for layer in self.forward_layers]
        c = [np.zeros((rows, layer.hidden_dim))
             for layer in self.forward_layers]
        return LSTMStreamState(h, c)

    def extend_forward_state(self, state: LSTMStreamState,
                             x: np.ndarray) -> np.ndarray:
        for index, layer in enumerate(self.forward_layers):
            h, c = layer.step_inference(x, state.h[index], state.c[index])
            state.h[index] = h
            state.c[index] = c
            x = h
        state.length += 1
        return x

    def forward_stream_with_capture(self, interactions: Tensor,
                                    mask: Optional[np.ndarray] = None
                                    ) -> Tuple[np.ndarray, object]:
        x = interactions.data
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if mask.all():
                mask = None
        finals = []
        for layer in self.forward_layers:
            x, h, c = layer.forward_inference_with_state(x, mask)
            finals.append((h, c))
        return x, finals

    def state_from_capture(self, capture, row_indices,
                           length: int) -> LSTMStreamState:
        rows = np.asarray(row_indices)
        h = [layer_h[rows].copy() for layer_h, _ in capture]
        c = [layer_c[rows].copy() for _, layer_c in capture]
        return LSTMStreamState(h, c, length)


class _DirectionalTransformer(nn.Module):
    """A stack of transformer blocks restricted to one direction.

    The mask is *non-strict* within the stream (a position may attend to
    itself): stream state at ``j`` summarizes inputs ``<= j`` (forward) or
    ``>= j`` (backward), and the final one-step shift in
    :func:`shift_and_combine` provides the strict exclusion of Eq. 25.
    """

    def __init__(self, dim: int, heads: int, layers: int,
                 rng: np.random.Generator, dropout: float,
                 monotonic: bool, reverse: bool):
        super().__init__()
        self.reverse = reverse
        self.positions = nn.PositionalEncoding(MAX_ENCODED_LENGTH, dim)
        self.blocks = nn.ModuleList([
            nn.TransformerBlock(dim, heads, rng, dropout=dropout,
                                monotonic=monotonic)
            for _ in range(layers)
        ])

    def forward(self, x: Tensor, mask: Optional[np.ndarray]) -> Tensor:
        length = x.shape[1]
        if self.reverse:
            direction = nn.anti_causal_mask(length, strict=False)
        else:
            direction = nn.causal_mask(length, strict=False)
        allowed = direction[None, None]
        if mask is not None:
            allowed = allowed & mask[:, None, None, :]
        x = self.positions(x)
        for block in self.blocks:
            x = block(x, mask=allowed)
        return x

    def forward_capture(self, x: Tensor, mask: Optional[np.ndarray]
                        ) -> Tuple[np.ndarray, List]:
        """:meth:`forward` that also returns each block's projected
        key/value arrays (forward direction only — the capture feeds the
        serving cache, and only causal streams are extensible)."""
        if self.reverse:
            raise ValueError("key/value capture only applies to the "
                             "forward (causal) stream")
        attentions = [block.attention for block in self.blocks]
        for attention in attentions:
            attention.capture_kv = True
        try:
            out = self.forward(x, mask)
        finally:
            for attention in attentions:
                attention.capture_kv = False
        captured = [attention.last_kv for attention in attentions]
        for attention in attentions:
            attention.last_kv = None
        return out.data, captured


class BiSAKTEncoder(BidirectionalEncoder):
    """Directional transformer pair (the RCKT-SAKT backbone).

    Per Sec. V-A4 the queries are the *responses* (interaction embeddings)
    rather than target questions, i.e. plain directional self-attention
    over the interaction stream.
    """

    monotonic = False

    def __init__(self, dim: int, layers: int, rng: np.random.Generator,
                 heads: int = 2, dropout: float = 0.0):
        super().__init__()
        self.forward_stack = _DirectionalTransformer(
            dim, heads, layers, rng, dropout, self.monotonic, reverse=False)
        self.backward_stack = _DirectionalTransformer(
            dim, heads, layers, rng, dropout, self.monotonic, reverse=True)

    def forward_stream(self, interactions: Tensor,
                       mask: Optional[np.ndarray] = None) -> Tensor:
        return self.forward_stack(interactions, mask)

    def backward_stream(self, interactions: Tensor,
                        mask: Optional[np.ndarray] = None) -> Tensor:
        return self.backward_stack(interactions, mask)

    # ------------------------------------------------------------------
    # Incremental forward-stream serving API
    # ------------------------------------------------------------------
    def new_forward_state(self, rows: int) -> AttentionStreamState:
        """Empty per-row attention state (one K/V prefix per block)."""
        stack = self.forward_stack
        return AttentionStreamState(
            [nn.KVCache(rows, stack.positions.dim) for _ in stack.blocks])

    def extend_forward_state(self, state: AttentionStreamState,
                             x: np.ndarray) -> np.ndarray:
        """Advance the K/V prefixes by one appended position.

        The positional table grows on demand, so extension is never
        length-bounded; the serving layer bounds *memory* instead by
        re-anchoring its window (which rebuilds the state from the
        window slice rather than extending past it).
        """
        position = state.length
        stack = self.forward_stack
        table = stack.positions.ensure(position + 1)
        x = x + table[position]
        for block, cache in zip(stack.blocks, state.caches):
            x = block.step_inference(x, cache)
        state.length += 1
        return x

    def forward_stream_with_capture(self, interactions: Tensor,
                                    mask: Optional[np.ndarray] = None
                                    ) -> Tuple[np.ndarray, object]:
        return self.forward_stack.forward_capture(interactions, mask)

    def state_from_capture(self, capture, row_indices,
                           length: int) -> AttentionStreamState:
        rows = np.asarray(row_indices)
        dim = self.forward_stack.positions.dim
        caches = [
            nn.KVCache(len(rows), dim,
                       keys=keys[rows, :length],
                       values=values[rows, :length])
            for keys, values in capture
        ]
        return AttentionStreamState(caches, length)


class BiAKTEncoder(BiSAKTEncoder):
    """Monotonic-attention variant (the RCKT-AKT backbone).

    The exponential decay acts on ``|i - j|``, which is symmetric, so the
    same mechanism serves both directions — the "duality of distance" the
    paper invokes.
    """

    monotonic = True


def build_encoder(name: str, dim: int, layers: int, rng: np.random.Generator,
                  heads: int = 2, dropout: float = 0.0) -> BidirectionalEncoder:
    """Factory keyed by the paper's encoder names (dkt | sakt | akt)."""
    if name == "dkt":
        return BiDKTEncoder(dim, layers, rng, dropout=dropout)
    if name == "sakt":
        return BiSAKTEncoder(dim, layers, rng, heads=heads, dropout=dropout)
    if name == "akt":
        return BiAKTEncoder(dim, layers, rng, heads=heads, dropout=dropout)
    raise ValueError(f"unknown encoder '{name}' (expected dkt|sakt|akt)")
