"""Bidirectional knowledge-state encoders (Eq. 25, Sec. V-A4).

The response influence approximation requires the encoder to see both past
and future context while *strictly excluding the position being predicted*:

    h_i = fwdEnc(A_{1:i-1}) + bwdEnc(A_{i+1:t+1})                  (Eq. 25)

Multi-layer subtlety: naively stacking a bidirectional layer leaks the
excluded position — the layer-1 state at ``i-1`` would already contain
backward information flowing through position ``i``.  We therefore keep two
*independent directional streams* through every layer (forward layers only
ever read forward-stream states, backward layers only backward-stream
states, as in ELMo's bidirectional LM) and combine them with a one-step
shift only at the very end.  A perturbation test in the suite verifies that
``h_i`` is exactly invariant to the input at position ``i``.

Three adapters mirror the paper's Sec. V-A4:

* ``BiDKTEncoder``  — stacked LSTMs (BiLSTM).
* ``BiSAKTEncoder`` — transformer blocks with directional masks, responses
  as queries.
* ``BiAKTEncoder``  — the same with AKT's monotonic (distance-decay)
  attention, "bi-directional due to the duality of distance".
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro import nn
from repro.tensor import Tensor, concat

MAX_ENCODED_LENGTH = 128


def shift_and_combine(forward_stream: Tensor, backward_stream: Tensor) -> Tensor:
    """``h_i = forward[i-1] + backward[i+1]`` with zeros past the edges.

    The zero contribution at the boundary realizes the paper's rule that
    the first response "directly uses" the backward encoder output (adding
    a zero forward part is the same thing), and symmetrically for the last.
    """
    batch, length, dim = forward_stream.shape
    zeros = Tensor(np.zeros((batch, 1, dim)))
    past = concat([zeros, forward_stream[:, :length - 1, :]], axis=1)
    future = concat([backward_stream[:, 1:, :], zeros], axis=1)
    return past + future


class BidirectionalEncoder(nn.Module, abc.ABC):
    """Maps interaction embeddings ``(B, L, d)`` to hidden states ``h_i``.

    The two directional streams are exposed separately because the
    multi-target fast path exploits an asymmetry of Eq. 25: the *forward*
    stream at position ``j`` only reads inputs ``<= j``, which for every
    counterfactual variant are independent of the target column, so one
    forward pass per sequence serves all of its targets.  Only the
    *backward* stream (which consumes the intervened target first) needs
    one row per target.
    """

    @abc.abstractmethod
    def forward_stream(self, interactions: Tensor,
                       mask: Optional[np.ndarray] = None) -> Tensor:
        """Directional states summarizing inputs ``<= j`` at position ``j``."""

    @abc.abstractmethod
    def backward_stream(self, interactions: Tensor,
                        mask: Optional[np.ndarray] = None) -> Tensor:
        """Directional states summarizing inputs ``>= j`` at position ``j``."""

    def forward(self, interactions: Tensor,
                mask: Optional[np.ndarray] = None) -> Tensor:
        """``mask`` is ``(B, L)`` with True at real positions."""
        return shift_and_combine(self.forward_stream(interactions, mask),
                                 self.backward_stream(interactions, mask))


class BiDKTEncoder(BidirectionalEncoder):
    """Stacked bidirectional LSTM (the RCKT-DKT backbone)."""

    def __init__(self, dim: int, layers: int, rng: np.random.Generator,
                 dropout: float = 0.0):
        super().__init__()
        self.forward_layers = nn.ModuleList(
            [nn.LSTM(dim, dim, rng) for _ in range(layers)])
        self.backward_layers = nn.ModuleList(
            [nn.LSTM(dim, dim, rng, reverse=True) for _ in range(layers)])
        self.dropout = nn.Dropout(dropout, rng) if dropout > 0 else None

    def _run_stack(self, layers: nn.ModuleList, x: Tensor,
                   mask: Optional[np.ndarray] = None) -> Tensor:
        # Only thread the mask through the recurrence when it actually
        # truncates rows: an all-True mask is a no-op, and skipping it keeps
        # the exact-length bucket paths free of per-step select overhead.
        if mask is not None and mask.all():
            mask = None
        for i, layer in enumerate(layers):
            x = layer(x, mask=mask)
            if self.dropout is not None and i + 1 < len(layers):
                x = self.dropout(x)
        return x

    def forward_stream(self, interactions: Tensor,
                       mask: Optional[np.ndarray] = None) -> Tensor:
        return self._run_stack(self.forward_layers, interactions, mask=mask)

    def backward_stream(self, interactions: Tensor,
                        mask: Optional[np.ndarray] = None) -> Tensor:
        return self._run_stack(self.backward_layers, interactions, mask=mask)


class _DirectionalTransformer(nn.Module):
    """A stack of transformer blocks restricted to one direction.

    The mask is *non-strict* within the stream (a position may attend to
    itself): stream state at ``j`` summarizes inputs ``<= j`` (forward) or
    ``>= j`` (backward), and the final one-step shift in
    :func:`shift_and_combine` provides the strict exclusion of Eq. 25.
    """

    def __init__(self, dim: int, heads: int, layers: int,
                 rng: np.random.Generator, dropout: float,
                 monotonic: bool, reverse: bool):
        super().__init__()
        self.reverse = reverse
        self.positions = nn.PositionalEncoding(MAX_ENCODED_LENGTH, dim)
        self.blocks = nn.ModuleList([
            nn.TransformerBlock(dim, heads, rng, dropout=dropout,
                                monotonic=monotonic)
            for _ in range(layers)
        ])

    def forward(self, x: Tensor, mask: Optional[np.ndarray]) -> Tensor:
        length = x.shape[1]
        if self.reverse:
            direction = nn.anti_causal_mask(length, strict=False)
        else:
            direction = nn.causal_mask(length, strict=False)
        allowed = direction[None, None]
        if mask is not None:
            allowed = allowed & mask[:, None, None, :]
        x = self.positions(x)
        for block in self.blocks:
            x = block(x, mask=allowed)
        return x


class BiSAKTEncoder(BidirectionalEncoder):
    """Directional transformer pair (the RCKT-SAKT backbone).

    Per Sec. V-A4 the queries are the *responses* (interaction embeddings)
    rather than target questions, i.e. plain directional self-attention
    over the interaction stream.
    """

    monotonic = False

    def __init__(self, dim: int, layers: int, rng: np.random.Generator,
                 heads: int = 2, dropout: float = 0.0):
        super().__init__()
        self.forward_stack = _DirectionalTransformer(
            dim, heads, layers, rng, dropout, self.monotonic, reverse=False)
        self.backward_stack = _DirectionalTransformer(
            dim, heads, layers, rng, dropout, self.monotonic, reverse=True)

    def forward_stream(self, interactions: Tensor,
                       mask: Optional[np.ndarray] = None) -> Tensor:
        return self.forward_stack(interactions, mask)

    def backward_stream(self, interactions: Tensor,
                        mask: Optional[np.ndarray] = None) -> Tensor:
        return self.backward_stack(interactions, mask)


class BiAKTEncoder(BiSAKTEncoder):
    """Monotonic-attention variant (the RCKT-AKT backbone).

    The exponential decay acts on ``|i - j|``, which is symmetric, so the
    same mechanism serves both directions — the "duality of distance" the
    paper invokes.
    """

    monotonic = True


def build_encoder(name: str, dim: int, layers: int, rng: np.random.Generator,
                  heads: int = 2, dropout: float = 0.0) -> BidirectionalEncoder:
    """Factory keyed by the paper's encoder names (dkt | sakt | akt)."""
    if name == "dkt":
        return BiDKTEncoder(dim, layers, rng, dropout=dropout)
    if name == "sakt":
        return BiSAKTEncoder(dim, layers, rng, heads=heads, dropout=dropout)
    if name == "akt":
        return BiAKTEncoder(dim, layers, rng, heads=heads, dropout=dropout)
    raise ValueError(f"unknown encoder '{name}' (expected dkt|sakt|akt)")
