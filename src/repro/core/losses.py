"""RCKT training objectives (Sec. IV-C3 and IV-D2).

* ``counterfactual_loss`` — Eq. 16: maximize the label-aligned gap between
  the total correct and incorrect response influences, in negative-log form
  so near-zero gaps are punished hardest, plus the Eq. 17 constraint ``L*``
  that every individual influence be non-negative.
* ``joint_bce_losses`` — Eq. 27-28: standard BCE of the probability
  generator on the factual sequence (``L_F``) and the two masked
  augmentations (``L_M+`` with incorrect responses hidden, ``L_M-`` with
  correct responses hidden), which regularize the generator so the
  counterfactual variants (all-correct-masked / all-incorrect-masked) stay
  in-distribution.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.tensor import Tensor, binary_cross_entropy

from .influence import InfluenceComputation

_EPS = 1e-7


def counterfactual_loss(influences: InfluenceComputation,
                        target_labels: np.ndarray, alpha: float = 1.0,
                        use_constraint: bool = True) -> Tensor:
    """Mean Eq. 16 loss over the batch.

    ``target_labels`` are the ground-truth correctness bits of each row's
    target.  Rows without history (t = 0) carry no counterfactual signal
    and are weighted out.
    """
    target_labels = np.asarray(target_labels, dtype=np.float64)
    t = np.maximum(influences.history_lengths, 1.0)
    # (-1)^{r} (Δ- - Δ+): negative of the label-aligned gap.
    sign = np.where(target_labels == 1, -1.0, 1.0)
    gap = (influences.delta_minus - influences.delta_plus) * Tensor(sign)
    # Scale into (0, 1) for the logarithm: each |Δ_i| <= 1 so |gap| <= t.
    scaled = gap * Tensor(1.0 / (2.0 * t)) + 0.5
    log_term = -(scaled.clip(_EPS, 1.0 - _EPS).log())

    weights = (influences.history_lengths > 0).astype(np.float64)
    total_weight = max(weights.sum(), 1.0)
    loss = (log_term * Tensor(weights)).sum() * (1.0 / total_weight)

    if use_constraint and alpha > 0:
        # L*: hinge on negative influences (Eq. 17), averaged per row.
        zero = Tensor(np.zeros(influences.correct_deltas.shape))
        negative_part = ((-influences.correct_deltas).maximum(zero)
                         + (-influences.incorrect_deltas).maximum(zero))
        constraint = negative_part.sum(axis=1) * Tensor(weights)
        loss = loss + alpha * constraint.sum() * (1.0 / total_weight)
    return loss


def joint_bce_losses(probabilities: Dict[str, Tensor], responses: np.ndarray,
                     history_mask: np.ndarray) -> Dict[str, Tensor]:
    """``L_F``, ``L_M+`` and ``L_M-`` (Eq. 27-28).

    Every loss supervises the *true* correctness of the past responses
    (positions in ``history_mask``, i.e. ``i = 1..t`` as in the paper);
    only the visible context differs between the three variants.
    """
    labels = responses.astype(np.float64)
    weights = history_mask.astype(np.float64)
    losses = {}
    for name in ("factual", "m_plus", "m_minus"):
        if name not in probabilities:
            raise KeyError(f"missing probabilities for '{name}'")
        losses[name] = binary_cross_entropy(probabilities[name], labels,
                                            weights=weights)
    return losses
