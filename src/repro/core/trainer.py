"""Joint training loop for RCKT (Sec. IV-D2).

Each training sample is a (prefix, target) pair: the counterfactual loss
needs a concrete target question at the end of the sequence, so every epoch
samples ``targets_per_sequence`` target positions per subsequence, slices
the prefixes, and buckets them by identical length (exact bidirectional
LSTMs — no padding enters the reversed stream).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.data import KTDataset, StudentSequence, collate
from repro.eval import EarlyStopping, accuracy_score, auc_score
from repro.optim import Adam, clip_grad_norm

from .rckt import RCKT


@dataclass
class RCKTTrainResult:
    train_losses: List[float] = field(default_factory=list)
    val_aucs: List[float] = field(default_factory=list)
    best_val_auc: float = 0.0
    best_epoch: int = -1


def _sample_targets(dataset: KTDataset, per_sequence: int, min_history: int,
                    rng: np.random.Generator,
                    balanced: bool = True) -> List[Tuple[StudentSequence, int]]:
    """Pick target positions for this epoch's counterfactual samples.

    With ``balanced=True`` the correct/incorrect target labels are sampled
    evenly per sequence (when both exist): KT corpora are 63-78% correct,
    and an unbalanced sample lets Eq. 16 collapse into "Δ+ always wins".
    """
    specs: List[Tuple[StudentSequence, int]] = []
    for sequence in dataset:
        candidates = np.arange(min_history, len(sequence))
        if candidates.size == 0:
            continue
        count = min(per_sequence, candidates.size)
        if not balanced:
            chosen = rng.choice(candidates, size=count, replace=False)
        else:
            labels = np.array([sequence[int(c)].correct for c in candidates])
            positives = candidates[labels == 1]
            negatives = candidates[labels == 0]
            chosen_list = []
            take_neg = min(len(negatives), (count + 1) // 2)
            take_pos = min(len(positives), count - take_neg)
            if take_neg:
                chosen_list.extend(rng.choice(negatives, size=take_neg,
                                              replace=False))
            if take_pos:
                chosen_list.extend(rng.choice(positives, size=take_pos,
                                              replace=False))
            remaining = count - len(chosen_list)
            if remaining > 0:
                leftover = np.setdiff1d(candidates, np.array(chosen_list))
                if leftover.size:
                    chosen_list.extend(rng.choice(
                        leftover, size=min(remaining, leftover.size),
                        replace=False))
            chosen = np.array(chosen_list, dtype=np.int64)
        for col in chosen:
            specs.append((sequence, int(col)))
    return specs


def _bucketed_batches(specs: List[Tuple[StudentSequence, int]],
                      batch_size: int, rng: np.random.Generator):
    """Shuffle specs, group by prefix length, yield collated batches."""
    order = rng.permutation(len(specs))
    buckets: Dict[int, List[Tuple[StudentSequence, int]]] = {}
    for index in order:
        sequence, col = specs[index]
        buckets.setdefault(col + 1, []).append((sequence, col))
    lengths = list(buckets)
    rng.shuffle(lengths)
    for length in lengths:
        group = buckets[length]
        for start in range(0, len(group), batch_size):
            chunk = group[start:start + batch_size]
            batch = collate([seq[:col + 1] for seq, col in chunk])
            cols = np.array([col for _, col in chunk])
            yield batch, cols


def evaluate_rckt(model: RCKT, dataset: KTDataset, batch_size: int = 32,
                  stride: int = 1) -> Dict[str, float]:
    """AUC/ACC over every evaluated target position."""
    labels, scores = model.predict_dataset(dataset, batch_size=batch_size,
                                           stride=stride)
    return {"auc": auc_score(labels, scores),
            "acc": accuracy_score(labels, scores)}


def fit_rckt(model: RCKT, train: KTDataset, validation: KTDataset = None,
             eval_stride: int = 1, verbose: bool = False) -> RCKTTrainResult:
    """Train with Adam + early stopping on validation AUC (10-epoch patience)."""
    config = model.config
    optimizer = Adam(model.parameters(), lr=config.lr,
                     weight_decay=config.weight_decay)
    stopper = EarlyStopping(patience=config.patience)
    result = RCKTTrainResult()
    rng = np.random.default_rng(config.seed)

    for epoch in range(config.epochs):
        model.train()
        specs = _sample_targets(train, config.targets_per_sequence,
                                config.min_history, rng,
                                balanced=config.balanced_targets)
        epoch_losses = []
        for batch, cols in _bucketed_batches(specs, config.batch_size, rng):
            optimizer.zero_grad()
            loss = model.loss(batch, cols)
            loss.backward()
            if config.grad_clip:
                clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            epoch_losses.append(loss.item())
        result.train_losses.append(float(np.mean(epoch_losses)))

        if validation is not None and len(validation):
            metrics = evaluate_rckt(model, validation,
                                    batch_size=config.batch_size,
                                    stride=eval_stride)
            result.val_aucs.append(metrics["auc"])
            if verbose:
                print(f"epoch {epoch:3d}  loss {result.train_losses[-1]:.4f}  "
                      f"val auc {metrics['auc']:.4f}")
            if stopper.update(metrics["auc"], epoch, model.state_dict()):
                break

    if stopper.should_restore:
        model.load_state_dict(stopper.best_state)
        result.best_val_auc = stopper.best_value
        result.best_epoch = stopper.best_epoch
    elif result.val_aucs:
        result.best_val_auc = max(result.val_aucs)
        result.best_epoch = int(np.argmax(result.val_aucs))
    return result
