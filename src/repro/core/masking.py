"""Counterfactual sequence construction (Sec. IV-B, Eq. 3-6 / Eq. 19).

Given a response row and a target position, this module builds the response
*category* arrays (0 = incorrect, 1 = correct, 2 = masked) that feed the
adaptive probability generator:

After the response influence approximation all interventions happen at the
**target** question, so only four variants are needed per sample:

* ``F+``  — target assumed correct, every past response factual.
* ``CF-`` — target intervened to incorrect; by the monotonicity assumption
  the drop in proficiency cannot flip past *incorrect* responses, so they
  are **retained**, while past *correct* responses become unreliable and
  are **masked**.
* ``F-`` / ``CF+`` — the mirror image for the incorrect-side influences.

Three more variants support joint training (Sec. IV-D2):

* ``FACTUAL`` — all past responses as recorded, target masked (unknown).
* ``M+`` — incorrect responses masked (context for ``L_M+``).
* ``M-`` — correct responses masked (context for ``L_M-``).

The "-mono" ablation (Table V) disables the retain/mask logic: the
counterfactual sequences keep every non-intervened response factual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

MASKED = 2

# ---------------------------------------------------------------------------
# Sliding-window context (long-history serving)
# ---------------------------------------------------------------------------
#
# Long histories are scored over a *window*: the most recent ``window``
# history steps, with the window start advancing in strides of ``hop``.
# The windowed context is defined by truncation — the sequence is re-based
# so the window's first step sits at position 0 — rather than by a banded
# attention mask over the full sequence.  Truncation is the only definition
# that stays exact under multi-layer encoders: with a banded mask, layer
# ``k``'s state at position ``j`` summarizes a receptive field of
# ``k * window`` steps, so stacked banded attention (and any LSTM) would
# *not* equal scoring the truncated history.  Re-basing also keeps the
# absolute sinusoidal positional encodings aligned with a from-scratch
# encode of the window, which is what makes the windowed-vs-recompute
# parity tests exact (1e-10) instead of approximate.


def window_start(length: int, window: Optional[int], hop: int = 1) -> int:
    """First history position inside the window for a ``length``-step history.

    Parameters
    ----------
    length:
        Number of history steps recorded so far.
    window:
        Maximum history steps the context may span; ``None`` disables
        windowing (returns 0).
    hop:
        Re-anchoring stride: the start only moves in multiples of ``hop``,
        so the context length varies in ``(window - hop, window]``.  With
        ``hop=1`` the context is exactly the last ``window`` steps.  A
        larger hop lets the serving layer amortize cache rebuilds — the
        anchored start is a pure function of ``length``, so cached and
        from-scratch scoring agree on the same context.

    Returns
    -------
    int
        The window's first history position (0 when the history fits).

    Raises
    ------
    ValueError
        If ``window < 2`` or ``hop`` is not in ``[1, window)``.  A window
        of at least 2 with ``hop < window`` guarantees every windowed
        target keeps at least one history step of context.
    """
    if window is None or length <= window:
        if window is not None:
            check_window(window, hop)
        return 0
    check_window(window, hop)
    return hop * (-((window - length) // hop))


def window_starts(lengths: np.ndarray, window: Optional[int],
                  hop: int = 1) -> np.ndarray:
    """Vectorized :func:`window_start` over an array of history lengths."""
    lengths = np.asarray(lengths, dtype=np.int64)
    if window is None:
        return np.zeros_like(lengths)
    check_window(window, hop)
    overshoot = lengths - window
    starts = hop * (-((-overshoot) // hop))
    return np.where(overshoot > 0, starts, 0)


def check_window(window: int, hop: int) -> None:
    """Validate a (window, hop) pair; raises ``ValueError`` when invalid."""
    if window < 2:
        raise ValueError(f"window must be at least 2, got {window}")
    if not 1 <= hop < window:
        raise ValueError(f"window_hop must be in [1, window), got {hop} "
                         f"for window {window}")

VARIANT_ORDER = ("f_plus", "cf_minus", "f_minus", "cf_plus",
                 "factual", "m_plus", "m_minus")
COUNTERFACTUAL_VARIANTS = VARIANT_ORDER[:4]
JOINT_VARIANTS = VARIANT_ORDER[4:]


@dataclass
class VariantSet:
    """The seven response-category arrays for one batch.

    Every array has the batch's ``(B, L)`` shape.  ``target_cols`` holds the
    per-row target position; ``history_mask`` marks valid *past* positions
    (real, before the target); ``correct_mask`` / ``incorrect_mask``
    partition the history by factual correctness.
    """

    variants: Dict[str, np.ndarray]
    target_cols: np.ndarray
    history_mask: np.ndarray
    correct_mask: np.ndarray
    incorrect_mask: np.ndarray

    def stacked(self, names=VARIANT_ORDER) -> np.ndarray:
        """Concatenate the requested variants along the batch axis."""
        return np.concatenate([self.variants[n] for n in names], axis=0)


def build_variants(responses: np.ndarray, mask: np.ndarray,
                   target_cols: np.ndarray,
                   use_monotonicity: bool = True) -> VariantSet:
    """Build all seven variants for a batch.

    Parameters
    ----------
    responses:
        ``(B, L)`` recorded 0/1 correctness.
    mask:
        ``(B, L)`` True at real positions.
    target_cols:
        ``(B,)`` the target position of each row (the question being
        predicted).  Positions after the target are expected to be padding
        (the caller slices prefixes), but any are excluded defensively.
    use_monotonicity:
        False reproduces the "-mono" ablation: interventions no longer
        mask the rest of the sequence.
    """
    responses = np.asarray(responses)
    mask = np.asarray(mask, dtype=bool)
    target_cols = np.asarray(target_cols)
    batch, length = responses.shape
    if target_cols.shape != (batch,):
        raise ValueError("target_cols must have one entry per row")
    if np.any(target_cols < 0) or np.any(target_cols >= length):
        raise ValueError("target_cols out of range")
    rows = np.arange(batch)
    if not mask[rows, target_cols].all():
        raise ValueError("every target position must be a real response")

    columns = np.arange(length)[None, :]
    history = mask & (columns < target_cols[:, None])
    correct = history & (responses == 1)
    incorrect = history & (responses == 0)

    def with_target(base: np.ndarray, target_value: int) -> np.ndarray:
        out = base.copy()
        out[rows, target_cols] = target_value
        return out

    factual = responses.copy()
    if use_monotonicity:
        # Monotonicity retention: flipping the target down (CF-) keeps the
        # incorrect past and masks the correct past; flipping up (CF+)
        # mirrors it (Sec. IV-B).
        cf_minus_base = np.where(correct, MASKED, factual)
        cf_plus_base = np.where(incorrect, MASKED, factual)
    else:
        cf_minus_base = factual
        cf_plus_base = factual

    variants = {
        "f_plus": with_target(factual, 1),
        "cf_minus": with_target(cf_minus_base, 0),
        "f_minus": with_target(factual, 0),
        "cf_plus": with_target(cf_plus_base, 1),
        "factual": with_target(factual, MASKED),
        "m_plus": with_target(np.where(incorrect, MASKED, factual), MASKED),
        "m_minus": with_target(np.where(correct, MASKED, factual), MASKED),
    }
    return VariantSet(variants, target_cols, history, correct, incorrect)


def build_exact_counterfactual(responses: np.ndarray, mask: np.ndarray,
                               target_col: int, flip_col: int,
                               use_monotonicity: bool = True) -> np.ndarray:
    """One *forward* (pre-approximation) counterfactual row (Eq. 4-5).

    Flips the response at ``flip_col`` and applies monotonicity
    retention/masking to the other past responses; the target's response is
    masked (it is the unknown being predicted).  Used by the Table VI
    "before approximation" path, which needs one such row per past
    response.
    """
    responses = np.asarray(responses)
    if responses.ndim != 1:
        raise ValueError("expects a single sequence row")
    if not (0 <= flip_col < target_col):
        raise ValueError("flip_col must precede target_col")
    out = responses.copy()
    original = responses[flip_col]
    flipped = 1 - original
    if use_monotonicity:
        history = np.asarray(mask, dtype=bool) & (np.arange(len(out)) < target_col)
        if original == 1:
            # Correct -> incorrect: proficiency drops; correct answers are
            # no longer reliable evidence, incorrect ones still are.
            unreliable = history & (responses == 1)
        else:
            unreliable = history & (responses == 0)
        out = np.where(unreliable, MASKED, out)
    out[flip_col] = flipped
    out[target_col] = MASKED
    return out
