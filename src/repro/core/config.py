"""RCKT configuration and the paper's Table III hyper-parameter registry."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

ENCODERS = ("dkt", "sakt", "akt")


@dataclass
class RCKTConfig:
    """All knobs of the RCKT framework.

    The ablation switches map to Table V rows:

    * ``use_joint``      — False reproduces "-joint" (sets the effective
      loss balancer to 0, no factual/masked BCE regularization).
    * ``use_monotonicity`` — False reproduces "-mono" (counterfactual
      sequences keep every other response factual instead of
      masking-by-monotonicity).
    * ``use_constraint`` — False reproduces "-con" (drops the L* term that
      forces response influences to be non-negative).
    """

    encoder: str = "dkt"
    dim: int = 32
    layers: int = 2
    heads: int = 2
    dropout: float = 0.0
    lambda_balance: float = 0.1      # λ in Eq. 29
    alpha: float = 1.0               # α in Eq. 16
    # Training
    lr: float = 1e-3
    weight_decay: float = 0.0
    epochs: int = 20
    batch_size: int = 32
    patience: int = 10
    grad_clip: float = 5.0
    seed: int = 0
    targets_per_sequence: int = 2    # sampled counterfactual targets/sequence/epoch
    min_history: int = 1             # smallest prefix length that gets a target
    balanced_targets: bool = True    # sample correct/incorrect targets evenly
    # (KT corpora are 63-78% correct; at small scale the Eq. 16 objective
    # otherwise collapses to the majority class.  Balancing the *sampled
    # training targets* keeps the objective itself faithful to the paper.)
    score_normalization: str = "t"   # "t" (Eq. 16 paper scaling) | "sum" | "raw"
    # Ablations
    use_joint: bool = True
    use_monotonicity: bool = True
    use_constraint: bool = True

    def __post_init__(self) -> None:
        if self.encoder not in ENCODERS:
            raise ValueError(f"encoder must be one of {ENCODERS}, "
                             f"got '{self.encoder}'")
        if self.score_normalization not in ("t", "sum", "raw"):
            raise ValueError(f"unknown score_normalization "
                             f"'{self.score_normalization}'")
        if not self.use_joint:
            # "-joint ... which means λ is set to 0" (Sec. V-C).
            object.__setattr__(self, "lambda_balance", 0.0)

    def with_overrides(self, **kwargs) -> "RCKTConfig":
        return replace(self, **kwargs)


# Table III: {learning rate, λ, l2, dropout, #layers} per (dataset, encoder).
PAPER_HYPERPARAMETERS: Dict[Tuple[str, str], Dict[str, float]] = {
    ("assist09", "dkt"): dict(lr=1e-3, lambda_balance=0.1, weight_decay=1e-5,
                              dropout=0.3, layers=2),
    ("assist09", "sakt"): dict(lr=2e-3, lambda_balance=0.1, weight_decay=2e-4,
                               dropout=0.2, layers=3),
    ("assist09", "akt"): dict(lr=5e-4, lambda_balance=0.01, weight_decay=5e-5,
                              dropout=0.0, layers=3),
    ("assist12", "dkt"): dict(lr=2e-3, lambda_balance=0.01, weight_decay=1e-5,
                              dropout=0.0, layers=3),
    ("assist12", "sakt"): dict(lr=2e-3, lambda_balance=0.1, weight_decay=5e-4,
                               dropout=0.2, layers=3),
    ("assist12", "akt"): dict(lr=5e-4, lambda_balance=0.05, weight_decay=1e-5,
                              dropout=0.0, layers=3),
    ("slepemapy", "dkt"): dict(lr=1e-3, lambda_balance=0.1, weight_decay=0.0,
                               dropout=0.0, layers=3),
    ("slepemapy", "sakt"): dict(lr=5e-4, lambda_balance=0.4, weight_decay=1e-5,
                                dropout=0.0, layers=3),
    ("slepemapy", "akt"): dict(lr=5e-4, lambda_balance=0.01, weight_decay=1e-5,
                               dropout=0.0, layers=2),
    ("eedi", "dkt"): dict(lr=1e-3, lambda_balance=0.1, weight_decay=0.0,
                          dropout=0.0, layers=3),
    ("eedi", "sakt"): dict(lr=1e-3, lambda_balance=0.1, weight_decay=1e-5,
                           dropout=0.0, layers=3),
    ("eedi", "akt"): dict(lr=5e-4, lambda_balance=0.01, weight_decay=1e-5,
                          dropout=0.0, layers=3),
}


def paper_config(dataset: str, encoder: str, **overrides) -> RCKTConfig:
    """Table III configuration for a (dataset, encoder) pair.

    ``overrides`` let the bench harness shrink dims/epochs while keeping
    the paper's relative hyper-parameters.
    """
    try:
        params = dict(PAPER_HYPERPARAMETERS[(dataset, encoder)])
    except KeyError:
        raise KeyError(f"no Table III entry for ({dataset}, {encoder})") from None
    params["layers"] = int(params["layers"])
    params.update(overrides)
    return RCKTConfig(encoder=encoder, **params)
