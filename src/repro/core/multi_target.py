"""Vectorized multi-target inference: the fast path of ``predict_dataset``.

The legacy evaluation protocol materializes one re-collated prefix batch
per target position, so a sequence of length ``T`` costs O(T^2) collation
work and runs ``4T`` full encoder rows (4 counterfactual variants per
target).  This module restructures that work around two observations:

1. **Collate once.**  ``expand_targets`` semantics: a target at column
   ``c`` is a row of the sequence's single collated batch whose mask is
   truncated after ``c``.  The mask-aware encoders make a truncated row
   bit-compatible with the exact prefix batch (see
   :class:`repro.nn.LSTM` and the attention key masks).

2. **Forward streams are target-independent.**  Eq. 25's forward state at
   position ``j`` only reads inputs ``<= j``.  For every counterfactual
   variant the content below the target is a fixed transform of the
   factual row (factual for ``F+``/``F-``, correct-masked for ``CF-``,
   incorrect-masked for ``CF+``) — independent of *which* column is the
   target.  So one forward pass over each of the three base rows serves
   every target of the sequence, and only the backward stream (which
   consumes the intervened target first) needs one row per
   (variant, target) pair.  This halves encoder work and lets the
   question/concept embeddings be computed once per sequence instead of
   once per variant row.

Targets are processed in column-sorted chunks truncated to the chunk's
longest target, so a target at column ``c`` pays O(c) recurrence steps
(O(c^2) attention) like its exact prefix would, while sharing one stacked
generator pass with ``target_batch - 1`` neighbours.

Long histories can additionally be scored over a sliding ``window``: a
target whose history exceeds the window is re-based onto its anchored
window slice (:func:`repro.core.masking.window_start`,
:func:`repro.data.expand_windowed_targets`) and scored exactly as if the
history had been truncated there — the chunks of windowed targets are
all near window-width, so the column banding respects window boundaries
by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data import (Batch, KTDataset, collate, expand_targets,
                        expand_windowed_targets)
from repro.tensor import Tensor, concat

from .influence import compute_influences
from .masking import (COUNTERFACTUAL_VARIANTS, MASKED, VariantSet,
                      window_starts)

# variant -> (forward-stream base row, intervention value at the target)
VARIANT_BASES: Dict[str, Tuple[str, int]] = {
    "f_plus": ("factual", 1),
    "cf_minus": ("correct_masked", 0),
    "f_minus": ("factual", 0),
    "cf_plus": ("incorrect_masked", 1),
}

FORWARD_BASES = ("factual", "correct_masked", "incorrect_masked")


class MultiTargetContext:
    """Target-independent state for one collated group of sequences.

    Built once per group (inside the caller's ``eval``/``no_grad`` scope):
    the fused question/concept embeddings and the three shared forward
    encoder streams.  ``scores_for`` then prices any subset of
    (row, target-column) pairs against this cache.
    """

    def __init__(self, model, base: Batch,
                 question_vectors: np.ndarray = None,
                 forward_streams: Dict[str, np.ndarray] = None):
        """``question_vectors`` / ``forward_streams`` inject precomputed
        values (the serving layer's per-student incremental caches —
        :mod:`repro.serve.forward_cache`); both must cover ``base``'s
        full ``(B, L)`` grid.  Omitted, they are computed here.
        """
        self.base = base
        generator = model.generator
        self.normalization = model.config.score_normalization
        self.use_monotonicity = model.config.use_monotonicity
        if question_vectors is None:
            question_vectors = generator.embedder.question_vectors(base).data
        self.question_vectors = question_vectors
        real = base.mask
        responses = base.responses
        if self.use_monotonicity:
            self.base_responses = {
                "factual": responses,
                "correct_masked": np.where(real & (responses == 1),
                                           MASKED, responses),
                "incorrect_masked": np.where(real & (responses == 0),
                                             MASKED, responses),
            }
        else:
            # The "-mono" ablation keeps every non-intervened response
            # factual, so all variants share the factual forward stream.
            self.base_responses = {name: responses for name in FORWARD_BASES}
        if forward_streams is not None:
            missing = set(FORWARD_BASES) - set(forward_streams)
            if missing:
                raise KeyError(f"injected forward streams missing "
                               f"{sorted(missing)}")
            self.forward_streams = forward_streams
        else:
            self.forward_streams = {}
            encoded = {}
            for name in FORWARD_BASES:
                content = self.base_responses[name]
                token = id(content)  # all three alias one array in "-mono"
                if token not in encoded:
                    interactions = Tensor(self.question_vectors) \
                        + generator.embedder.response_embedding(content)
                    encoded[token] = generator.encoder.forward_stream(
                        interactions, mask=base.mask).data
                self.forward_streams[name] = encoded[token]
        self._generator = generator

    def scores_for(self, row_indices: np.ndarray,
                   target_cols: np.ndarray) -> np.ndarray:
        """Influence scores for each (row, target-column) pair.

        ``row_indices[k]`` picks a row of the context's base batch and
        ``target_cols[k]`` the column to score there (a real response,
        or the assembled probe column in serving).  Returns one score in
        (0, 1) per pair; raises ``ValueError`` when a target lands on a
        padded position.
        """
        return self.influences_for(row_indices, target_cols).scores

    def influences_for(self, row_indices: np.ndarray,
                       target_cols: np.ndarray):
        """Full per-position influence quantities for each target pair.

        Same shared-forward-stream pricing as :meth:`scores_for` but
        returns the :class:`~repro.core.influence.InfluenceComputation`
        itself — per-position Δ grids, Δ⁺/Δ⁻ totals, scores — which is
        what the serving layer's explanation queries itemize.  Grids are
        truncated to ``max(target_cols) + 1`` columns; row ``k`` of the
        result corresponds to pair ``k``.
        """
        rows = np.asarray(row_indices)
        cols = np.asarray(target_cols)
        if not self.base.mask[rows, cols].all():
            raise ValueError("every target position must be a real response")
        generator = self._generator
        count = len(rows)
        width = int(cols.max()) + 1
        arange = np.arange(count)
        columns = np.arange(width)[None, :]

        mask = self.base.mask[rows, :width] & (columns <= cols[:, None])
        history = mask & (columns < cols[:, None])
        responses = self.base.responses[rows, :width]
        correct = history & (responses == 1)
        incorrect = history & (responses == 0)

        # Backward-stream rows: base-variant content with the intervention
        # written at the target column, one row per (variant, target).
        variant_rows = {}
        for name in COUNTERFACTUAL_VARIANTS:
            base_name, intervention = VARIANT_BASES[name]
            content = self.base_responses[base_name][rows, :width].copy()
            content[arange, cols] = intervention
            variant_rows[name] = content
        stacked_responses = np.concatenate(
            [variant_rows[name] for name in COUNTERFACTUAL_VARIANTS], axis=0)

        questions = self.question_vectors[rows, :width]
        questions_stacked = np.tile(questions, (len(COUNTERFACTUAL_VARIANTS), 1, 1))
        interactions = Tensor(questions_stacked) \
            + generator.embedder.response_embedding(stacked_responses)
        stacked_mask = np.tile(mask, (len(COUNTERFACTUAL_VARIANTS), 1))
        backward = generator.encoder.backward_stream(interactions,
                                                     mask=stacked_mask)

        # Forward streams: gathered from the per-group cache instead of
        # re-encoded — the target only ever reads states at columns < it.
        forward = np.concatenate(
            [self.forward_streams[VARIANT_BASES[name][0]][rows, :width]
             for name in COUNTERFACTUAL_VARIANTS], axis=0)

        from .encoders import shift_and_combine
        hidden = shift_and_combine(Tensor(forward), backward)
        logits = generator.head(
            concat([hidden, Tensor(questions_stacked)], axis=-1)).squeeze(-1)
        probabilities = logits.sigmoid()
        per_variant = {
            name: probabilities[i * count:(i + 1) * count]
            for i, name in enumerate(COUNTERFACTUAL_VARIANTS)
        }
        variants = VariantSet(variant_rows, cols, history, correct, incorrect)
        return compute_influences(per_variant, variants,
                                  normalization=self.normalization)


def column_banded_chunks(cols: np.ndarray, target_batch: int
                         ) -> List[np.ndarray]:
    """Split request indices into column-banded chunks.

    Chunks grow over column-sorted requests until ``target_batch``
    members or until the next request's column would pad the whole chunk
    by more than ~25%, whichever comes first.  Ragged serving batches
    then pay for their own history lengths, not the longest request's.
    Chunks are mutually independent — the ``workers`` thread pools in
    :func:`score_batch_targets` / :func:`predict_dataset_fast` exploit
    exactly this.
    """
    order = np.argsort(cols, kind="stable")
    chunks: List[np.ndarray] = []
    start = 0
    while start < len(order):
        narrowest = int(cols[order[start]]) + 1
        end = start + 1
        while (end < len(order) and end - start < target_batch
               and cols[order[end]] < 1.25 * narrowest + 2):
            end += 1
        chunks.append(order[start:end])
        start = end
    return chunks


def map_chunks(worker, chunks, workers: int, executor=None):
    """Run ``worker`` over every chunk, optionally on a thread pool.

    NumPy releases the GIL inside the hot gemm/reduction kernels, so
    chunk-level threads scale on multi-core boxes without any change to
    the numerics (each chunk's arithmetic is untouched, merely
    concurrent).  ``workers <= 1`` stays on the caller's thread.

    ``executor`` lends a *persistent* ``ThreadPoolExecutor`` (the
    serving engine keeps one alive across calls — pool spin-up costs
    more than a small serving batch does); without one, a transient
    pool is created and torn down here.  The executor is only borrowed:
    it is never shut down by this function, and sharing one across
    concurrent callers is safe.

    The grad flag is thread-local (see :func:`repro.tensor.no_grad`),
    so pool threads do not inherit the caller's inference scope — each
    worker enters its own ``no_grad`` (this path is inference-only).
    """
    if workers <= 1 or len(chunks) <= 1:
        for chunk in chunks:
            worker(chunk)
        return
    from repro.tensor import no_grad

    def run_no_grad(chunk):
        with no_grad():
            return worker(chunk)

    if executor is not None:
        # Materialize to surface the first worker exception, if any.
        list(executor.map(run_no_grad, chunks))
        return
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=min(workers, len(chunks))) as pool:
        list(pool.map(run_no_grad, chunks))


def score_batch_targets(model, base: Batch, target_cols,
                        target_batch: int = 64,
                        workers: int = 1,
                        window: Optional[int] = None,
                        window_hop: int = 1,
                        executor=None) -> np.ndarray:
    """Influence scores for one explicit target per row of ``base``.

    The serving-shaped entry point: each row is one student/request and
    ``target_cols[k]`` the column to score in row ``k``.  Unlike the
    per-length bucketing of the legacy path — which degenerates into
    near-singleton batches when every student sits at a different history
    length — requests are chunked by sorted target column with truncated
    masks, so arbitrary mixes of lengths share full-width stacked passes.

    Parameters
    ----------
    model:
        A :class:`repro.core.RCKT` in eval mode; the caller is also
        responsible for the ``no_grad`` scope.
    base:
        Collated batch with one row per request.
    target_cols:
        ``(B,)`` target column per row; must index a real response.
    target_batch:
        Cap on how many targets share one stacked generator pass.
    workers:
        ``> 1`` scores the (independent) chunks on that many threads —
        on ``executor`` when a persistent pool is lent (see
        :func:`map_chunks`), else on a per-call pool.
    window / window_hop:
        Enable sliding-window contexts: a target whose history exceeds
        ``window`` steps is scored over the re-based slice starting at
        :func:`repro.core.masking.window_start` of its history length —
        exactly as if the history had been truncated to that window and
        re-collated.  Windowed targets all land in near-``window``-wide
        chunks, so the column banding naturally respects window
        boundaries.  ``None`` (default) scores full histories.

    Returns
    -------
    np.ndarray
        Scores in row order.

    Raises
    ------
    ValueError
        On row/target count mismatch, targets at padded positions, or an
        invalid ``(window, window_hop)`` pair.
    """
    cols = np.asarray(target_cols, dtype=np.int64)
    if base.batch_size != len(cols):
        raise ValueError("one target column per row required")
    if len(cols) == 0:
        return np.array([])
    # History length at column c is c (positions 0..c-1); the target
    # itself rides on top of the window.  Chunking runs on the re-based
    # columns, so windowed targets band together at near-window widths
    # and the re-basing gather below stays per-chunk (rows whose history
    # fits the window are never copied twice).
    starts = window_starts(cols, window, window_hop) \
        if window is not None else None
    effective_cols = cols - starts if starts is not None else cols
    scores = np.empty(len(cols), dtype=np.float64)

    def score_chunk(chunk: np.ndarray) -> None:
        chunk_cols = effective_cols[chunk]
        width = int(chunk_cols.max()) + 1
        if starts is not None and starts[chunk].any():
            sub_base, sub_cols = expand_windowed_targets(
                base, chunk, cols[chunk], starts[chunk])
            sub_base = sub_base.truncated(width)
        else:
            sub_base = expand_targets(base.truncated(width), chunk,
                                      chunk_cols)
            sub_cols = chunk_cols
        context = MultiTargetContext(model, sub_base)
        scores[chunk] = context.scores_for(np.arange(len(chunk)), sub_cols)

    map_chunks(score_chunk,
               column_banded_chunks(effective_cols, target_batch),
               workers, executor=executor)
    return scores


def score_targets(model, sequences, target_cols, target_batch: int = 64,
                  window: Optional[int] = None, window_hop: int = 1
                  ) -> np.ndarray:
    """:func:`score_batch_targets` over a ragged list of sequences."""
    if len(sequences) != len(np.atleast_1d(target_cols)):
        raise ValueError("one target column per sequence required")
    if len(sequences) == 0:
        return np.array([])
    return score_batch_targets(model, collate(sequences), target_cols,
                               target_batch=target_batch, window=window,
                               window_hop=window_hop)


def predict_dataset_fast(model, dataset: KTDataset, batch_size: int = 32,
                         stride: int = 1, target_batch: int = 64,
                         workers: int = 1, window: Optional[int] = None,
                         window_hop: int = 1, executor=None
                         ) -> Tuple[np.ndarray, np.ndarray]:
    """(labels, scores) over every evaluated target, collating each
    sequence exactly once.

    ``workers > 1`` spreads each group's target chunks over that many
    threads; chunks share the group's read-only
    :class:`MultiTargetContext` and write disjoint output slots, so the
    result is identical to the sequential sweep in value *and* order.

    ``window`` bounds every target's history to its last ``window`` steps
    (see :func:`repro.core.masking.window_start` for the ``window_hop``
    anchoring): targets whose history fits the window share the group's
    forward-stream context exactly as before, while longer-history
    targets are re-based onto their window slice and scored in dedicated
    near-``window``-wide chunks — identical to evaluating the truncated
    histories from scratch.

    The caller is responsible for ``eval`` mode and ``no_grad`` (see
    :meth:`repro.core.RCKT.predict_dataset`, which wraps this).
    """
    if target_batch <= 0:
        raise ValueError("target_batch must be positive")
    min_history = model.config.min_history
    # Sorting by length groups similar-length sequences into one padded
    # batch, bounding the padding waste of the shared collation.
    ordered = sorted((s for s in dataset if len(s) > min_history), key=len)
    labels: List[np.ndarray] = []
    scores: List[np.ndarray] = []
    for start in range(0, len(ordered), batch_size):
        group = ordered[start:start + batch_size]
        base = collate(group)
        rows_list: List[int] = []
        cols_list: List[int] = []
        for row, sequence in enumerate(group):
            for col in range(min_history, len(sequence), stride):
                rows_list.append(row)
                cols_list.append(col)
        rows = np.asarray(rows_list, dtype=np.int64)
        cols = np.asarray(cols_list, dtype=np.int64)
        # Column-sorted chunks can be truncated to the chunk's longest
        # target, so short-history targets never pay full-length encoding.
        order = np.argsort(cols, kind="stable")
        rows, cols = rows[order], cols[order]
        labels.append(base.responses[rows, cols].astype(np.float64))
        starts = window_starts(cols, window, window_hop)
        near = np.flatnonzero(starts == 0)
        far = np.flatnonzero(starts > 0)
        # The group-wide context encodes full-length forward streams;
        # skip it when the window pushes every target off of it.
        context = MultiTargetContext(model, base) if len(near) else None
        group_scores = np.empty(len(rows), dtype=np.float64)

        def score_chunk(indices: np.ndarray, context=context, base=base,
                        rows=rows, cols=cols, starts=starts,
                        out=group_scores) -> None:
            if starts[indices[0]] == 0:
                out[indices] = context.scores_for(rows[indices],
                                                  cols[indices])
                return
            sub_base, sub_cols = expand_windowed_targets(
                base, rows[indices], cols[indices], starts[indices])
            sub_context = MultiTargetContext(model, sub_base)
            out[indices] = sub_context.scores_for(
                np.arange(len(indices)), sub_cols)

        chunks = [part[chunk:chunk + target_batch]
                  for part in (near, far) if len(part)
                  for chunk in range(0, len(part), target_batch)]
        map_chunks(score_chunk, chunks, workers, executor=executor)
        scores.append(group_scores)
    if not labels:
        return np.array([]), np.array([])
    return np.concatenate(labels), np.concatenate(scores)
