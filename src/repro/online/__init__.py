"""Continual learning: close the serve→train loop over the record journal.

The cluster's durable journal (:class:`repro.cluster.RecordJournal`)
already proves the replay contract — per-student worker-acknowledged
order, ``(student, sequence)`` dedup, crash-safe cold boot.  This
package consumes that stream to keep the live checkpoint fresh:

* :class:`OnlineTrainer` — loads the serving checkpoint, converts
  replayed records into incremental training batches through the
  standard :mod:`repro.data` / :mod:`repro.optim` stack (same target
  sampling and length-bucketed collation as :func:`repro.core.fit_rckt`,
  Adam state persisted across rounds), and saves a refreshed checkpoint
  any :meth:`repro.serve.Service.rollout` can ship warm.
* :func:`prequential_run` — the test-then-train evaluation harness:
  every event is *scored before it is recorded*, giving an unbiased
  streaming AUC/accuracy trajectory over the replayed stream;
  :func:`multi_step_sweep` extends it to k-step-ahead prediction.
* :class:`DriftGate` — gates auto-rollout the way
  ``benchmarks/check_regression.py`` gates CI: the candidate must not
  degrade prequential AUC past a threshold against the incumbent, and a
  veto surfaces as a :class:`~repro.serve.protocol.RolloutRefused`
  **value** (never an exception) from :func:`auto_rollout` /
  ``Service.rollout(gate=...)``.

``python -m repro.online --selfcheck`` drives the whole loop end to end
on a synthetic journal; ``docs/ONLINE.md`` documents the contracts.
"""

from .drift import DriftGate, GateDecision, auto_rollout
from .prequential import (PrequentialReport, StreamingMetrics, TrajectoryPoint,
                          multi_step_sweep, prequential_run, round_robin)
from .trainer import OnlineTrainer

__all__ = [
    "OnlineTrainer",
    "StreamingMetrics", "TrajectoryPoint", "PrequentialReport",
    "prequential_run", "multi_step_sweep", "round_robin",
    "DriftGate", "GateDecision", "auto_rollout",
]
