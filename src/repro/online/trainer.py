"""Incremental fine-tuning of a serving checkpoint on journaled streams.

:class:`OnlineTrainer` is deliberately a thin continual-learning shell
around the offline stack: it loads the live checkpoint through
:meth:`~repro.serve.InferenceEngine.from_checkpoint` (so the refreshed
file round-trips through the exact metadata the serving side expects),
samples counterfactual targets and buckets prefixes with the *same*
helpers :func:`repro.core.fit_rckt` uses, and steps one Adam instance
whose moment state **persists across rounds** — round ``n+1`` continues
the optimiser trajectory of round ``n`` instead of cold-starting, which
is what makes many small journal-driven refreshes behave like one long
training run.

Determinism contract (pinned by ``tests/online``): two trainers built
from the same checkpoint and seed, fed the same datasets in the same
round order, produce byte-identical model states — every RNG draw comes
from :func:`~repro.utils.seeding.derive_rng` keyed on
``(seed, "online", round)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import obs
from repro.core.trainer import _bucketed_batches, _sample_targets
from repro.data import KTDataset
from repro.obs import names as metric_names
from repro.optim import Adam, clip_grad_norm
from repro.serve import InferenceEngine
from repro.utils.seeding import derive_rng


class OnlineTrainer:
    """Fine-tune a serving checkpoint round by round.

    Parameters
    ----------
    checkpoint:
        Path of the incumbent engine checkpoint (``engine.save`` /
        ``InferenceEngine.from_checkpoint`` format).
    lr, batch_size, targets_per_sequence, grad_clip, seed:
        Overrides for the corresponding
        :class:`~repro.core.RCKTConfig` fields baked into the
        checkpoint; ``None`` keeps the checkpoint's value.  Online
        refreshes typically want a smaller ``lr`` than the offline run
        that produced the checkpoint.
    epochs:
        Passes over each round's dataset per :meth:`fine_tune` call
        (target positions are resampled every pass).
    engine_kwargs:
        Forwarded to :meth:`InferenceEngine.from_checkpoint`.
    """

    def __init__(self, checkpoint, *, lr: Optional[float] = None,
                 epochs: int = 1, batch_size: Optional[int] = None,
                 targets_per_sequence: Optional[int] = None,
                 grad_clip: Optional[float] = None,
                 seed: Optional[int] = None, **engine_kwargs):
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self.engine = InferenceEngine.from_checkpoint(checkpoint,
                                                      **engine_kwargs)
        self.model = self.engine.model
        config = self.model.config
        self.lr = config.lr if lr is None else float(lr)
        self.epochs = epochs
        self.batch_size = config.batch_size if batch_size is None \
            else int(batch_size)
        self.targets_per_sequence = config.targets_per_sequence \
            if targets_per_sequence is None else int(targets_per_sequence)
        self.grad_clip = config.grad_clip if grad_clip is None \
            else grad_clip
        self.seed = config.seed if seed is None else int(seed)
        self.optimizer = Adam(self.model.parameters(), lr=self.lr,
                              weight_decay=config.weight_decay)
        self.rounds = 0

    @property
    def num_questions(self) -> int:
        return self.engine.num_questions

    @property
    def num_concepts(self) -> int:
        return self.engine.num_concepts

    def fine_tune(self, dataset: KTDataset) -> dict:
        """One incremental round over ``dataset``; returns a summary.

        The dataset is typically
        :func:`repro.data.dataset_from_records` output for the journal
        tail since the last refresh.  The model is left in ``eval``
        mode (serving-ready) afterwards.
        """
        started = obs.clock()
        registry = obs.get_registry()
        registry.counter(metric_names.ONLINE_ROUNDS_TOTAL).inc()
        config = self.model.config
        round_index = self.rounds
        self.rounds += 1
        rng = derive_rng(self.seed, "online", str(round_index))
        losses = []
        self.model.train()
        try:
            for _ in range(self.epochs):
                specs = _sample_targets(dataset, self.targets_per_sequence,
                                        config.min_history, rng,
                                        balanced=config.balanced_targets)
                for batch, cols in _bucketed_batches(specs, self.batch_size,
                                                     rng):
                    self.optimizer.zero_grad()
                    loss = self.model.loss(batch, cols)
                    loss.backward()
                    if self.grad_clip:
                        clip_grad_norm(self.model.parameters(),
                                       self.grad_clip)
                    self.optimizer.step()
                    losses.append(loss.item())
        finally:
            self.model.eval()
        elapsed = obs.clock() - started
        registry.histogram(
            metric_names.ONLINE_FINE_TUNE_SECONDS).observe(elapsed)
        return {"round": round_index, "epochs": self.epochs,
                "batches": len(losses), "sequences": len(dataset),
                "mean_loss": float(np.mean(losses)) if losses else None,
                "seconds": elapsed}

    def save(self, path) -> None:
        """Write the refreshed checkpoint (rollout-ready format)."""
        self.engine.save(path)

    def close(self) -> None:
        self.engine.close()

    def __enter__(self) -> "OnlineTrainer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
