"""Prequential (test-then-train) evaluation over a record stream.

The prequential protocol is the streaming analogue of a held-out test
set: every event is **scored before it is recorded**, so each
prediction is made by a model that has never seen that event, and the
running AUC/accuracy over the stream is an unbiased estimate of online
generalisation.  :func:`prequential_run` drives it through the typed
:class:`~repro.serve.Service` facade — the same admission path
production queries take — and :func:`multi_step_sweep` extends the
protocol to k-step-ahead prediction (score the response at position
``t`` from the history up to ``t - k``).

Ordering matters twice over.  The journal replays **grouped per
student** (each student's whole acknowledged stream, students in
first-appearance order); scoring that order verbatim would let early
students be scored entirely cold and late students entirely warm.
:func:`round_robin` re-interleaves the groups — round ``r`` holds each
student's ``r``-th event, students in first-appearance order — which
preserves the per-student score-before-record invariant exactly (a
student appears at most once per round) while spreading history growth
evenly across the stream.  Batched execution leans on the same fact:
each round issues one all-reads batch (the scores) and then one
all-records batch, so no read in a round can observe its own event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.data import KTDataset, StudentSequence, collate
from repro.eval import accuracy_score, auc_score
from repro.serve import (DEFAULT_MODEL, RecordEvent, ScoreQuery, ScoreReply,
                         is_error)
from repro.tensor import no_grad


class StreamingMetrics:
    """Running AUC/accuracy over a scored stream.

    ``auc`` is ``None`` until both classes have been observed —
    :func:`~repro.eval.auc_score` is undefined (and raises) on a
    single-class sample, and a streaming consumer must tolerate the
    warm-up window where every observed label agrees.
    """

    def __init__(self):
        self._labels: List[int] = []
        self._scores: List[float] = []
        self._positives = 0

    def update(self, label: int, score: float) -> None:
        label = int(label)
        if label not in (0, 1):
            raise ValueError(f"label must be 0 or 1, got {label}")
        self._labels.append(label)
        self._scores.append(float(score))
        self._positives += label

    @property
    def count(self) -> int:
        return len(self._labels)

    @property
    def auc(self) -> Optional[float]:
        if self._positives in (0, self.count) or not self._labels:
            return None
        return auc_score(self._labels, self._scores)

    @property
    def accuracy(self) -> Optional[float]:
        if not self._labels:
            return None
        return accuracy_score(self._labels, self._scores)


@dataclass(frozen=True)
class TrajectoryPoint:
    """Cumulative metrics after ``events`` scored events."""

    events: int
    auc: Optional[float]
    accuracy: Optional[float]


@dataclass
class PrequentialReport:
    """Outcome of one prequential pass over a stream."""

    events: int = 0
    auc: Optional[float] = None
    accuracy: Optional[float] = None
    trajectory: List[TrajectoryPoint] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {"events": self.events, "auc": self.auc,
                "accuracy": self.accuracy,
                "trajectory": [{"events": p.events, "auc": p.auc,
                                "accuracy": p.accuracy}
                               for p in self.trajectory]}


def round_robin(records: Iterable[RecordEvent]
                ) -> Iterator[List[RecordEvent]]:
    """Per-student groups re-interleaved into rounds.

    Yields round ``r`` = each student's ``r``-th event (students in
    first-appearance order; students with fewer than ``r`` events drop
    out).  Within every student the original order is untouched, so a
    prequential driver that scores round ``r`` before recording it
    never scores an event against a history containing that event.
    """
    streams: Dict[object, List[RecordEvent]] = {}
    for record in records:
        streams.setdefault(record.student_id, []).append(record)
    depth = 0
    while True:
        round_events = [stream[depth] for stream in streams.values()
                        if depth < len(stream)]
        if not round_events:
            return
        yield round_events
        depth += 1


def prequential_run(service, records: Iterable[RecordEvent],
                    model: str = DEFAULT_MODEL, checkpoint_every: int = 50,
                    interleave: bool = True) -> PrequentialReport:
    """Test-then-train over ``records`` through a ``Service``.

    Each event is scored (one batched all-reads envelope per round) and
    then recorded (one all-records envelope), mutating the service's
    history stores exactly as live traffic would — after the run the
    service holds every student's full stream.  ``interleave=False``
    processes ``records`` in the given order, one singleton round per
    event, for callers that already interleaved (or want journal replay
    order verbatim).  Metric snapshots land on the trajectory every
    ``checkpoint_every`` scored events and once at the end.

    A :class:`~repro.serve.protocol.ServiceError` reply to any query is
    a driver bug (journaled records are validated at append time), so
    it raises ``RuntimeError`` rather than skewing the metrics
    silently.
    """
    if checkpoint_every <= 0:
        raise ValueError("checkpoint_every must be positive")
    metrics = StreamingMetrics()
    report = PrequentialReport()
    rounds = round_robin(records) if interleave \
        else ([record] for record in records)
    next_checkpoint = checkpoint_every
    for round_events in rounds:
        reads = [ScoreQuery(student_id=r.student_id,
                            question_id=r.question_id,
                            concept_ids=r.concept_ids, model=model)
                 for r in round_events]
        for record, reply in zip(round_events,
                                 service.execute_batch(reads)):
            if is_error(reply) or not isinstance(reply, ScoreReply):
                raise RuntimeError(
                    f"prequential score for student "
                    f"{record.student_id!r} failed: {reply!r}")
            metrics.update(record.correct, reply.score)
        writes = [RecordEvent(student_id=r.student_id,
                              question_id=r.question_id, correct=r.correct,
                              concept_ids=r.concept_ids, model=model)
                  for r in round_events]
        for record, reply in zip(round_events,
                                 service.execute_batch(writes)):
            if is_error(reply):
                raise RuntimeError(
                    f"prequential record for student "
                    f"{record.student_id!r} failed: {reply!r}")
        if metrics.count >= next_checkpoint:
            report.trajectory.append(TrajectoryPoint(
                metrics.count, metrics.auc, metrics.accuracy))
            next_checkpoint = metrics.count + checkpoint_every
    report.events = metrics.count
    report.auc = metrics.auc
    report.accuracy = metrics.accuracy
    if not report.trajectory or report.trajectory[-1].events != report.events:
        report.trajectory.append(TrajectoryPoint(
            report.events, report.auc, report.accuracy))
    return report


def multi_step_sweep(model, dataset: KTDataset,
                     horizons: Sequence[int] = (1, 2, 3),
                     min_history: int = 2,
                     batch_size: int = 64) -> Dict[int, dict]:
    """k-step-ahead prediction sweep: degradation with forecast depth.

    For horizon ``k`` and every target position ``t`` with at least
    ``min_history`` visible interactions, the model scores the target
    question from the history truncated at ``t - k`` — ``k = 1`` is the
    standard next-step protocol, larger ``k`` measures how fast
    predictive power decays when the most recent responses are hidden.
    Contexts are grouped by identical length (the exact bidirectional
    encoders take no padding), mirroring the trainer's bucketing.

    Returns ``{k: {"auc": float|None, "accuracy": float|None,
    "targets": int}}``; ``auc`` is ``None`` when the horizon's targets
    are single-class.
    """
    results: Dict[int, dict] = {}
    with no_grad():
        for horizon in horizons:
            if horizon <= 0:
                raise ValueError("horizons must be positive")
            buckets: Dict[int, List[Tuple[StudentSequence, int]]] = {}
            for sequence in dataset:
                for target in range(min_history + horizon - 1,
                                    len(sequence)):
                    # context = history[:target-k+1] + the probe itself
                    probe = StudentSequence(
                        sequence.student_id,
                        sequence.interactions[:target - horizon + 1]
                        + [sequence[target]])
                    buckets.setdefault(len(probe), []).append(
                        (probe, len(probe) - 1))
            metrics = StreamingMetrics()
            for length in sorted(buckets):
                group = buckets[length]
                for start in range(0, len(group), batch_size):
                    chunk = group[start:start + batch_size]
                    batch = collate([probe for probe, _ in chunk])
                    cols = np.array([col for _, col in chunk])
                    scores = model.predict_scores(batch, cols)
                    for (probe, col), score in zip(chunk, scores):
                        metrics.update(probe[col].correct, float(score))
            results[horizon] = {"auc": metrics.auc,
                                "accuracy": metrics.accuracy,
                                "targets": metrics.count}
    return results
