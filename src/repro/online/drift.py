"""Drift-gated auto-rollout: refuse regressions as values, not crashes.

The CI benchmark gate (``benchmarks/check_regression.py``) never
crashes a run — it measures, compares against a committed baseline, and
*fails the gate* with a diagnosis.  :class:`DriftGate` applies the same
posture to checkpoint rollouts: the candidate and the incumbent each
run the identical prequential pass over a held-out evaluation stream
(typically the journal tail that the candidate was **not** fine-tuned
on), and the rollout proceeds only if the candidate's streaming AUC has
not dropped more than ``max_auc_drop`` below the incumbent's.  A veto
is a :class:`~repro.serve.protocol.RolloutRefused` **value** carrying
both AUCs, the threshold, and the evidence size — the incumbent keeps
serving, nothing raises, and the caller (or the HTTP admin endpoint)
forwards the refusal in-protocol like any other taxonomy member.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from repro.serve import (DEFAULT_MODEL, InferenceEngine, RecordEvent,
                         RolloutRefused, Service)

from repro import obs
from repro.obs import names as metric_names

from .prequential import PrequentialReport, prequential_run


@dataclass(frozen=True)
class GateDecision:
    """One drift-gate verdict, with the evidence that produced it."""

    allowed: bool
    incumbent_auc: Optional[float]
    candidate_auc: Optional[float]
    threshold: float
    events: int
    reason: str

    @property
    def delta(self) -> Optional[float]:
        """Candidate minus incumbent AUC (negative = degradation)."""
        if self.incumbent_auc is None or self.candidate_auc is None:
            return None
        return self.candidate_auc - self.incumbent_auc

    def to_details(self) -> dict:
        return {"incumbent_auc": self.incumbent_auc,
                "candidate_auc": self.candidate_auc,
                "delta": self.delta, "threshold": self.threshold,
                "events": self.events, "reason": self.reason}


class DriftGate:
    """Prequential AUC comparison between incumbent and candidate.

    Parameters
    ----------
    records:
        The held-out evaluation stream (typed
        :class:`~repro.serve.RecordEvent` values, e.g. a
        :meth:`~repro.cluster.RecordJournal.replay_records` tail).
        Materialised once; both models replay the identical stream.
    max_auc_drop:
        Largest tolerated ``incumbent_auc - candidate_auc``.
    min_events:
        Below this many scored events — or whenever either AUC is
        undefined (single-class warm-up) — the gate **waives** rather
        than vetoes: refusing for lack of evidence would wedge a young
        deployment whose journal cannot yet support a verdict.
    """

    def __init__(self, records: Iterable[RecordEvent],
                 max_auc_drop: float = 0.01, min_events: int = 20,
                 interleave: bool = True):
        if max_auc_drop < 0:
            raise ValueError("max_auc_drop must be non-negative")
        if min_events <= 0:
            raise ValueError("min_events must be positive")
        self.records: List[RecordEvent] = list(records)
        self.max_auc_drop = float(max_auc_drop)
        self.min_events = min_events
        self.interleave = interleave
        self.last_decision: Optional[GateDecision] = None

    def _prequential(self, model) -> PrequentialReport:
        # A throwaway single-worker service around the *shared* model
        # object: scoring is read-only under no_grad, and the recorded
        # histories die with the service.
        service = Service(model, workers=1)
        try:
            return prequential_run(service, self.records,
                                   interleave=self.interleave)
        finally:
            service.close()

    def evaluate(self, incumbent_model, candidate_model) -> GateDecision:
        """Run both prequential passes and decide; remembers the verdict."""
        incumbent = self._prequential(incumbent_model)
        candidate = self._prequential(candidate_model)
        events = candidate.events
        if events < self.min_events:
            decision = GateDecision(
                True, incumbent.auc, candidate.auc, self.max_auc_drop,
                events, f"waived: {events} events < min_events="
                        f"{self.min_events}")
        elif incumbent.auc is None or candidate.auc is None:
            decision = GateDecision(
                True, incumbent.auc, candidate.auc, self.max_auc_drop,
                events, "waived: single-class stream, AUC undefined")
        else:
            drop = incumbent.auc - candidate.auc
            if drop <= self.max_auc_drop:
                decision = GateDecision(
                    True, incumbent.auc, candidate.auc, self.max_auc_drop,
                    events, f"allowed: AUC drop {drop:+.4f} within "
                            f"{self.max_auc_drop:.4f}")
            else:
                decision = GateDecision(
                    False, incumbent.auc, candidate.auc, self.max_auc_drop,
                    events, f"refused: prequential AUC dropped {drop:.4f} "
                            f"(> {self.max_auc_drop:.4f}) over {events} "
                            f"events")
        self.last_decision = decision
        # The decision's reason string is prefixed with its outcome —
        # that prefix is the (bounded) metric label.
        outcome = decision.reason.split(":", 1)[0]
        obs.get_registry().counter(
            metric_names.ONLINE_GATE_DECISIONS_TOTAL,
            outcome=outcome).inc()
        return decision

    def service_gate(self) -> Callable:
        """The ``Service.rollout(gate=...)`` adapter.

        Returns a callable ``(incumbent_engine, standby_engine) ->
        Optional[RolloutRefused]`` evaluating the two engines' models
        over this gate's stream.
        """
        def gate(incumbent_engine: InferenceEngine,
                 standby_engine: InferenceEngine
                 ) -> Optional[RolloutRefused]:
            decision = self.evaluate(incumbent_engine.model,
                                     standby_engine.model)
            if decision.allowed:
                return None
            return RolloutRefused(message=decision.reason,
                                  details=decision.to_details())
        return gate


def auto_rollout(target, checkpoint, gate: DriftGate, *,
                 name: str = DEFAULT_MODEL, warm_top: int = 64,
                 incumbent_model=None):
    """Ship ``checkpoint`` to ``target`` iff the drift gate allows it.

    ``target`` is either a :class:`~repro.serve.Service` (the gate runs
    inside :meth:`Service.rollout` — standby built and validated first,
    warm blue/green semantics preserved) or any object with a
    ``rollout(checkpoint)`` method, e.g. a
    :class:`~repro.cluster.ScatterGatherRouter`; router targets cannot
    expose their remote incumbent weights, so ``incumbent_model`` (the
    weights currently deployed) must be supplied and the gate runs as a
    pre-check before fanning the rollout out.

    Returns the target's rollout summary on success, or the
    :class:`~repro.serve.protocol.RolloutRefused` value on a veto —
    never raises for a refusal.
    """
    if isinstance(target, Service):
        return target.rollout(checkpoint, name=name, warm_top=warm_top,
                              gate=gate.service_gate())
    if incumbent_model is None:
        raise ValueError("auto_rollout to a non-Service target needs "
                         "incumbent_model for the gate pre-check")
    candidate = InferenceEngine.from_checkpoint(checkpoint)
    try:
        decision = gate.evaluate(incumbent_model, candidate.model)
    finally:
        candidate.close()
    if not decision.allowed:
        return RolloutRefused(message=decision.reason,
                              details=decision.to_details())
    return target.rollout(checkpoint)
