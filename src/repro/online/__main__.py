"""``python -m repro.online`` — journal-driven checkpoint refresh CLI.

Two modes:

* **Run** (``--journal-dir`` + ``--checkpoint`` + ``--output``): replay
  the durable record journal, run the prequential test-then-train pass
  on the incumbent, fine-tune the checkpoint on the replayed stream's
  head, hold out the tail for the drift gate, and write the refreshed
  checkpoint plus a JSON report (gate decision included).  The gate
  decision is *data*, not an exit code: a refused refresh still exits 0
  with ``"allowed": false`` in the report — exactly how
  ``check_regression.py`` separates "the run broke" from "the gate said
  no".
* **Selfcheck** (``--selfcheck``): the CI smoke lane.  Synthesises a
  corpus, journals it durably, cold-boots the journal, proves the
  golden journal→dataset round trip, fine-tunes, ships the refresh
  through a drift-gated warm ``Service.rollout``, checks post-rollout
  score parity against a fresh service on the refreshed checkpoint, and
  proves a degraded checkpoint is refused **as a value** (exit 1 on any
  failure, 0 otherwise).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from .drift import DriftGate, auto_rollout
from .prequential import multi_step_sweep, prequential_run, round_robin
from .trainer import OnlineTrainer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.online",
        description="Continual trainer over the cluster record journal")
    parser.add_argument("--journal-dir", default=None,
                        help="durable RecordJournal directory to replay")
    parser.add_argument("--checkpoint", default=None,
                        help="incumbent engine checkpoint (.npz)")
    parser.add_argument("--output", default=None,
                        help="where to write the refreshed checkpoint")
    parser.add_argument("--report", default=None,
                        help="write the JSON report here (default stdout)")
    parser.add_argument("--epochs", type=int, default=1,
                        help="fine-tune passes over the replayed stream")
    parser.add_argument("--lr", type=float, default=None,
                        help="override the checkpoint's learning rate")
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument("--targets-per-sequence", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None,
                        help="override the checkpoint's seed for target "
                             "sampling")
    parser.add_argument("--eval-fraction", type=float, default=0.25,
                        help="tail fraction of the interleaved stream "
                             "held out for the drift gate")
    parser.add_argument("--max-auc-drop", type=float, default=0.01,
                        help="largest tolerated prequential AUC drop vs "
                             "the incumbent")
    parser.add_argument("--min-gate-events", type=int, default=20,
                        help="below this many held-out events the gate "
                             "waives instead of judging")
    parser.add_argument("--checkpoint-every", type=int, default=200,
                        help="prequential trajectory snapshot interval")
    parser.add_argument("--horizons", type=int, nargs="*", default=(1, 2, 3),
                        help="multi-step-ahead sweep horizons (empty "
                             "disables the sweep)")
    parser.add_argument("--selfcheck", action="store_true",
                        help="run the end-to-end continual-loop smoke "
                             "test and exit")
    return parser


def _run(args) -> int:
    from repro.cluster import RecordJournal
    from repro.data import dataset_from_records
    from repro.serve import Service, is_error

    if not (args.journal_dir and args.checkpoint and args.output):
        print("error: --journal-dir, --checkpoint and --output are "
              "required (or use --selfcheck)", file=sys.stderr)
        return 2
    if not 0.0 < args.eval_fraction < 1.0:
        print("error: --eval-fraction must be in (0, 1)", file=sys.stderr)
        return 2

    journal = RecordJournal(args.journal_dir, fsync="off")
    try:
        records = journal.replay_records()
    finally:
        journal.close()
    if not records:
        print(f"error: no records to replay in {args.journal_dir}",
              file=sys.stderr)
        return 1

    service = Service.from_checkpoint(args.checkpoint)
    trainer = OnlineTrainer(args.checkpoint, lr=args.lr, epochs=args.epochs,
                            batch_size=args.batch_size,
                            targets_per_sequence=args.targets_per_sequence,
                            seed=args.seed)
    try:
        incumbent = prequential_run(service, records,
                                    checkpoint_every=args.checkpoint_every)
        interleaved = [event for round_events in round_robin(records)
                       for event in round_events]
        cut = max(1, int(len(interleaved) * (1.0 - args.eval_fraction)))
        train_records, eval_records = interleaved[:cut], interleaved[cut:]

        dataset = dataset_from_records(train_records,
                                       trainer.num_questions,
                                       trainer.num_concepts)
        tune = trainer.fine_tune(dataset)
        trainer.save(args.output)

        gate = DriftGate(eval_records, max_auc_drop=args.max_auc_drop,
                         min_events=args.min_gate_events, interleave=False)
        outcome = auto_rollout(service, args.output, gate)
        decision = gate.last_decision
        report = {
            "journal": {"directory": args.journal_dir,
                        "events": len(records)},
            "prequential": incumbent.to_dict(),
            "fine_tune": tune,
            "gate": None if decision is None else
            {"allowed": decision.allowed, **decision.to_details()},
            "rollout": ({"refused": True, "message": outcome.message}
                        if is_error(outcome)
                        else {"refused": False, **outcome}),
            "output": args.output,
        }
        if args.horizons:
            report["multi_step"] = {
                str(k): v for k, v in multi_step_sweep(
                    trainer.model, dataset,
                    horizons=tuple(args.horizons)).items()}
    finally:
        trainer.close()
        service.close()

    body = json.dumps(report, indent=2, sort_keys=True)
    if args.report:
        Path(args.report).write_text(body + "\n")
    else:
        print(body)
    return 0


def _batches_match(left, right) -> bool:
    import numpy as np
    return all(np.array_equal(getattr(left, name), getattr(right, name))
               for name in ("questions", "responses", "concepts",
                            "concept_counts", "mask"))


def _selfcheck(args) -> int:
    import numpy as np
    from repro.cluster import RecordJournal
    from repro.core import RCKT, RCKTConfig
    from repro.data import (SimulationConfig, StudentSimulator,
                            build_dataset, collate, dataset_from_records)
    from repro.serve import (InferenceEngine, RecordEvent, ScoreQuery,
                             Service, is_error, to_wire)

    failures = 0

    def check(label: str, ok: bool, detail: str = "") -> None:
        nonlocal failures
        if ok:
            print(f"selfcheck: {label} ... ok")
        else:
            failures += 1
            print(f"selfcheck: {label} ... FAIL {detail}")

    with tempfile.TemporaryDirectory(prefix="rckt-online-") as tmp:
        tmp = Path(tmp)
        incumbent_path = tmp / "incumbent.npz"
        refreshed_path = tmp / "refreshed.npz"
        degraded_path = tmp / "degraded.npz"
        InferenceEngine(RCKT(20, 5, RCKTConfig(
            encoder="dkt", dim=8, layers=1, seed=0))).save(incumbent_path)
        InferenceEngine(RCKT(20, 5, RCKTConfig(
            encoder="dkt", dim=8, layers=1, seed=9))).save(degraded_path)

        # A learnable synthetic stream, journaled durably.
        simulator = StudentSimulator(SimulationConfig(
            num_students=48, num_questions=20, num_concepts=5,
            sequence_length=(12, 24)), seed=7)
        sequences = simulator.simulate()
        total = sum(len(sequence) for sequence in sequences)
        journal_dir = tmp / "journal"
        journal = RecordJournal(journal_dir, fsync="off")
        for sequence in sequences:
            student = f"student-{sequence.student_id}"
            for position, interaction in enumerate(sequence):
                event = RecordEvent(student, interaction.question_id,
                                    interaction.correct,
                                    interaction.concept_ids)
                error = journal.append(0, to_wire(event), position + 1)
                if error is not None:
                    check("journal append", False, repr(error))
        journal.close()

        # Cold boot: a fresh process would see exactly this.
        journal = RecordJournal(journal_dir, fsync="off")
        records = journal.replay_records()
        journal.close()
        check("cold-boot replay count", len(records) == total,
              f"(replayed {len(records)} of {total})")

        # Golden round trip: journal -> dataset == direct build_dataset.
        streamed = dataset_from_records(records, 20, 5)
        direct = build_dataset("online", sequences, 20, 5)
        golden = len(streamed) == len(direct) and all(
            _batches_match(collate([a]), collate([b]))
            for a, b in zip(streamed, direct))
        check("golden journal->dataset round trip", golden,
              f"({len(streamed)} vs {len(direct)} sequences)")

        # Prequential test-then-train on the incumbent (this also
        # leaves the service holding every student's full history).
        service = Service.from_checkpoint(incumbent_path)
        incumbent_report = prequential_run(service, records,
                                           checkpoint_every=200)
        check("prequential pass",
              incumbent_report.events == total
              and incumbent_report.auc is not None,
              f"({incumbent_report.events} events, "
              f"auc={incumbent_report.auc})")

        # Fine-tune on the stream head; hold the tail out for the gate.
        interleaved = [event for round_events in round_robin(records)
                       for event in round_events]
        cut = int(len(interleaved) * 0.75)
        trainer = OnlineTrainer(incumbent_path, epochs=4, seed=123)
        dataset = dataset_from_records(interleaved[:cut],
                                       trainer.num_questions,
                                       trainer.num_concepts)
        tune = trainer.fine_tune(dataset)
        trainer.save(refreshed_path)
        trainer.close()
        check("fine-tune ran", tune["batches"] > 0, repr(tune))

        gate = DriftGate(interleaved[cut:], max_auc_drop=0.05,
                         min_events=10, interleave=False)
        summary = auto_rollout(service, refreshed_path, gate)
        decision = gate.last_decision
        check("drift-gated rollout allowed",
              not is_error(summary) and decision is not None
              and decision.allowed,
              f"({summary!r}, {decision!r})")

        # Post-rollout parity: the warm-rolled service must score
        # exactly like a fresh service on the refreshed checkpoint
        # with the same histories (dkt is bit-exact).
        reference = Service.from_checkpoint(refreshed_path)
        reference.execute_batch(records)
        rng = np.random.default_rng(11)
        probes = [ScoreQuery(f"student-{sequence.student_id}",
                             int(rng.integers(1, 21)),
                             (int(rng.integers(1, 6)),))
                  for sequence in sequences[:16]]
        live = [to_wire(reply) for reply in service.execute_batch(probes)]
        fresh = [to_wire(reply)
                 for reply in reference.execute_batch(probes)]
        check("post-rollout score parity", live == fresh,
              f"({sum(a != b for a, b in zip(live, fresh))} mismatches)")
        reference.close()

        # A degraded candidate must be refused as a value, never raised,
        # and must leave the incumbent serving untouched.
        refused = auto_rollout(service, degraded_path, gate)
        check("degraded rollout refused as a value",
              is_error(refused) and refused.code == "rollout_refused",
              repr(refused))
        after = [to_wire(reply) for reply in service.execute_batch(probes)]
        check("incumbent untouched after refusal", after == live)
        service.close()

    if failures:
        print(f"selfcheck: {failures} failure(s)")
        return 1
    print("selfcheck: all checks passed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.selfcheck:
        return _selfcheck(args)
    return _run(args)


if __name__ == "__main__":
    sys.exit(main())
