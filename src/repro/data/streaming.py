"""Event-stream accumulation: journaled records back into training data.

The serve→train loop (``repro.online``, ``docs/ONLINE.md``) consumes the
cluster's durable record journal — per-student streams of acknowledged
``(student, question, correct, concepts)`` events in worker-acknowledged
order — and needs them as the exact :class:`KTDataset` shape the
training stack eats.  The conversion must be *golden*: events replayed
from a WAL directory have to produce bit-identical training batches to
the same interactions loaded directly, or the online trainer silently
trains on a different corpus than it serves.  Two invariants pin this:

* **Order** — students keep their first-appearance order in the stream
  (the journal's :func:`repro.cluster.journal.replay_order` already
  guarantees per-student event order), and within a student events
  append in arrival order.  Batch collation is order-sensitive, so the
  accumulator never re-sorts.
* **Preprocessing parity** — :func:`dataset_from_records` feeds the
  accumulated sequences through the same
  :func:`~repro.data.dataset.build_dataset` split-then-filter pipeline
  (≤ ``max_length`` chunks, < ``min_length`` dropped) as any offline
  loader, so a student's journaled lifetime and their offline log yield
  the same subsequences.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from .dataset import (MAX_SUBSEQUENCE_LENGTH, MIN_SUBSEQUENCE_LENGTH,
                      KTDataset, build_dataset)
from .events import Interaction, StudentSequence


class EventAccumulator:
    """Grow per-student :class:`StudentSequence` timelines from a stream.

    Accepts anything shaped like a record event — the typed
    :class:`repro.serve.protocol.RecordEvent`, or any object with
    ``student_id`` / ``question_id`` / ``correct`` / ``concept_ids``
    attributes.  Students are kept in first-appearance order;
    ``timestamp`` is the per-student step counter (the simulator's
    convention — the models ignore it).
    """

    def __init__(self):
        self._sequences: Dict[object, StudentSequence] = {}
        self._events = 0

    def __len__(self) -> int:
        return len(self._sequences)

    @property
    def events(self) -> int:
        return self._events

    def add(self, student_id, question_id: int, correct: int,
            concept_ids) -> None:
        """Append one event (validated by :class:`Interaction` itself)."""
        sequence = self._sequences.get(student_id)
        if sequence is None:
            sequence = StudentSequence(student_id)
            self._sequences[student_id] = sequence
        sequence.append(Interaction(int(question_id), int(correct),
                                    tuple(int(c) for c in concept_ids),
                                    timestamp=len(sequence)))
        self._events += 1

    def extend(self, records: Iterable[object]) -> int:
        """Append every record-event-shaped object; returns the count."""
        added = 0
        for record in records:
            self.add(record.student_id, record.question_id, record.correct,
                     record.concept_ids)
            added += 1
        return added

    def sequences(self) -> List[StudentSequence]:
        """The accumulated full timelines, first-appearance order."""
        return list(self._sequences.values())


def dataset_from_records(records: Iterable[object], num_questions: int,
                         num_concepts: int, name: str = "online",
                         max_length: int = MAX_SUBSEQUENCE_LENGTH,
                         min_length: int = MIN_SUBSEQUENCE_LENGTH,
                         **metadata) -> KTDataset:
    """A validated training dataset straight from an event stream.

    The one-call form of the journal→dataset conversion: accumulate
    per-student timelines, then run the standard
    :func:`~repro.data.dataset.build_dataset` preprocessing over them.
    ``records`` is typically
    :meth:`repro.cluster.RecordJournal.replay_records` output; the
    golden round-trip suite (``tests/online``) pins the resulting
    batches bit-identical to loading the same interactions directly.
    """
    accumulator = EventAccumulator()
    accumulator.extend(records)
    return build_dataset(name, accumulator.sequences(), num_questions,
                         num_concepts, max_length=max_length,
                         min_length=min_length, **metadata)
