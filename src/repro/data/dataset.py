"""Dataset container and the paper's preprocessing pipeline.

Sec. V-A1: *"For each dataset, we split every student's response sequence
into subsequences of 50 responses each.  Subsequences with fewer than 5
responses are removed, and those with fewer than 50 responses are padded
with zeros."*  Padding is applied at batching time (``repro.data.batch``);
the dataset itself stores the variable-length subsequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from .events import StudentSequence

MAX_SUBSEQUENCE_LENGTH = 50
MIN_SUBSEQUENCE_LENGTH = 5


@dataclass
class KTDataset:
    """A set of (sub)sequences plus ID-space sizes.

    ``num_questions`` / ``num_concepts`` are vocabulary sizes *excluding*
    the padding id 0, i.e. valid ids are ``1..num_questions``.
    """

    name: str
    sequences: List[StudentSequence]
    num_questions: int
    num_concepts: int
    metadata: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.sequences)

    def __iter__(self) -> Iterator[StudentSequence]:
        return iter(self.sequences)

    def __getitem__(self, index: int) -> StudentSequence:
        return self.sequences[index]

    # ------------------------------------------------------------------
    @property
    def num_responses(self) -> int:
        return sum(len(s) for s in self.sequences)

    @property
    def correct_rate(self) -> float:
        total = self.num_responses
        if total == 0:
            return 0.0
        return sum(sum(s.responses) for s in self.sequences) / total

    def validate(self) -> None:
        """Check every id is inside the declared vocabulary."""
        for sequence in self.sequences:
            for interaction in sequence:
                if interaction.question_id > self.num_questions:
                    raise ValueError(
                        f"question id {interaction.question_id} exceeds "
                        f"num_questions={self.num_questions}")
                for concept in interaction.concept_ids:
                    if concept > self.num_concepts:
                        raise ValueError(
                            f"concept id {concept} exceeds "
                            f"num_concepts={self.num_concepts}")

    def subset(self, indices: Iterable[int], name: Optional[str] = None) -> "KTDataset":
        """New dataset view over the selected sequence indices."""
        picked = [self.sequences[i] for i in indices]
        return KTDataset(name or self.name, picked,
                         self.num_questions, self.num_concepts,
                         dict(self.metadata))


def preprocess(sequences: List[StudentSequence],
               max_length: int = MAX_SUBSEQUENCE_LENGTH,
               min_length: int = MIN_SUBSEQUENCE_LENGTH) -> List[StudentSequence]:
    """Apply the paper's split-then-filter preprocessing.

    Every student sequence is split into consecutive chunks of at most
    ``max_length`` responses and chunks shorter than ``min_length`` are
    dropped.
    """
    result: List[StudentSequence] = []
    for sequence in sequences:
        for chunk in sequence.split(max_length):
            if len(chunk) >= min_length:
                result.append(chunk)
    return result


def build_dataset(name: str, sequences: List[StudentSequence],
                  num_questions: int, num_concepts: int,
                  max_length: int = MAX_SUBSEQUENCE_LENGTH,
                  min_length: int = MIN_SUBSEQUENCE_LENGTH,
                  **metadata) -> KTDataset:
    """Preprocess raw sequences and wrap them in a validated dataset."""
    processed = preprocess(sequences, max_length=max_length, min_length=min_length)
    dataset = KTDataset(name, processed, num_questions, num_concepts, metadata)
    dataset.validate()
    return dataset
