"""Per-dataset simulator profiles matched to Table II of the paper.

Each factory mirrors one evaluation corpus.  The paper's preprocessed
statistics (Table II) are::

    dataset      #response  #sequence  #question  #concept  conc/ques  %correct
    ASSIST09     0.4m       10.7k      13.5k      151       1.22       0.63
    ASSIST12     2.7m       62.6k      53.1k      265       1          0.70
    Slepemapy    10.0m      234.5k     2.2k       1458      1          0.78
    Eedi         (column truncated in the paper text; reconstructed from
                 the NeurIPS 2020 education challenge: ~15.9m responses,
                 27.6k questions, leaf concepts of a math concept tree,
                 %correct ~= 0.64)

Absolute sizes are scaled down by default (pure-NumPy CPU budget); the
``scale`` argument grows a profile toward the real corpus proportions.
Structural properties — concepts per question, correct rate, concept-graph
shape, adaptive selection for Slepemapy — are kept faithful.
"""

from __future__ import annotations

from typing import Callable, Dict

from .dataset import KTDataset, build_dataset
from .synthetic import SimulationConfig, StudentSimulator

PAPER_TABLE2 = {
    "assist09": {"responses": "0.4m", "sequences": "10.7k", "questions": "13.5k",
                 "concepts": 151, "concepts_per_question": 1.22, "correct_rate": 0.63},
    "assist12": {"responses": "2.7m", "sequences": "62.6k", "questions": "53.1k",
                 "concepts": 265, "concepts_per_question": 1.0, "correct_rate": 0.70},
    "slepemapy": {"responses": "10.0m", "sequences": "234.5k", "questions": "2.2k",
                  "concepts": 1458, "concepts_per_question": 1.0, "correct_rate": 0.78},
    "eedi": {"responses": "~15.9m (reconstructed)", "sequences": "n/a",
             "questions": "27.6k", "concepts": 388,
             "concepts_per_question": 1.0, "correct_rate": 0.64},
}


def _scaled(value: int, scale: float, minimum: int = 4) -> int:
    return max(minimum, int(round(value * scale)))


def make_assist09(scale: float = 1.0, seed: int = 0) -> KTDataset:
    """ASSISTments 2009-2010 profile: math skills with a prerequisite DAG,
    ~1.22 concepts per question, 63% correct."""
    config = SimulationConfig(
        num_students=_scaled(120, scale),
        num_questions=_scaled(300, scale),
        num_concepts=_scaled(25, scale, minimum=6),
        concepts_per_question=(1, 3),
        extra_concept_prob=0.11,
        sequence_length=(8, 90),
        target_correct_rate=0.63,
        concept_structure="prerequisite",
        guess_range=(0.05, 0.20),
    )
    simulator = StudentSimulator(config, seed=seed)
    dataset = build_dataset("assist09", simulator.simulate(),
                            config.num_questions, config.num_concepts,
                            profile="assist09", scale=scale, seed=seed)
    return dataset


def make_assist12(scale: float = 1.0, seed: int = 0) -> KTDataset:
    """ASSISTments 2012-2013 profile: single concept per question, 70%."""
    config = SimulationConfig(
        num_students=_scaled(150, scale),
        num_questions=_scaled(400, scale),
        num_concepts=_scaled(30, scale, minimum=6),
        concepts_per_question=(1, 1),
        sequence_length=(8, 90),
        target_correct_rate=0.70,
        concept_structure="prerequisite",
        guess_range=(0.05, 0.20),
    )
    simulator = StudentSimulator(config, seed=seed)
    return build_dataset("assist12", simulator.simulate(),
                         config.num_questions, config.num_concepts,
                         profile="assist12", scale=scale, seed=seed)


def make_slepemapy(scale: float = 1.0, seed: int = 0) -> KTDataset:
    """Slepemapy profile: adaptive geography practice, few question types,
    many place-concepts in regional clusters, 78% correct."""
    config = SimulationConfig(
        num_students=_scaled(160, scale),
        num_questions=_scaled(120, scale),
        num_concepts=_scaled(60, scale, minimum=10),
        concepts_per_question=(1, 1),
        sequence_length=(10, 110),
        target_correct_rate=0.78,
        concept_structure="clusters",
        adaptive_selection=True,
        guess_range=(0.10, 0.30),   # place-picking has real guess mass
    )
    simulator = StudentSimulator(config, seed=seed)
    return build_dataset("slepemapy", simulator.simulate(),
                         config.num_questions, config.num_concepts,
                         profile="slepemapy", scale=scale, seed=seed)


def make_eedi(scale: float = 1.0, seed: int = 0) -> KTDataset:
    """Eedi profile: multiple-choice math diagnostics, concept *tree* with
    questions tagged by leaf concepts, ~64% correct, guess mass ~0.25."""
    config = SimulationConfig(
        num_students=_scaled(140, scale),
        num_questions=_scaled(350, scale),
        num_concepts=_scaled(31, scale, minimum=7),
        concepts_per_question=(1, 2),
        extra_concept_prob=0.15,
        sequence_length=(8, 90),
        target_correct_rate=0.64,
        concept_structure="tree",
        guess_range=(0.20, 0.30),   # 4-way multiple choice
    )
    simulator = StudentSimulator(config, seed=seed)
    return build_dataset("eedi", simulator.simulate(),
                         config.num_questions, config.num_concepts,
                         profile="eedi", scale=scale, seed=seed)


DATASET_FACTORIES: Dict[str, Callable[..., KTDataset]] = {
    "assist09": make_assist09,
    "assist12": make_assist12,
    "slepemapy": make_slepemapy,
    "eedi": make_eedi,
}


def make_dataset(name: str, scale: float = 1.0, seed: int = 0) -> KTDataset:
    """Look up a profile by name (``assist09|assist12|slepemapy|eedi``)."""
    try:
        factory = DATASET_FACTORIES[name]
    except KeyError:
        raise KeyError(f"unknown dataset profile '{name}'; "
                       f"choose from {sorted(DATASET_FACTORIES)}") from None
    return factory(scale=scale, seed=seed)
