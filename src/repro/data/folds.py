"""Cross-validation splits matching the paper's evaluation protocol.

Sec. V-A2: five-fold cross validation over (sub)sequences; within each
fold, 10% of the non-test sequences are held out as the validation set for
early stopping and hyper-parameter tuning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .dataset import KTDataset


@dataclass
class Fold:
    """One train/validation/test split (datasets share the ID spaces)."""

    index: int
    train: KTDataset
    validation: KTDataset
    test: KTDataset


def k_fold_splits(dataset: KTDataset, k: int = 5, validation_fraction: float = 0.1,
                  seed: int = 0) -> Iterator[Fold]:
    """Yield ``k`` folds with disjoint test sets covering the dataset.

    Sequences are shuffled once with ``seed`` so that folds are stable for a
    given seed regardless of how many folds the caller consumes.
    """
    if k < 2:
        raise ValueError("k must be at least 2")
    if not 0.0 < validation_fraction < 1.0:
        raise ValueError("validation_fraction must be in (0, 1)")
    count = len(dataset)
    if count < k:
        raise ValueError(f"cannot make {k} folds from {count} sequences")

    rng = np.random.default_rng(seed)
    order = rng.permutation(count)
    boundaries = np.linspace(0, count, k + 1).astype(int)

    for fold_index in range(k):
        test_idx = order[boundaries[fold_index]:boundaries[fold_index + 1]]
        rest = np.concatenate([order[:boundaries[fold_index]],
                               order[boundaries[fold_index + 1]:]])
        # Validation comes from the tail of the shuffled remainder.
        val_count = max(1, int(round(len(rest) * validation_fraction)))
        val_idx, train_idx = rest[:val_count], rest[val_count:]
        yield Fold(
            index=fold_index,
            train=dataset.subset(train_idx, f"{dataset.name}/fold{fold_index}/train"),
            validation=dataset.subset(val_idx, f"{dataset.name}/fold{fold_index}/val"),
            test=dataset.subset(test_idx, f"{dataset.name}/fold{fold_index}/test"),
        )


def train_test_split(dataset: KTDataset, test_fraction: float = 0.2,
                     validation_fraction: float = 0.1, seed: int = 0) -> Fold:
    """Single split convenience wrapper (used by quick examples/benches)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    test_count = max(1, int(round(len(dataset) * test_fraction)))
    test_idx, rest = order[:test_count], order[test_count:]
    val_count = max(1, int(round(len(rest) * validation_fraction)))
    val_idx, train_idx = rest[:val_count], rest[val_count:]
    return Fold(
        index=0,
        train=dataset.subset(train_idx, f"{dataset.name}/train"),
        validation=dataset.subset(val_idx, f"{dataset.name}/val"),
        test=dataset.subset(test_idx, f"{dataset.name}/test"),
    )
