"""CSV persistence in a KT interchange format.

One row per interaction::

    student_id,sequence_id,position,question_id,correct,concept_ids

``sequence_id`` identifies the (sub)sequence within the file so that a
student split into several length-50 subsequences round-trips exactly;
``concept_ids`` is a ``;``-joined list (ASSIST09-style multi-skill rows).
"""

from __future__ import annotations

import csv
from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Tuple, Union

from .dataset import KTDataset
from .events import Interaction, StudentSequence

_HEADER = ["student_id", "sequence_id", "position", "question_id",
           "correct", "concept_ids"]


def save_csv(dataset: KTDataset, path: Union[str, Path]) -> None:
    """Write every interaction of ``dataset`` to ``path``."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for sequence_id, sequence in enumerate(dataset):
            for position, interaction in enumerate(sequence):
                writer.writerow([
                    sequence.student_id,
                    sequence_id,
                    position,
                    interaction.question_id,
                    interaction.correct,
                    ";".join(str(c) for c in interaction.concept_ids),
                ])


def load_csv(path: Union[str, Path], name: str = "csv",
             num_questions: int = 0, num_concepts: int = 0) -> KTDataset:
    """Load a dataset written by :func:`save_csv`.

    When ``num_questions``/``num_concepts`` are 0 the vocabulary sizes are
    inferred as the maximum observed id.  Sequences are *not* re-split: the
    file is assumed to contain already-preprocessed subsequences, which is
    what :func:`save_csv` emits.
    """
    path = Path(path)
    groups: Dict[Tuple[int, int], List[List]] = defaultdict(list)
    max_question = 0
    max_concept = 0
    with path.open() as handle:
        reader = csv.DictReader(handle)
        missing = set(_HEADER) - set(reader.fieldnames or [])
        if missing:
            raise ValueError(f"{path} missing columns: {sorted(missing)}")
        for row in reader:
            concepts = tuple(int(c) for c in row["concept_ids"].split(";"))
            key = (int(row["sequence_id"]), int(row["student_id"]))
            groups[key].append([int(row["position"]), int(row["question_id"]),
                                int(row["correct"]), concepts])
            max_question = max(max_question, int(row["question_id"]))
            max_concept = max(max_concept, *concepts)

    sequences: List[StudentSequence] = []
    for (sequence_id, student_id) in sorted(groups):
        records = sorted(groups[(sequence_id, student_id)], key=lambda r: r[0])
        sequence = StudentSequence(student_id)
        for position, question, correct, concepts in records:
            sequence.append(Interaction(question, correct, concepts, position))
        sequences.append(sequence)

    dataset = KTDataset(name, sequences,
                        num_questions or max_question,
                        num_concepts or max_concept)
    dataset.validate()
    return dataset
