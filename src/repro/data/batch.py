"""Batching: pad variable-length subsequences into dense NumPy arrays.

Question and concept ids use 0 as padding; ``mask`` marks real positions.
Concept sets are ragged (ASSIST09 averages 1.22 concepts per question), so
they are stored as a ``(B, L, C_max)`` id array plus a count matrix used to
average concept embeddings (Eq. 23).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from .events import PAD_ID, StudentSequence


@dataclass
class Batch:
    """Dense arrays for a batch of subsequences.

    Attributes
    ----------
    questions : ``(B, L)`` int — question ids, 0-padded.
    responses : ``(B, L)`` int — 0/1 correctness, 0 at padding.
    concepts : ``(B, L, C)`` int — concept ids, 0-padded.
    concept_counts : ``(B, L)`` int — number of real concepts per step
        (minimum 1 at padded steps so divisions are safe).
    mask : ``(B, L)`` bool — True at real (non-padding) steps.
    """

    questions: np.ndarray
    responses: np.ndarray
    concepts: np.ndarray
    concept_counts: np.ndarray
    mask: np.ndarray

    @property
    def batch_size(self) -> int:
        return self.questions.shape[0]

    @property
    def length(self) -> int:
        return self.questions.shape[1]

    def lengths(self) -> np.ndarray:
        return self.mask.sum(axis=1)

    def truncated(self, length: int) -> "Batch":
        """Drop columns past ``length`` (views share the parent's memory).

        Only valid when the dropped columns carry no real positions the
        caller still needs; the multi-target fast path uses it to shrink a
        chunk of expanded rows to the chunk's longest target.
        """
        if length >= self.length:
            return self
        return Batch(self.questions[:, :length], self.responses[:, :length],
                     self.concepts[:, :length], self.concept_counts[:, :length],
                     self.mask[:, :length])


def collate(sequences: Sequence[StudentSequence],
            pad_to: Optional[int] = None) -> Batch:
    """Pad ``sequences`` to a rectangular batch.

    ``pad_to`` forces a fixed length (the paper pads to 50); by default the
    batch is padded to its own longest sequence.
    """
    if not sequences:
        raise ValueError("cannot collate an empty list of sequences")
    longest = max(len(s) for s in sequences)
    length = pad_to or longest
    if longest > length:
        raise ValueError(f"sequence of length {longest} exceeds pad_to={length}")
    max_concepts = max((len(i.concept_ids) for s in sequences for i in s),
                       default=1)

    batch = len(sequences)
    questions = np.full((batch, length), PAD_ID, dtype=np.int64)
    responses = np.zeros((batch, length), dtype=np.int64)
    concepts = np.full((batch, length, max_concepts), PAD_ID, dtype=np.int64)
    counts = np.ones((batch, length), dtype=np.int64)
    mask = np.zeros((batch, length), dtype=bool)

    for row, sequence in enumerate(sequences):
        for col, interaction in enumerate(sequence):
            questions[row, col] = interaction.question_id
            responses[row, col] = interaction.correct
            ids = interaction.concept_ids
            concepts[row, col, :len(ids)] = ids
            counts[row, col] = len(ids)
            mask[row, col] = True
    return Batch(questions, responses, concepts, counts, mask)


def expand_targets(batch: Batch, row_indices: np.ndarray,
                   target_cols: np.ndarray) -> Batch:
    """Expand target positions of a collated batch into one row per target.

    ``row_indices[k]`` picks the source row of expanded row ``k`` and
    ``target_cols[k]`` its target position.  The expanded row keeps the
    source row's questions/responses/concepts but its mask is truncated
    immediately after the target, so downstream consumers (attention masks,
    the mask-aware LSTM recurrence) treat the row as if the sequence ended
    at the target — the multi-target fast path's replacement for physically
    re-collating each ``seq[:col + 1]`` prefix.

    All work is NumPy fancy indexing: no per-interaction Python loops, so
    expanding ``T`` targets out of one collated sequence costs O(T·L) array
    copies instead of the O(T²) loop work of ``T`` prefix collations.
    """
    rows = np.asarray(row_indices)
    cols = np.asarray(target_cols)
    if rows.shape != cols.shape or rows.ndim != 1:
        raise ValueError("row_indices and target_cols must be 1-D and equal "
                         "length")
    if np.any(cols < 0) or np.any(cols >= batch.length):
        raise ValueError("target_cols out of range")
    if not batch.mask[rows, cols].all():
        raise ValueError("every target position must be a real response")
    columns = np.arange(batch.length)[None, :]
    truncated = batch.mask[rows] & (columns <= cols[:, None])
    return Batch(
        questions=batch.questions[rows],
        responses=batch.responses[rows],
        concepts=batch.concepts[rows],
        concept_counts=batch.concept_counts[rows],
        mask=truncated,
    )


def expand_windowed_targets(batch: Batch, row_indices: np.ndarray,
                            target_cols: np.ndarray,
                            window_starts: np.ndarray
                            ) -> "tuple[Batch, np.ndarray]":
    """:func:`expand_targets` with per-target sliding-window re-basing.

    Each expanded row ``k`` is the slice ``[window_starts[k], target_cols[k]]``
    of source row ``row_indices[k]``, shifted so the window's first step
    lands at column 0.  Re-basing (rather than masking in place) keeps
    positional encodings and recurrent states identical to a from-scratch
    encode of the truncated history, which is what makes windowed scoring
    exactly equal to full recompute on the window.

    Parameters
    ----------
    batch:
        The collated source batch.
    row_indices / target_cols:
        1-D, equal length: source row and target column per expanded row.
    window_starts:
        1-D per-target window start (e.g. from
        :func:`repro.core.masking.window_starts` applied to the targets'
        history lengths); must satisfy ``0 <= start <= target_col``.

    Returns
    -------
    (Batch, np.ndarray)
        The expanded, re-based batch and the re-based target columns
        (``target_cols - window_starts``).

    Raises
    ------
    ValueError
        On shape mismatches, out-of-range targets/starts, or targets at
        padded positions.
    """
    rows = np.asarray(row_indices)
    cols = np.asarray(target_cols)
    starts = np.asarray(window_starts)
    if not (rows.shape == cols.shape == starts.shape) or rows.ndim != 1:
        raise ValueError("row_indices, target_cols and window_starts must "
                         "be 1-D and equal length")
    if np.any(cols < 0) or np.any(cols >= batch.length):
        raise ValueError("target_cols out of range")
    if np.any(starts < 0) or np.any(starts > cols):
        raise ValueError("window_starts must satisfy 0 <= start <= target")
    if not batch.mask[rows, cols].all():
        raise ValueError("every target position must be a real response")
    new_cols = cols - starts
    width = int(new_cols.max()) + 1
    # Gather columns [start, start + width) of each source row; positions
    # past the target are clipped in-bounds and masked out below.
    gather = starts[:, None] + np.arange(width)[None, :]
    inside = gather <= cols[:, None]
    gather = np.minimum(gather, batch.length - 1)
    row_grid = rows[:, None]
    mask = batch.mask[row_grid, gather] & inside
    return Batch(
        questions=batch.questions[row_grid, gather],
        responses=batch.responses[row_grid, gather],
        concepts=batch.concepts[row_grid, gather],
        concept_counts=batch.concept_counts[row_grid, gather],
        mask=mask,
    ), new_cols


def iterate_batches(sequences: List[StudentSequence], batch_size: int,
                    rng: Optional[np.random.Generator] = None,
                    pad_to: Optional[int] = None) -> Iterator[Batch]:
    """Yield shuffled (if ``rng`` given) batches over ``sequences``."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = np.arange(len(sequences))
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, len(sequences), batch_size):
        chunk = [sequences[i] for i in order[start:start + batch_size]]
        yield collate(chunk, pad_to=pad_to)
