"""Core data types: a single response and a student's response sequence.

The paper (Sec. III-A) denotes a history as
``H_t = {(q_1, r_1, K_1), ..., (q_t, r_t, K_t)}`` where ``q`` is a question
id, ``r`` binary correctness, and ``K`` the set of knowledge concepts the
question exercises.  These dataclasses are the in-memory form of that
notation; IDs are 1-based, with 0 reserved for padding everywhere in the
repository.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

PAD_ID = 0


@dataclass(frozen=True)
class Interaction:
    """One response record ``(q, r, K)`` plus an integer timestamp.

    ``timestamp`` is a step counter (not wall-clock); the simulator uses it
    for forgetting decay and the models ignore it, matching the paper's
    preprocessing which keeps only order.
    """

    question_id: int
    correct: int
    concept_ids: Tuple[int, ...]
    timestamp: int = 0

    def __post_init__(self) -> None:
        if self.question_id <= PAD_ID:
            raise ValueError(f"question_id must be positive, got {self.question_id}")
        if self.correct not in (0, 1):
            raise ValueError(f"correct must be 0 or 1, got {self.correct}")
        if not self.concept_ids:
            raise ValueError("an interaction needs at least one concept")
        if any(c <= PAD_ID for c in self.concept_ids):
            raise ValueError("concept ids must be positive")


@dataclass
class StudentSequence:
    """An ordered response record for one student (or one subsequence)."""

    student_id: int
    interactions: List[Interaction] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.interactions)

    def __iter__(self) -> Iterator[Interaction]:
        return iter(self.interactions)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return StudentSequence(self.student_id, self.interactions[index])
        return self.interactions[index]

    def append(self, interaction: Interaction) -> None:
        self.interactions.append(interaction)

    @property
    def question_ids(self) -> List[int]:
        return [i.question_id for i in self.interactions]

    @property
    def responses(self) -> List[int]:
        return [i.correct for i in self.interactions]

    @property
    def correct_rate(self) -> float:
        if not self.interactions:
            return 0.0
        return sum(i.correct for i in self.interactions) / len(self.interactions)

    def split(self, max_length: int) -> List["StudentSequence"]:
        """Chop into consecutive subsequences of at most ``max_length``."""
        if max_length <= 0:
            raise ValueError("max_length must be positive")
        return [StudentSequence(self.student_id, self.interactions[i:i + max_length])
                for i in range(0, len(self.interactions), max_length)]
