"""Dataset statistics in the shape of the paper's Table II."""

from __future__ import annotations

from dataclasses import dataclass

from .dataset import KTDataset


@dataclass
class DatasetStats:
    """The Table II row for one dataset."""

    name: str
    num_responses: int
    num_sequences: int
    num_questions: int
    num_concepts: int
    concepts_per_question: float
    correct_rate: float

    def as_row(self) -> str:
        return (f"{self.name:<12} {self.num_responses:>9} {self.num_sequences:>9} "
                f"{self.num_questions:>9} {self.num_concepts:>8} "
                f"{self.concepts_per_question:>9.2f} {self.correct_rate:>8.2f}")

    @staticmethod
    def header() -> str:
        return (f"{'dataset':<12} {'#resp':>9} {'#seq':>9} {'#ques':>9} "
                f"{'#conc':>8} {'conc/q':>9} {'%corr':>8}")


def compute_stats(dataset: KTDataset) -> DatasetStats:
    """Compute the Table II statistics for ``dataset``.

    ``concepts_per_question`` is averaged over distinct questions that
    actually appear, mirroring the paper's per-question (not per-response)
    ratio.
    """
    seen = {}
    for sequence in dataset:
        for interaction in sequence:
            seen[interaction.question_id] = len(interaction.concept_ids)
    concepts_per_question = (sum(seen.values()) / len(seen)) if seen else 0.0
    return DatasetStats(
        name=dataset.name,
        num_responses=dataset.num_responses,
        num_sequences=len(dataset),
        num_questions=dataset.num_questions,
        num_concepts=dataset.num_concepts,
        concepts_per_question=concepts_per_question,
        correct_rate=dataset.correct_rate,
    )
