"""IRT-based student behaviour simulator.

The paper evaluates on four proprietary-hosted corpora (ASSIST09, ASSIST12,
Slepemapy, Eedi) that cannot be downloaded in this offline environment, so
this module generates synthetic response logs with the same *structural*
properties the models exploit:

* **Monotonicity** (Assumption 3.1): the probability of a correct answer is
  increasing in the student's proficiency — the core premise RCKT's
  counterfactual retention relies on.
* **Learning**: practicing a concept raises proficiency (more on correct
  answers), with *transfer* to related concepts along a concept graph.
* **Forgetting**: proficiency decays toward a baseline with time since the
  concept was last practiced — the forgetting-curve effect Fig. 5 of the
  paper surfaces through response influences.
* **Guess/slip**: responses are noisy observations of proficiency, as in
  classic BKT/IRT.

Concept structure is built with ``networkx``: a prerequisite DAG for the
ASSISTments-style profiles, a concept *tree* whose leaves tag questions for
the Eedi profile (the paper uses Eedi's leaf concepts), and geographic
clusters for Slepemapy.  See :mod:`repro.data.profiles` for the per-dataset
parameterizations matched to Table II.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from .events import Interaction, StudentSequence


@dataclass
class QuestionBank:
    """Static question parameters (1-based ids; index 0 unused)."""

    concepts: List[Tuple[int, ...]]       # concepts[qid - 1] -> concept ids
    difficulty: np.ndarray                # (num_questions,) IRT b
    discrimination: np.ndarray            # (num_questions,) IRT a
    guess: np.ndarray                     # (num_questions,) pseudo-guessing
    slip: np.ndarray                      # (num_questions,) slip probability

    @property
    def num_questions(self) -> int:
        return len(self.concepts)


@dataclass
class SimulationConfig:
    """Knobs for one synthetic corpus."""

    num_students: int = 100
    num_questions: int = 200
    num_concepts: int = 20
    concepts_per_question: Tuple[int, int] = (1, 1)
    extra_concept_prob: float = 0.3
    sequence_length: Tuple[int, int] = (20, 80)
    target_correct_rate: float = 0.65
    concept_structure: str = "prerequisite"   # prerequisite | tree | clusters
    guess_range: Tuple[float, float] = (0.05, 0.25)
    slip_range: Tuple[float, float] = (0.02, 0.10)
    learning_gain: float = 0.25
    incorrect_gain_fraction: float = 0.4
    transfer_rate: float = 0.3
    forgetting_rate: float = 0.02
    momentum_strength: float = 0.6   # streak effect (confidence/frustration)
    momentum_window: int = 5
    ability_std: float = 1.0
    adaptive_selection: bool = False
    calibration_students: int = 24
    calibration_rounds: int = 4


def build_concept_graph(num_concepts: int, structure: str,
                        rng: np.random.Generator) -> nx.Graph:
    """Build the relation graph used for learning transfer.

    ``prerequisite``
        A random DAG viewed as an undirected relation graph (ASSISTments
        math skills build on one another).
    ``tree``
        A balanced tree; Eedi tags questions with the *leaves* of a math
        concept tree, and siblings under one parent are related.
    ``clusters``
        Disjoint near-cliques (Slepemapy geography facts cluster by
        region).
    """
    if num_concepts < 1:
        raise ValueError("need at least one concept")
    if structure == "prerequisite":
        graph = nx.Graph()
        graph.add_nodes_from(range(1, num_concepts + 1))
        for node in range(2, num_concepts + 1):
            parents = rng.choice(np.arange(1, node), size=min(2, node - 1),
                                 replace=False)
            for parent in np.atleast_1d(parents):
                graph.add_edge(int(parent), node)
        return graph
    if structure == "tree":
        # Balanced binary tree relabelled to 1-based ids.
        tree = nx.balanced_tree(2, max(1, int(np.ceil(np.log2(num_concepts + 1))) - 1))
        tree = nx.relabel_nodes(tree, {n: n + 1 for n in tree.nodes})
        keep = sorted(tree.nodes)[:num_concepts]
        return tree.subgraph(keep).copy()
    if structure == "clusters":
        graph = nx.Graph()
        graph.add_nodes_from(range(1, num_concepts + 1))
        cluster_size = max(2, num_concepts // max(1, num_concepts // 6))
        nodes = list(range(1, num_concepts + 1))
        for start in range(0, num_concepts, cluster_size):
            cluster = nodes[start:start + cluster_size]
            for i, a in enumerate(cluster):
                for b in cluster[i + 1:]:
                    if rng.random() < 0.6:
                        graph.add_edge(a, b)
        return graph
    raise ValueError(f"unknown concept structure: {structure}")


def leaf_concepts(graph: nx.Graph) -> List[int]:
    """Concepts with degree <= 1 (the 'leaf nodes' Eedi questions use)."""
    leaves = [n for n in graph.nodes if graph.degree(n) <= 1]
    return leaves or list(graph.nodes)


def build_question_bank(config: SimulationConfig, graph: nx.Graph,
                        rng: np.random.Generator) -> QuestionBank:
    """Sample question parameters and concept assignments."""
    low, high = config.concepts_per_question
    if config.concept_structure == "tree":
        pool = leaf_concepts(graph)
    else:
        pool = list(graph.nodes)
    concepts: List[Tuple[int, ...]] = []
    for _ in range(config.num_questions):
        # ``low`` concepts always; each extra slot filled with probability
        # ``extra_concept_prob`` (gives e.g. ASSIST09's 1.22 concepts/question
        # instead of a uniform mean of 2).
        count = low + int(rng.binomial(high - low, config.extra_concept_prob))
        count = min(count, len(pool))
        primary = int(rng.choice(pool))
        chosen = {primary}
        # Extra concepts are preferentially graph-neighbours of the primary
        # (multi-concept questions mix *related* skills).
        neighbours = [n for n in graph.neighbors(primary) if n in set(pool)]
        while len(chosen) < count:
            if neighbours and rng.random() < 0.7:
                chosen.add(int(rng.choice(neighbours)))
            else:
                chosen.add(int(rng.choice(pool)))
        concepts.append(tuple(sorted(chosen)))
    return QuestionBank(
        concepts=concepts,
        difficulty=rng.normal(0.0, 1.0, size=config.num_questions),
        discrimination=rng.lognormal(0.0, 0.3, size=config.num_questions),
        guess=rng.uniform(*config.guess_range, size=config.num_questions),
        slip=rng.uniform(*config.slip_range, size=config.num_questions),
    )


class StudentSimulator:
    """Generates response sequences under learning + forgetting dynamics."""

    def __init__(self, config: SimulationConfig, seed: int = 0):
        self.config = config
        self._rng = np.random.default_rng(seed)
        self.graph = build_concept_graph(config.num_concepts,
                                         config.concept_structure, self._rng)
        self.bank = build_question_bank(config, self.graph, self._rng)
        self._ability_shift = 0.0
        self._calibrate()

    # ------------------------------------------------------------------
    # Core response model
    # ------------------------------------------------------------------
    def correct_probability(self, proficiency: float, question_index: int,
                            momentum: float = 0.0) -> float:
        """IRT 4-parameter response curve; monotone in ``proficiency``.

        ``momentum`` is an additive logit shift from the student's recent
        streak (confidence after successes, frustration after failures) —
        a *sequential* effect that static per-interaction features cannot
        express, mirroring real tutoring logs.  Monotonicity in
        ``proficiency`` (Assumption 3.1) is preserved because the shift is
        additive.
        """
        bank = self.bank
        logit = 1.7 * bank.discrimination[question_index] * (
            proficiency - bank.difficulty[question_index]) + momentum
        base = 1.0 / (1.0 + np.exp(-np.clip(logit, -30, 30)))
        return float(bank.guess[question_index]
                     + (1.0 - bank.guess[question_index]
                        - bank.slip[question_index]) * base)

    def _question_proficiency(self, theta: Dict[int, float], qid: int) -> float:
        ids = self.bank.concepts[qid - 1]
        return float(np.mean([theta[c] for c in ids]))

    # ------------------------------------------------------------------
    # Sequence generation
    # ------------------------------------------------------------------
    def simulate_student(self, student_id: int,
                         rng: Optional[np.random.Generator] = None,
                         length: Optional[int] = None) -> StudentSequence:
        """Simulate one student's full practice log."""
        rng = rng or self._rng
        config = self.config
        if length is None:
            low, high = config.sequence_length
            length = int(rng.integers(low, high + 1))  # inclusive bounds
        base = rng.normal(self._ability_shift, config.ability_std)
        theta = {c: base + rng.normal(0.0, 0.5) for c in self.graph.nodes}
        baseline = dict(theta)
        last_practiced = {c: 0 for c in self.graph.nodes}

        sequence = StudentSequence(student_id)
        recent: list = []
        for step in range(1, length + 1):
            qid = self._select_question(theta, rng)
            # Forgetting: decay unpracticed concepts toward their baseline.
            for concept in self.bank.concepts[qid - 1]:
                gap = step - last_practiced[concept]
                decay = np.exp(-config.forgetting_rate * gap)
                theta[concept] = (baseline[concept]
                                  + (theta[concept] - baseline[concept]) * decay)
            proficiency = self._question_proficiency(theta, qid)
            window = recent[-config.momentum_window:]
            momentum = (config.momentum_strength
                        * 2.0 * (np.mean(window) - 0.5)) if window else 0.0
            prob = self.correct_probability(proficiency, qid - 1,
                                            momentum=momentum)
            correct = int(rng.random() < prob)
            recent.append(correct)
            sequence.append(Interaction(qid, correct,
                                        self.bank.concepts[qid - 1], step))
            self._apply_learning(theta, baseline, last_practiced, qid,
                                 correct, step)
        return sequence

    def simulate(self, seed: Optional[int] = None) -> List[StudentSequence]:
        """Simulate the whole student population."""
        rng = np.random.default_rng(seed) if seed is not None else self._rng
        return [self.simulate_student(student_id + 1, rng)
                for student_id in range(self.config.num_students)]

    # ------------------------------------------------------------------
    def _select_question(self, theta: Dict[int, float],
                         rng: np.random.Generator) -> int:
        if not self.config.adaptive_selection:
            return int(rng.integers(1, self.bank.num_questions + 1))
        # Adaptive practice (slepemapy.cz): prefer questions near the
        # student's ability so practice is neither trivial nor hopeless.
        candidates = rng.integers(1, self.bank.num_questions + 1, size=8)
        gaps = []
        for qid in candidates:
            proficiency = self._question_proficiency(theta, int(qid))
            gaps.append(abs(proficiency - self.bank.difficulty[qid - 1]))
        return int(candidates[int(np.argmin(gaps))])

    def _apply_learning(self, theta: Dict[int, float],
                        baseline: Dict[int, float],
                        last_practiced: Dict[int, int], qid: int,
                        correct: int, step: int) -> None:
        config = self.config
        gain = config.learning_gain
        if not correct:
            gain *= config.incorrect_gain_fraction
        for concept in self.bank.concepts[qid - 1]:
            # Diminishing returns: less gain at high proficiency.
            room = 1.0 / (1.0 + np.exp(theta[concept]))
            theta[concept] += gain * (0.5 + room)
            baseline[concept] += 0.5 * gain * (0.5 + room)
            last_practiced[concept] = step
            for neighbour in self.graph.neighbors(concept):
                theta[neighbour] += config.transfer_rate * gain * 0.5
                baseline[neighbour] += 0.25 * config.transfer_rate * gain

    # ------------------------------------------------------------------
    def _calibrate(self) -> None:
        """Shift the ability distribution to hit ``target_correct_rate``.

        A few fixed-point iterations on a small pilot population; each
        round nudges the global ability shift by the logit difference
        between target and observed correct rates.
        """
        config = self.config
        target = config.target_correct_rate
        if not 0.0 < target < 1.0:
            raise ValueError("target_correct_rate must be in (0, 1)")
        pilot = min(config.calibration_students, config.num_students)
        for round_index in range(config.calibration_rounds):
            rng = np.random.default_rng(9000 + round_index)
            responses = []
            for student_id in range(pilot):
                seq = self.simulate_student(-1 - student_id, rng)
                responses.extend(seq.responses)
            observed = float(np.clip(np.mean(responses), 0.02, 0.98))
            adjustment = (np.log(target / (1 - target))
                          - np.log(observed / (1 - observed)))
            self._ability_shift += 0.8 * adjustment
            if abs(observed - target) < 0.01:
                break
