"""Data substrate: event types, preprocessing, folds, simulator, profiles."""

from .batch import (Batch, collate, expand_targets, expand_windowed_targets,
                    iterate_batches)
from .dataset import (MAX_SUBSEQUENCE_LENGTH, MIN_SUBSEQUENCE_LENGTH,
                      KTDataset, build_dataset, preprocess)
from .events import PAD_ID, Interaction, StudentSequence
from .folds import Fold, k_fold_splits, train_test_split
from .io import load_csv, save_csv
from .profiles import (DATASET_FACTORIES, PAPER_TABLE2, make_assist09,
                       make_assist12, make_dataset, make_eedi, make_slepemapy)
from .stats import DatasetStats, compute_stats
from .streaming import EventAccumulator, dataset_from_records
from .synthetic import (QuestionBank, SimulationConfig, StudentSimulator,
                        build_concept_graph, build_question_bank,
                        leaf_concepts)

__all__ = [
    "PAD_ID", "Interaction", "StudentSequence",
    "KTDataset", "build_dataset", "preprocess",
    "MAX_SUBSEQUENCE_LENGTH", "MIN_SUBSEQUENCE_LENGTH",
    "Batch", "collate", "expand_targets", "expand_windowed_targets",
    "iterate_batches",
    "Fold", "k_fold_splits", "train_test_split",
    "save_csv", "load_csv",
    "SimulationConfig", "StudentSimulator", "QuestionBank",
    "build_concept_graph", "build_question_bank", "leaf_concepts",
    "make_assist09", "make_assist12", "make_slepemapy", "make_eedi",
    "make_dataset", "DATASET_FACTORIES", "PAPER_TABLE2",
    "DatasetStats", "compute_stats",
    "EventAccumulator", "dataset_from_records",
]
