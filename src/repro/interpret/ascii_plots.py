"""Terminal rendering of the paper's figures (no plotting stack offline).

Line charts for Fig. 4/5-style series and signed bar charts for response
influences; everything returns plain strings so benches can ``print`` them
and tests can assert on structure.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np


def line_chart(series: Dict[str, Sequence[float]],
               x_labels: Optional[Sequence[str]] = None,
               height: int = 10, title: str = "") -> str:
    """Multi-series ASCII line chart; one glyph per series."""
    if not series:
        raise ValueError("no series to plot")
    glyphs = "*o+x#@%&"
    arrays = {name: np.asarray(values, dtype=np.float64)
              for name, values in series.items()}
    width = max(len(a) for a in arrays.values())
    lo = min(a.min() for a in arrays.values())
    hi = max(a.max() for a in arrays.values())
    span = (hi - lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (_name, values) in enumerate(arrays.items()):
        glyph = glyphs[index % len(glyphs)]
        for x, value in enumerate(values):
            y = int(round((value - lo) / span * (height - 1)))
            grid[height - 1 - y][x] = glyph

    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        level = hi - span * row_index / (height - 1)
        lines.append(f"{level:8.3f} |" + "".join(row))
    if x_labels:
        lines.append(" " * 10 + "".join(str(l)[0] for l in x_labels))
    legend = "  ".join(f"{glyphs[i % len(glyphs)]}={name}"
                       for i, name in enumerate(arrays))
    lines.append("legend: " + legend)
    return "\n".join(lines)


def influence_bars(influences: Sequence[float],
                   correctness: Sequence[int],
                   width: int = 30, title: str = "") -> str:
    """Signed horizontal bars: one row per past response (Fig. 5 bottom).

    Correct responses render as ``+`` bars, incorrect as ``-`` bars; bar
    length is proportional to |influence| within the series.
    """
    influences = np.asarray(influences, dtype=np.float64)
    correctness = np.asarray(correctness)
    if influences.shape != correctness.shape:
        raise ValueError("influences and correctness must align")
    peak = np.abs(influences).max() or 1.0
    lines = [title] if title else []
    for index, (value, correct) in enumerate(zip(influences, correctness)):
        bar_len = int(round(abs(value) / peak * width))
        glyph = "+" if correct else "-"
        lines.append(f"resp {index + 1:>3} [{glyph}] "
                     f"{glyph * bar_len:<{width}} {value:+.3f}")
    return "\n".join(lines)


def comparison_table(headers: Sequence[str],
                     rows: Sequence[Sequence[object]],
                     title: str = "") -> str:
    """Fixed-width table used for paper-vs-measured reports."""
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    for row in rows:
        if len(row) != columns:
            raise ValueError("row width mismatch")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(_fmt(cell)))
    lines = [title] if title else []
    lines.append("  ".join(str(h).ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in rows:
        lines.append("  ".join(_fmt(cell).ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)
