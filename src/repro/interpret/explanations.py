"""Response-influence explanations (the paper's Fig. 6 artifact).

Turns an RCKT influence computation into a human-readable record: one row
per past response with its question, concepts, correctness and influence
value, plus the Δ+/Δ− totals and the final comparison-based decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.data import StudentSequence, collate

from ..core.rckt import RCKT


@dataclass
class InfluenceRow:
    """One past response's contribution to the target prediction."""

    position: int
    question_id: int
    concept_ids: tuple
    correct: int
    influence: float

    def describe(self) -> str:
        mark = "correct" if self.correct else "incorrect"
        return (f"q{self.question_id} ({mark}) -> influence "
                f"{self.influence:+.3f}")


@dataclass
class PredictionExplanation:
    """Full Fig. 6-style explanation for one target prediction."""

    target_question: int
    target_concepts: tuple
    target_label: Optional[int]
    rows: List[InfluenceRow]
    delta_plus: float
    delta_minus: float
    score: float

    @property
    def prediction(self) -> int:
        """Eq. 13: correct iff total correct influence wins."""
        return int(self.score >= 0.5)

    def render(self) -> str:
        """Plain-text table mirroring Fig. 6's Inf. column."""
        lines = [
            f"target: q{self.target_question} concepts={self.target_concepts}",
            f"{'pos':>4} {'question':>9} {'resp':>6} {'influence':>10}",
        ]
        for row in self.rows:
            mark = "+" if row.correct else "-"
            lines.append(f"{row.position:>4} {row.question_id:>9} "
                         f"{mark:>6} {row.influence:>10.3f}")
        lines.append(f"total correct influence   Δ+ = {self.delta_plus:.3f}")
        lines.append(f"total incorrect influence Δ- = {self.delta_minus:.3f}")
        verdict = "correct" if self.prediction else "incorrect"
        lines.append(f"prediction: {verdict} (score {self.score:.3f}"
                     + (f", ground truth "
                        f"{'correct' if self.target_label else 'incorrect'})"
                        if self.target_label is not None else ")"))
        return "\n".join(lines)


def explain_prediction(model: RCKT, sequence: StudentSequence,
                       target_col: Optional[int] = None) -> PredictionExplanation:
    """Explain the prediction for ``sequence[target_col]``.

    Uses the approximated backward influences (the deployed inference
    path); each history position gets its Δ value, signed per Eq. 9/11.
    """
    if target_col is None:
        target_col = len(sequence) - 1
    if target_col < 1:
        raise ValueError("the target needs at least one past response")
    prefix = sequence[:target_col + 1]
    batch = collate([prefix])
    influence = _eval_influences(model, batch, np.array([target_col]))

    deltas = (influence.correct_deltas.data[0]
              + influence.incorrect_deltas.data[0])
    rows = [
        InfluenceRow(
            position=i,
            question_id=prefix[i].question_id,
            concept_ids=prefix[i].concept_ids,
            correct=prefix[i].correct,
            influence=float(deltas[i]),
        )
        for i in range(target_col)
    ]
    target = prefix[target_col]
    return PredictionExplanation(
        target_question=target.question_id,
        target_concepts=target.concept_ids,
        target_label=target.correct,
        rows=rows,
        delta_plus=float(influence.delta_plus.data[0]),
        delta_minus=float(influence.delta_minus.data[0]),
        score=float(influence.scores[0]),
    )


def _eval_influences(model: RCKT, batch, cols):
    from repro.tensor import no_grad
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            return model.influences(batch, cols)
    finally:
        if was_training:
            model.train()
