"""Fig. 6 case study: RCKT influences vs. SAKT+ attention.

The paper contrasts its response influences against the head-averaged
attention that SAKT+ pays to each historical response when predicting the
same target, showing that attention can concentrate on the wrong evidence
while the influence decomposition stays faithful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.data import StudentSequence, collate
from repro.models import SAKTPlus

from ..core.rckt import RCKT
from .ascii_plots import comparison_table
from .explanations import PredictionExplanation, explain_prediction


@dataclass
class CaseStudyRow:
    position: int
    question_id: int
    concept_ids: tuple
    correct: int
    influence: float      # RCKT's Inf. column
    attention: float      # SAKT+'s Att. column


@dataclass
class CaseStudy:
    rows: List[CaseStudyRow]
    target_question: int
    target_label: int
    rckt_score: float
    rckt_prediction: int
    sakt_probability: float
    sakt_prediction: int

    def render(self) -> str:
        table_rows = [
            [f"q{r.question_id}", str(r.concept_ids),
             "Y" if r.correct else "N", r.influence, r.attention]
            for r in self.rows
        ]
        body = comparison_table(
            ["question", "concepts", "correct", "Inf.", "Att."],
            table_rows, title="Fig.6-style case study")
        footer = (
            f"\ntarget q{self.target_question} "
            f"(truth: {'correct' if self.target_label else 'incorrect'})\n"
            f"RCKT  score {self.rckt_score:.3f} -> "
            f"{'correct' if self.rckt_prediction else 'incorrect'}\n"
            f"SAKT+ prob  {self.sakt_probability:.3f} -> "
            f"{'correct' if self.sakt_prediction else 'incorrect'}")
        return body + footer


def build_case_study(rckt: RCKT, sakt_plus: SAKTPlus,
                     sequence: StudentSequence,
                     target_col: Optional[int] = None) -> CaseStudy:
    """Produce the side-by-side influence/attention comparison."""
    if target_col is None:
        target_col = len(sequence) - 1
    explanation: PredictionExplanation = explain_prediction(
        rckt, sequence, target_col)

    prefix = sequence[:target_col + 1]
    batch = collate([prefix])
    attention = sakt_plus.attention_to_history(batch)[0]  # (L, L)
    target_attention = attention[target_col, :target_col]
    sakt_probability = float(sakt_plus.predict_proba(batch)[0, target_col])

    rows = [
        CaseStudyRow(
            position=row.position,
            question_id=row.question_id,
            concept_ids=row.concept_ids,
            correct=row.correct,
            influence=row.influence,
            attention=float(target_attention[row.position]),
        )
        for row in explanation.rows
    ]
    return CaseStudy(
        rows=rows,
        target_question=explanation.target_question,
        target_label=int(explanation.target_label),
        rckt_score=explanation.score,
        rckt_prediction=explanation.prediction,
        sakt_probability=sakt_probability,
        sakt_prediction=int(sakt_probability >= 0.5),
    )
