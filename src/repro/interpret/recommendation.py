"""Question recommendation from response influences.

The paper's introduction motivates response influences with teaching
applications: *"These insights can aid educators in improving their
teaching activities, such as question recommendation and question bank
construction."*  This module implements that application on top of a
trained RCKT model:

* :func:`question_value` — how much answering a candidate question is
  expected to matter, measured by the counterfactual gap between answering
  it correctly vs incorrectly on a *probe* of the student's proficiency
  (high-gap questions are informative/decisive practice).
* :func:`recommend_questions` — rank a candidate pool for one student,
  balancing expected success probability against question value, so the
  recommended practice is neither trivial nor hopeless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.data import Interaction, StudentSequence, collate
from repro.tensor import no_grad

from ..core.rckt import RCKT


@dataclass
class QuestionRecommendation:
    question_id: int
    concept_ids: tuple
    success_probability: float
    value: float            # counterfactual informativeness
    score: float            # blended ranking score

    def describe(self) -> str:
        return (f"q{self.question_id}: p(correct)={self.success_probability:.2f}"
                f"  value={self.value:.3f}  score={self.score:.3f}")


def _target_score(model: RCKT, sequence: StudentSequence,
                  candidate: Interaction) -> float:
    """RCKT's influence-based probability that ``candidate`` is answered
    correctly after ``sequence``."""
    probe = StudentSequence(sequence.student_id, list(sequence.interactions))
    probe.append(candidate)
    batch = collate([probe])
    cols = np.array([len(probe) - 1])
    return float(model.predict_scores(batch, cols)[0])


def question_value(model: RCKT, sequence: StudentSequence,
                   candidate: Interaction,
                   horizon: int = 4) -> float:
    """Counterfactual value of practicing ``candidate`` next.

    Appends the candidate answered *correctly* and *incorrectly* in turn
    and measures how far apart the two futures push the predictions for
    the student's most recent ``horizon`` questions (re-asked as probes).
    A large gap means the response to this question carries a lot of
    information about the student's state — the "question value" the paper
    says influences can unveil.
    """
    if len(sequence) == 0:
        raise ValueError("question_value needs a non-empty history")
    recent = sequence.interactions[-horizon:]
    gaps: List[float] = []
    for assumed in (1, 0):
        answered = Interaction(candidate.question_id, assumed,
                               candidate.concept_ids,
                               timestamp=len(sequence) + 1)
        extended = StudentSequence(sequence.student_id,
                                   list(sequence.interactions) + [answered])
        for probe_src in recent:
            probe_q = Interaction(probe_src.question_id, 1,
                                  probe_src.concept_ids,
                                  timestamp=len(extended) + 1)
            gaps.append(_target_score(model, extended, probe_q))
    half = len(gaps) // 2
    correct_world = np.array(gaps[:half])
    incorrect_world = np.array(gaps[half:])
    return float(np.abs(correct_world - incorrect_world).mean())


def recommend_questions(model: RCKT, sequence: StudentSequence,
                        candidates: Sequence[Interaction],
                        top_k: int = 5,
                        target_success: float = 0.6,
                        value_weight: float = 1.0
                        ) -> List[QuestionRecommendation]:
    """Rank candidate next questions for a student.

    The blended score prefers questions whose predicted success probability
    is near ``target_success`` (productive difficulty, the adaptive-practice
    sweet spot) and whose counterfactual :func:`question_value` is high.
    """
    if not candidates:
        return []
    recommendations = []
    with no_grad():
        for candidate in candidates:
            probability = _target_score(model, sequence, candidate)
            value = question_value(model, sequence, candidate)
            difficulty_fit = 1.0 - abs(probability - target_success)
            score = difficulty_fit + value_weight * value
            recommendations.append(QuestionRecommendation(
                question_id=candidate.question_id,
                concept_ids=candidate.concept_ids,
                success_probability=probability,
                value=value,
                score=score,
            ))
    recommendations.sort(key=lambda r: -r.score)
    return recommendations[:top_k]
