"""Interpretation tooling: explanations, proficiency traces, case studies."""

from .ascii_plots import comparison_table, influence_bars, line_chart
from .case_study import CaseStudy, CaseStudyRow, build_case_study
from .explanations import (InfluenceRow, PredictionExplanation,
                           explain_prediction)
from .proficiency import (ProficiencyTrace, related_questions,
                          trace_all_concepts, trace_proficiency,
                          virtual_question_embedding)
from .recommendation import (QuestionRecommendation, question_value,
                             recommend_questions)

__all__ = [
    "explain_prediction", "PredictionExplanation", "InfluenceRow",
    "ProficiencyTrace", "trace_proficiency", "trace_all_concepts",
    "related_questions", "virtual_question_embedding",
    "CaseStudy", "CaseStudyRow", "build_case_study",
    "line_chart", "influence_bars", "comparison_table",
    "QuestionRecommendation", "question_value", "recommend_questions",
]
