"""Concept proficiency tracing (Sec. V-E, Eq. 30, Fig. 5).

RCKT probes a student's proficiency on concept ``k`` after each response by
predicting a *virtual question*: instead of zeroing the question input (the
approach of earlier works), the paper averages the ID embeddings of the
questions related to ``k``:

    e = (1/|Q_k|) * sum_{q in Q_k} q  +  k                        (Eq. 30)

The influence score of answering this virtual question correctly, scaled to
(0, 1), is the traced proficiency; the per-response influence decomposition
is exactly the bottom panel of Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data import Interaction, KTDataset, StudentSequence, collate
from repro.tensor import Tensor, no_grad

from ..core.rckt import RCKT


@dataclass
class ProficiencyTrace:
    """Proficiency of one concept after each of a student's responses."""

    concept_id: int
    proficiencies: np.ndarray           # (T,) in (0, 1), after each response
    influence_rows: List[np.ndarray]    # influence_rows[t][i]: response i's
                                        # influence on proficiency after t+1 steps

    @property
    def final_proficiency(self) -> float:
        return float(self.proficiencies[-1])

    @property
    def final_influences(self) -> np.ndarray:
        """Per-response influences on the final proficiency (Fig. 5 bottom)."""
        return self.influence_rows[-1]


def related_questions(dataset: KTDataset, concept_id: int,
                      limit: int = 64) -> List[int]:
    """Questions tagged with ``concept_id`` anywhere in ``dataset``."""
    found: List[int] = []
    seen = set()
    for sequence in dataset:
        for interaction in sequence:
            if concept_id in interaction.concept_ids \
                    and interaction.question_id not in seen:
                seen.add(interaction.question_id)
                found.append(interaction.question_id)
                if len(found) >= limit:
                    return found
    return found


def virtual_question_embedding(model: RCKT, concept_id: int,
                               question_ids: Sequence[int]) -> Tensor:
    """Eq. 30: mean question-ID embedding plus the concept embedding."""
    if not question_ids:
        raise ValueError(f"no questions related to concept {concept_id}")
    embedder = model.generator.embedder
    with no_grad():
        questions = embedder.question_embedding.weight.data[list(question_ids)]
        concept = embedder.concept_embedding.weight.data[concept_id]
    return Tensor(questions.mean(axis=0) + concept)


def trace_proficiency(model: RCKT, sequence: StudentSequence, concept_id: int,
                      question_ids: Sequence[int],
                      steps: Optional[Sequence[int]] = None) -> ProficiencyTrace:
    """Trace proficiency on ``concept_id`` after each response.

    ``steps`` selects which prefixes to probe (default: every prefix).  For
    each probed prefix a virtual target is appended and the usual influence
    computation runs with the Eq. 30 embedding override.
    """
    if steps is None:
        steps = range(1, len(sequence) + 1)
    override = virtual_question_embedding(
        model, concept_id, question_ids).reshape(1, -1)
    probe_question = int(question_ids[0])

    proficiencies: List[float] = []
    influence_rows: List[np.ndarray] = []
    was_training = model.training
    model.eval()
    try:
        for step in steps:
            prefix = sequence[:step]
            probe = StudentSequence(sequence.student_id,
                                    list(prefix.interactions))
            # The virtual target; its question id is a placeholder (the
            # embedding is overridden) and its response is set by variants.
            probe.append(Interaction(probe_question, 1, (concept_id,),
                                     timestamp=step))
            batch = collate([probe])
            cols = np.array([step])
            with no_grad():
                influence = model.influences(batch, cols,
                                             question_override=override)
            proficiencies.append(float(influence.scores[0]))
            deltas = (influence.correct_deltas.data[0, :step]
                      + influence.incorrect_deltas.data[0, :step])
            influence_rows.append(deltas.copy())
    finally:
        if was_training:
            model.train()
    return ProficiencyTrace(concept_id, np.asarray(proficiencies),
                            influence_rows)


def trace_all_concepts(model: RCKT, dataset: KTDataset,
                       sequence: StudentSequence,
                       concept_ids: Sequence[int],
                       steps: Optional[Sequence[int]] = None
                       ) -> Dict[int, ProficiencyTrace]:
    """Fig. 5: trace several concepts of one student side by side."""
    traces = {}
    for concept_id in concept_ids:
        pool = related_questions(dataset, concept_id)
        if not pool:
            continue
        traces[concept_id] = trace_proficiency(model, sequence, concept_id,
                                               pool, steps=steps)
    return traces
