"""Experiment harness: one callable per paper table/figure.

=============  =========================  =============================
Paper artifact Function                   Bench module
=============  =========================  =============================
Table II       :func:`run_table2`         benchmarks/test_table2_dataset_stats.py
Table IV       :func:`run_overall`        benchmarks/test_table4_overall.py
Table V        :func:`run_ablation`       benchmarks/test_table5_ablation.py
Table VI       :func:`run_approximation`  benchmarks/test_table6_approximation.py
Fig. 4         :func:`run_lambda_sweep`   benchmarks/test_fig4_lambda.py
Fig. 5         :func:`run_proficiency_figure`  benchmarks/test_fig5_proficiency.py
Fig. 6         :func:`run_case_study`     benchmarks/test_fig6_case_study.py
=============  =========================  =============================
"""

from .ablation import ABLATIONS, AblationResult, run_ablation
from .approximation import ApproximationResult, run_approximation
from .cross_validation import CVResult, run_cross_validation
from .common import (BASELINES, DATASETS, RCKT_VARIANTS, Budget,
                     cached_dataset, env_epochs, env_scale, rckt_config_for,
                     run_baseline, run_rckt, single_fold)
from .figures import (CaseStudyFigure, ProficiencyFigure, run_case_study,
                      run_proficiency_figure)
from .lambda_sweep import LambdaSweepResult, run_lambda_sweep
from .overall import OverallResult, run_overall
from .paper_numbers import FIG4_LAMBDAS, TABLE4, TABLE5, TABLE6
from .table2 import Table2Result, run_table2

__all__ = [
    "Budget", "DATASETS", "BASELINES", "RCKT_VARIANTS",
    "cached_dataset", "single_fold", "run_baseline", "run_rckt",
    "rckt_config_for", "env_scale", "env_epochs",
    "run_table2", "Table2Result",
    "run_overall", "OverallResult",
    "run_ablation", "AblationResult", "ABLATIONS",
    "run_lambda_sweep", "LambdaSweepResult",
    "run_approximation", "ApproximationResult",
    "run_cross_validation", "CVResult",
    "run_proficiency_figure", "ProficiencyFigure",
    "run_case_study", "CaseStudyFigure",
    "TABLE4", "TABLE5", "TABLE6", "FIG4_LAMBDAS",
]
