"""Published numbers from the paper's tables, for side-by-side reports.

Sources: Table IV (overall AUC/ACC), Table V (ablation), Table VI
(approximation efficiency).  Used only for *display and shape checks* —
absolute values are not expected to match a synthetic-data CPU-scale run.
"""

# Table IV: model -> dataset -> (AUC, ACC)
TABLE4 = {
    "DKT": {"assist09": (0.7706, 0.7263), "assist12": (0.7287, 0.7345),
            "slepemapy": (0.7813, 0.7988), "eedi": (0.7391, 0.7014)},
    "SAKT": {"assist09": (0.7674, 0.7248), "assist12": (0.7283, 0.7344),
             "slepemapy": (0.7850, 0.8012), "eedi": (0.7417, 0.7030)},
    "AKT": {"assist09": (0.7837, 0.7343), "assist12": (0.7718, 0.7536),
            "slepemapy": (0.7866, 0.8019), "eedi": (0.7828, 0.7281)},
    "DIMKT": {"assist09": (0.7854, 0.7387), "assist12": (0.7709, 0.7541),
              "slepemapy": (0.7888, 0.8021), "eedi": (0.7835, 0.7285)},
    "IKT": {"assist09": (0.7774, 0.7261), "assist12": (0.7624, 0.7452),
            "slepemapy": (0.6664, 0.7846), "eedi": (0.7680, 0.7192)},
    "QIKT": {"assist09": (0.7815, 0.7324), "assist12": (0.7623, 0.7462),
             "slepemapy": (0.7832, 0.8003), "eedi": (0.7803, 0.7260)},
    "RCKT-DKT": {"assist09": (0.7929, 0.7439), "assist12": (0.7746, 0.7545),
                 "slepemapy": (0.7879, 0.8036), "eedi": (0.7857, 0.7303)},
    "RCKT-SAKT": {"assist09": (0.7899, 0.7425), "assist12": (0.7728, 0.7559),
                  "slepemapy": (0.7844, 0.8041), "eedi": (0.7807, 0.7285)},
    "RCKT-AKT": {"assist09": (0.7947, 0.7449), "assist12": (0.7782, 0.7576),
                 "slepemapy": (0.7955, 0.8047), "eedi": (0.7868, 0.7311)},
}

# Table V: (encoder, variant) -> dataset -> (AUC, ACC)
TABLE5 = {
    ("dkt", "full"): {"assist09": (0.7929, 0.7439), "assist12": (0.7746, 0.7545),
                      "slepemapy": (0.7879, 0.8036), "eedi": (0.7857, 0.7303)},
    ("dkt", "-joint"): {"assist09": (0.7894, 0.7410), "assist12": (0.7723, 0.7539),
                        "slepemapy": (0.7857, 0.8014), "eedi": (0.7823, 0.7287)},
    ("dkt", "-mono"): {"assist09": (0.7812, 0.7311), "assist12": (0.7691, 0.7503),
                       "slepemapy": (0.7829, 0.7981), "eedi": (0.7790, 0.7259)},
    ("dkt", "-con"): {"assist09": (0.7901, 0.7421), "assist12": (0.7731, 0.7540),
                      "slepemapy": (0.7853, 0.8016), "eedi": (0.7835, 0.7291)},
    ("akt", "full"): {"assist09": (0.7947, 0.7449), "assist12": (0.7782, 0.7576),
                      "slepemapy": (0.7955, 0.8047), "eedi": (0.7868, 0.7311)},
    ("akt", "-joint"): {"assist09": (0.7909, 0.7413), "assist12": (0.7756, 0.7554),
                        "slepemapy": (0.7928, 0.8031), "eedi": (0.7834, 0.7292)},
    ("akt", "-mono"): {"assist09": (0.7850, 0.7359), "assist12": (0.7703, 0.7522),
                       "slepemapy": (0.7901, 0.7813), "eedi": (0.7801, 0.7275)},
    ("akt", "-con"): {"assist09": (0.7918, 0.7415), "assist12": (0.7752, 0.7558),
                      "slepemapy": (0.7930, 0.8033), "eedi": (0.7841, 0.7301)},
}

# Table VI (ASSIST09): variant -> {metric: value}
TABLE6 = {
    ("before", "RCKT-DKT"): {"auc": 0.7896, "acc": 0.7427, "time_ms": 214.61},
    ("before", "RCKT-AKT"): {"auc": 0.7913, "acc": 0.7434, "time_ms": 305.70},
    ("after", "RCKT-DKT"): {"auc": 0.7929, "acc": 0.7439, "time_ms": 10.63},
    ("after", "RCKT-AKT"): {"auc": 0.7947, "acc": 0.7449, "time_ms": 14.31},
}

# Fig. 4 sweep values (λ grid shown on the x-axis).
FIG4_LAMBDAS = (0.0, 0.01, 0.05, 0.1, 0.2, 0.3, 0.4)
