"""The paper's full evaluation protocol: 5-fold CV with significance.

Sec. V-A2: five-fold cross validation, 10% of each fold's training pool as
the validation set, early stopping with 10-epoch patience; Table IV marks
RCKT improvements with ``*`` when a paired t-test over folds gives
p <= 0.01 against the best baseline.

The single-split benches keep inside the CPU time budget; this module runs
the real protocol when the caller can afford k model fits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data import KTDataset, k_fold_splits
from repro.eval import paired_t_test
from repro.interpret import comparison_table

from .common import Budget, run_baseline, run_rckt


@dataclass
class CVResult:
    """Per-fold metrics for each evaluated model."""

    folds: int
    per_fold: Dict[str, List[Dict[str, float]]] = field(default_factory=dict)

    def mean(self, model: str, metric: str = "auc") -> float:
        return float(np.mean([m[metric] for m in self.per_fold[model]]))

    def std(self, model: str, metric: str = "auc") -> float:
        return float(np.std([m[metric] for m in self.per_fold[model]]))

    def significance(self, model_a: str, model_b: str,
                     metric: str = "auc") -> float:
        """p-value of the paired t-test that ``model_a`` beats ``model_b``."""
        a = [m[metric] for m in self.per_fold[model_a]]
        b = [m[metric] for m in self.per_fold[model_b]]
        _, p = paired_t_test(a, b)
        return p

    def render(self) -> str:
        rows = []
        for model in self.per_fold:
            rows.append([model, self.mean(model, "auc"), self.std(model, "auc"),
                         self.mean(model, "acc"), self.std(model, "acc")])
        rows.sort(key=lambda r: -r[1])
        return comparison_table(
            ["model", "AUC mean", "AUC std", "ACC mean", "ACC std"],
            rows, title=f"{self.folds}-fold cross validation")


def run_cross_validation(dataset: KTDataset, dataset_name: str,
                         models: Sequence[str], k: int = 5,
                         budget: Optional[Budget] = None,
                         seed: int = 0) -> CVResult:
    """Run k-fold CV over ``models`` (baseline names or ``RCKT-<enc>``).

    Every model sees the identical folds, so per-fold metrics are paired —
    the requirement for the t-test the paper reports.
    """
    budget = budget or Budget.from_env()
    result = CVResult(folds=k)
    folds = list(k_fold_splits(dataset, k=k, seed=seed))
    for model_name in models:
        metrics_per_fold: List[Dict[str, float]] = []
        for fold in folds:
            if model_name.startswith("RCKT-"):
                encoder = model_name.split("-", 1)[1].lower()
                metrics = run_rckt(dataset_name, encoder, fold, budget)
            else:
                metrics = run_baseline(model_name, fold, budget)
            metrics_per_fold.append(metrics)
        result.per_fold[model_name] = metrics_per_fold
    return result
