"""Shared experiment infrastructure: scaling knobs, dataset cache, model zoo.

The paper trains on 0.4M-10M-response corpora with d=128 on a GPU; this
pure-NumPy reproduction defaults to small scales so every bench finishes in
minutes on a CPU.  Two environment variables tune fidelity:

* ``REPRO_SCALE``   — multiplies dataset sizes (default 0.2).
* ``REPRO_EPOCHS``  — training epochs for every model (default 4).

The *structure* of each experiment (models, datasets, metrics, protocol)
never changes with scale; only sizes do.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core import RCKT, RCKTConfig, evaluate_rckt, fit_rckt, paper_config
from repro.data import Fold, KTDataset, make_dataset, train_test_split
from repro.models import (AKT, DIMKT, DKT, IKT, QIKT, SAKT, BKT, TrainConfig,
                          evaluate_probabilistic, evaluate_sequential,
                          fit_sequential)

DATASETS = ("assist09", "assist12", "slepemapy", "eedi")
BASELINES = ("DKT", "SAKT", "AKT", "DIMKT", "IKT", "QIKT")
RCKT_VARIANTS = ("RCKT-DKT", "RCKT-SAKT", "RCKT-AKT")


def env_scale(default: float = 0.25) -> float:
    return float(os.environ.get("REPRO_SCALE", default))


def env_epochs(default: int = 6) -> int:
    return int(os.environ.get("REPRO_EPOCHS", default))


@dataclass
class Budget:
    """Bench-scale training budget shared by all models in an experiment."""

    dim: int = 16
    epochs: int = 6
    batch_size: int = 32
    lr: float = 2e-3
    eval_stride: int = 2      # RCKT evaluation target subsampling
    seed: int = 0

    @classmethod
    def from_env(cls, **overrides) -> "Budget":
        values = dict(epochs=env_epochs())
        values.update(overrides)
        return cls(**values)


_dataset_cache: Dict[Tuple[str, float, int], KTDataset] = {}


def cached_dataset(name: str, scale: Optional[float] = None,
                   seed: int = 0) -> KTDataset:
    """Memoized dataset construction (profiles are deterministic)."""
    scale = env_scale() if scale is None else scale
    key = (name, scale, seed)
    if key not in _dataset_cache:
        _dataset_cache[key] = make_dataset(name, scale=scale, seed=seed)
    return _dataset_cache[key]


def single_fold(dataset: KTDataset, seed: int = 0) -> Fold:
    return train_test_split(dataset, test_fraction=0.2,
                            validation_fraction=0.1, seed=seed)


# ---------------------------------------------------------------------------
# Model zoo
# ---------------------------------------------------------------------------
def run_baseline(name: str, fold: Fold, budget: Budget) -> Dict[str, float]:
    """Train + evaluate one baseline; returns {'auc', 'acc'}."""
    from repro.utils import derive_rng
    dataset = fold.train
    num_q, num_c = dataset.num_questions, dataset.num_concepts
    rng = derive_rng(budget.seed, "baseline", name)
    train_config = TrainConfig(epochs=budget.epochs,
                               batch_size=budget.batch_size, lr=budget.lr,
                               seed=budget.seed)
    if name == "IKT":
        return evaluate_probabilistic(IKT().fit(fold.train), fold.test)
    if name == "BKT":
        return evaluate_probabilistic(BKT().fit(fold.train), fold.test)
    if name == "DKT":
        model = DKT(num_q, num_c, budget.dim, rng)
    elif name == "SAKT":
        model = SAKT(num_q, num_c, budget.dim, rng)
    elif name == "AKT":
        model = AKT(num_q, num_c, budget.dim, rng)
    elif name == "DIMKT":
        model = DIMKT.from_dataset(fold.train, num_q, num_c, budget.dim, rng)
    elif name == "QIKT":
        model = QIKT(num_q, num_c, budget.dim, rng)
    else:
        raise KeyError(f"unknown baseline '{name}'")
    fit_sequential(model, fold.train, fold.validation, train_config)
    return evaluate_sequential(model, fold.test)


def rckt_config_for(dataset_name: str, encoder: str, budget: Budget,
                    **ablation_flags) -> RCKTConfig:
    """Table III hyper-parameters shrunk to the bench budget."""
    return paper_config(
        dataset_name, encoder,
        dim=budget.dim,
        epochs=budget.epochs,
        batch_size=budget.batch_size,
        seed=budget.seed,
        targets_per_sequence=2,
        # Bench scale: paper layer counts (2-3) are kept in Table III but
        # shrunk here for CPU budget.
        layers=1,
        dropout=0.0,
        **ablation_flags,
    )


def run_rckt(dataset_name: str, encoder: str, fold: Fold, budget: Budget,
             **ablation_flags) -> Dict[str, float]:
    """Train + evaluate one RCKT variant; returns {'auc', 'acc'}."""
    config = rckt_config_for(dataset_name, encoder, budget, **ablation_flags)
    model = RCKT(fold.train.num_questions, fold.train.num_concepts, config)
    fit_rckt(model, fold.train, fold.validation,
             eval_stride=max(budget.eval_stride, 3))
    return evaluate_rckt(model, fold.test, batch_size=budget.batch_size,
                         stride=budget.eval_stride)
