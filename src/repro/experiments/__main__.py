"""Command-line runner: regenerate any paper table/figure from a shell.

Usage::

    python -m repro.experiments table2
    python -m repro.experiments table4 --models DKT RCKT-DKT --datasets assist09
    python -m repro.experiments table5
    python -m repro.experiments table6
    python -m repro.experiments fig4
    python -m repro.experiments fig5
    python -m repro.experiments fig6
    python -m repro.experiments cv --datasets assist09 --models DKT RCKT-DKT

Scale with ``REPRO_SCALE`` / ``REPRO_EPOCHS`` environment variables or the
``--epochs`` flag.
"""

from __future__ import annotations

import argparse
import sys

from . import (Budget, cached_dataset, run_ablation, run_approximation,
               run_case_study, run_cross_validation, run_lambda_sweep,
               run_overall, run_proficiency_figure, run_table2)

EXPERIMENTS = ("table2", "table4", "table5", "table6",
               "fig4", "fig5", "fig6", "cv")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the RCKT paper's tables and figures.")
    parser.add_argument("experiment", choices=EXPERIMENTS)
    parser.add_argument("--models", nargs="*", default=None,
                        help="subset of models (table4 / cv)")
    parser.add_argument("--datasets", nargs="*", default=None,
                        help="subset of dataset profiles")
    parser.add_argument("--epochs", type=int, default=None,
                        help="training epochs (overrides REPRO_EPOCHS)")
    parser.add_argument("--folds", type=int, default=3,
                        help="folds for the cv experiment")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    budget = Budget.from_env() if args.epochs is None \
        else Budget.from_env(epochs=args.epochs)

    if args.experiment == "table2":
        print(run_table2(datasets=args.datasets).render())
    elif args.experiment == "table4":
        print(run_overall(models=args.models, datasets=args.datasets,
                          budget=budget).render())
    elif args.experiment == "table5":
        print(run_ablation(datasets=tuple(args.datasets or ("assist09",)),
                           budget=budget).render())
    elif args.experiment == "table6":
        result = run_approximation(encoders=("dkt", "akt"), budget=budget)
        print(result.render())
    elif args.experiment == "fig4":
        print(run_lambda_sweep(datasets=tuple(args.datasets or ("assist09",)),
                               budget=budget).render())
    elif args.experiment == "fig5":
        print(run_proficiency_figure(budget=budget).render())
    elif args.experiment == "fig6":
        print(run_case_study(budget=budget).render())
    elif args.experiment == "cv":
        datasets = args.datasets or ["assist09"]
        models = args.models or ["DKT", "RCKT-DKT"]
        for name in datasets:
            dataset = cached_dataset(name)
            result = run_cross_validation(dataset, name, models,
                                          k=args.folds, budget=budget)
            print(result.render())
            if len(models) >= 2:
                p = result.significance(models[-1], models[0])
                print(f"paired t-test {models[-1]} vs {models[0]}: "
                      f"p = {p:.4f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
