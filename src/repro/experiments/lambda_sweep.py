"""Experiment E4 — Fig. 4: effect of the loss balancer λ.

Sweeps λ over the paper's grid {0, 0.01, 0.05, 0.1, 0.2, 0.3, 0.4} for
RCKT-DKT and RCKT-AKT on the two ASSIST profiles and reports AUC/ACC per
point.  The paper's finding: performance peaks for λ in [0.01, 0.1] — some
joint-training regularization helps, too much drowns the counterfactual
objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.core import RCKT, evaluate_rckt, fit_rckt
from repro.interpret import line_chart

from .common import Budget, cached_dataset, rckt_config_for, single_fold
from .paper_numbers import FIG4_LAMBDAS


@dataclass
class LambdaSweepResult:
    """(encoder, dataset) -> {lambda: {'auc', 'acc'}}."""

    curves: Dict[Tuple[str, str], Dict[float, Dict[str, float]]] = \
        field(default_factory=dict)
    lambdas: Sequence[float] = FIG4_LAMBDAS

    def best_lambda(self, encoder: str, dataset: str,
                    metric: str = "auc") -> float:
        curve = self.curves[(encoder, dataset)]
        return max(curve, key=lambda lam: curve[lam][metric])

    def render(self) -> str:
        blocks = []
        for (encoder, dataset), curve in self.curves.items():
            series = {f"{encoder}-AUC": [curve[lam]["auc"] for lam in self.lambdas],
                      f"{encoder}-ACC": [curve[lam]["acc"] for lam in self.lambdas]}
            labels = [str(lam) for lam in self.lambdas]
            blocks.append(line_chart(
                series, x_labels=labels, height=8,
                title=f"Fig. 4 — λ sweep on {dataset} ({encoder})"))
        return "\n\n".join(blocks)


def run_lambda_sweep(encoders: Sequence[str] = ("dkt",),
                     datasets: Sequence[str] = ("assist09",),
                     lambdas: Optional[Sequence[float]] = None,
                     budget: Optional[Budget] = None,
                     seed: int = 0) -> LambdaSweepResult:
    """Run the Fig. 4 sweep (defaults shrunk for bench time)."""
    budget = budget or Budget.from_env()
    lambdas = tuple(lambdas if lambdas is not None else FIG4_LAMBDAS)
    result = LambdaSweepResult(curves={}, lambdas=lambdas)
    for encoder in encoders:
        for dataset_name in datasets:
            dataset = cached_dataset(dataset_name, seed=seed)
            fold = single_fold(dataset, seed=seed)
            curve: Dict[float, Dict[str, float]] = {}
            for lam in lambdas:
                config = rckt_config_for(dataset_name, encoder, budget,
                                         use_joint=lam > 0)
                config = config.with_overrides(lambda_balance=lam)
                model = RCKT(dataset.num_questions, dataset.num_concepts,
                             config)
                fit_rckt(model, fold.train, fold.validation,
                         eval_stride=max(budget.eval_stride, 3))
                curve[lam] = evaluate_rckt(model, fold.test,
                                           stride=budget.eval_stride)
            result.curves[(encoder, dataset_name)] = curve
    return result
