"""Experiments E5/E6 — Fig. 5 proficiency tracking and Fig. 6 case study.

Both figures are qualitative artifacts; here each becomes a deterministic
callable that trains a small RCKT (and SAKT+ for Fig. 6), selects a
suitable student, and renders the paper's visualization in ASCII.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core import RCKT, fit_rckt
from repro.data import StudentSequence
from repro.interpret import (CaseStudy, ProficiencyTrace, build_case_study,
                             influence_bars, line_chart,
                             trace_all_concepts)
from repro.models import SAKTPlus, TrainConfig, fit_sequential

from .common import Budget, cached_dataset, rckt_config_for, single_fold


@dataclass
class ProficiencyFigure:
    """Fig. 5 data: per-concept proficiency curves + final influences."""

    student: StudentSequence
    traces: Dict[int, ProficiencyTrace]

    def render(self) -> str:
        series = {f"concept {cid}": trace.proficiencies
                  for cid, trace in self.traces.items()}
        chart = line_chart(series, height=8,
                           title="Fig. 5 — proficiency after each response")
        bars = []
        correctness = [i.correct for i in self.student]
        for cid, trace in self.traces.items():
            count = len(trace.final_influences)
            bars.append(influence_bars(
                trace.final_influences, correctness[:count],
                title=f"\nresponse influences on concept {cid} proficiency"))
        return chart + "\n" + "\n".join(bars)


def run_proficiency_figure(dataset_name: str = "assist12",
                           budget: Optional[Budget] = None,
                           max_steps: int = 18,
                           num_concepts: int = 3,
                           seed: int = 0) -> ProficiencyFigure:
    """Train a small RCKT-DKT and trace one student's concepts (Fig. 5).

    Picks the test student with the most concept variety in the window and
    that student's ``num_concepts`` most practiced concepts (the paper
    plots three arithmetic concepts over 18 questions).
    """
    budget = budget or Budget.from_env()
    dataset = cached_dataset(dataset_name, seed=seed)
    fold = single_fold(dataset, seed=seed)
    config = rckt_config_for(dataset_name, "dkt", budget)
    model = RCKT(dataset.num_questions, dataset.num_concepts, config)
    fit_rckt(model, fold.train, eval_stride=3)

    student = max(fold.test, key=lambda s: len(s))
    window = student[:max_steps]
    counts: Dict[int, int] = {}
    for interaction in window:
        for cid in interaction.concept_ids:
            counts[cid] = counts.get(cid, 0) + 1
    top = sorted(counts, key=counts.get, reverse=True)[:num_concepts]
    traces = trace_all_concepts(model, dataset, window, top)
    return ProficiencyFigure(student=window, traces=traces)


@dataclass
class CaseStudyFigure:
    case: CaseStudy

    def render(self) -> str:
        return self.case.render()

    @property
    def influence_attention_correlation(self) -> float:
        """Spearman-style sanity value comparing the two rankings."""
        from scipy.stats import spearmanr
        inf = [row.influence for row in self.case.rows]
        att = [row.attention for row in self.case.rows]
        if len(inf) < 3:
            return float("nan")
        rho = spearmanr(inf, att).statistic
        return float(rho) if rho is not None else float("nan")


def run_case_study(dataset_name: str = "eedi",
                   budget: Optional[Budget] = None,
                   history_length: int = 9,
                   seed: int = 0) -> CaseStudyFigure:
    """Train RCKT-AKT and SAKT+ and build the Fig. 6 comparison.

    The paper uses an Eedi student with 9 historical responses; we pick the
    first test sequence long enough to provide that history.
    """
    budget = budget or Budget.from_env()
    dataset = cached_dataset(dataset_name, seed=seed)
    fold = single_fold(dataset, seed=seed)

    config = rckt_config_for(dataset_name, "akt", budget)
    rckt = RCKT(dataset.num_questions, dataset.num_concepts, config)
    fit_rckt(rckt, fold.train, eval_stride=3)

    sakt_plus = SAKTPlus(dataset.num_questions, dataset.num_concepts,
                         budget.dim, np.random.default_rng(seed + 17))
    fit_sequential(sakt_plus, fold.train, fold.validation,
                   TrainConfig(epochs=budget.epochs, lr=budget.lr,
                               batch_size=budget.batch_size, seed=seed))

    student = next(s for s in fold.test if len(s) >= history_length + 1)
    window = student[:history_length + 1]
    case = build_case_study(rckt, sakt_plus, window)
    return CaseStudyFigure(case=case)
