"""Experiment E7 — Table VI: the response influence approximation.

Compares RCKT inference *before* the approximation (one counterfactual
sequence per past response, Eq. 4-11 — cost grows with history length)
against *after* (two counterfactual sequences total, Eq. 19-22).  The paper
reports a ~20x speedup with slightly better accuracy; the reproduction
target is the same ordering: a large speedup at comparable AUC/ACC.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core import RCKT, fit_rckt
from repro.data import collate
from repro.eval import accuracy_score, auc_score
from repro.interpret import comparison_table

from .common import Budget, cached_dataset, rckt_config_for, single_fold
from .paper_numbers import TABLE6


@dataclass
class ApproximationResult:
    """encoder -> {'before'|'after' -> {'auc','acc','time_ms'}}."""

    metrics: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)

    def speedup(self, encoder: str) -> float:
        entry = self.metrics[encoder]
        return entry["before"]["time_ms"] / max(entry["after"]["time_ms"], 1e-9)

    def render(self) -> str:
        rows = []
        for encoder, modes in self.metrics.items():
            for mode, metrics in modes.items():
                paper = TABLE6.get((mode, f"RCKT-{encoder.upper()}"), {})
                rows.append([
                    f"RCKT-{encoder.upper()}", mode,
                    metrics["auc"], metrics["acc"], metrics["time_ms"],
                    paper.get("time_ms", float("nan")),
                ])
        return comparison_table(
            ["model", "mode", "AUC", "ACC", "time/ms", "paper time/ms"],
            rows, title="Table VI — influence approximation analysis")


def run_approximation(encoders: Sequence[str] = ("dkt",),
                      dataset_name: str = "assist09",
                      budget: Optional[Budget] = None,
                      max_eval_sequences: int = 24,
                      seed: int = 0) -> ApproximationResult:
    """Train once per encoder, evaluate with both inference paths.

    Per-sequence timing is averaged over the (last-position) target of each
    test sequence, matching Table VI's "average inference time ... across
    all students in the test set".
    """
    budget = budget or Budget.from_env()
    dataset = cached_dataset(dataset_name, seed=seed)
    fold = single_fold(dataset, seed=seed)
    result = ApproximationResult()

    for encoder in encoders:
        config = rckt_config_for(dataset_name, encoder, budget)
        model = RCKT(dataset.num_questions, dataset.num_concepts, config)
        fit_rckt(model, fold.train, fold.validation,
                 eval_stride=max(budget.eval_stride, 3))

        sequences = [s for s in fold.test if len(s) >= 2][:max_eval_sequences]

        # --- after: approximated (two counterfactual sequences) -----------
        after_labels, after_scores = [], []
        start = time.perf_counter()
        for sequence in sequences:
            batch = collate([sequence])
            cols = np.array([len(sequence) - 1])
            after_scores.append(float(model.predict_scores(batch, cols)[0]))
            after_labels.append(sequence[len(sequence) - 1].correct)
        after_ms = (time.perf_counter() - start) * 1000.0 / len(sequences)

        # --- before: exact forward influences (t counterfactuals) ---------
        before_labels, before_scores = [], []
        start = time.perf_counter()
        for sequence in sequences:
            exact = model.exact_influences(sequence)
            before_scores.append(exact.score)
            before_labels.append(sequence[len(sequence) - 1].correct)
        before_ms = (time.perf_counter() - start) * 1000.0 / len(sequences)

        result.metrics[encoder] = {
            "before": {"auc": _safe_auc(before_labels, before_scores),
                       "acc": accuracy_score(before_labels, before_scores),
                       "time_ms": before_ms},
            "after": {"auc": _safe_auc(after_labels, after_scores),
                      "acc": accuracy_score(after_labels, after_scores),
                      "time_ms": after_ms},
        }
    return result


def _safe_auc(labels, scores) -> float:
    try:
        return auc_score(labels, scores)
    except ValueError:
        return float("nan")
