"""Experiment E2 — Table IV: overall performance of RCKT vs. six baselines.

Runs every model on every requested dataset profile and reports measured
AUC/ACC next to the paper's published numbers.  The reproduction target is
the *shape*: RCKT variants should sit at or above the strongest baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.interpret import comparison_table

from .common import (BASELINES, DATASETS, RCKT_VARIANTS, Budget,
                     cached_dataset, run_baseline, run_rckt, single_fold)
from .paper_numbers import TABLE4


@dataclass
class OverallResult:
    """Measured metric grid: model -> dataset -> {'auc', 'acc'}."""

    metrics: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)
    datasets: Sequence[str] = DATASETS

    def best_baseline(self, dataset: str, metric: str = "auc") -> float:
        return max(self.metrics[m][dataset][metric]
                   for m in self.metrics if not m.startswith("RCKT"))

    def best_rckt(self, dataset: str, metric: str = "auc") -> float:
        return max(self.metrics[m][dataset][metric]
                   for m in self.metrics if m.startswith("RCKT"))

    def render(self) -> str:
        headers = ["model"]
        for ds in self.datasets:
            headers += [f"{ds} AUC", f"{ds} ACC", "(paper AUC)"]
        rows = []
        for model in self.metrics:
            row: List[object] = [model]
            for ds in self.datasets:
                measured = self.metrics[model][ds]
                paper = TABLE4.get(model, {}).get(ds, (float("nan"),) * 2)
                row += [measured["auc"], measured["acc"], f"{paper[0]:.4f}"]
            rows.append(row)
        return comparison_table(headers, rows,
                                title="Table IV — overall performance "
                                      "(measured vs paper)")


def run_overall(models: Optional[Sequence[str]] = None,
                datasets: Optional[Sequence[str]] = None,
                budget: Optional[Budget] = None,
                seed: int = 0) -> OverallResult:
    """Run the Table IV grid.

    ``models`` defaults to all six baselines plus the three RCKT variants;
    pass a subset for quicker runs.
    """
    budget = budget or Budget.from_env()
    models = list(models or list(BASELINES) + list(RCKT_VARIANTS))
    datasets = list(datasets or DATASETS)
    result = OverallResult(metrics={}, datasets=datasets)
    for model_name in models:
        result.metrics[model_name] = {}
        for dataset_name in datasets:
            dataset = cached_dataset(dataset_name, seed=seed)
            fold = single_fold(dataset, seed=seed)
            if model_name.startswith("RCKT-"):
                encoder = model_name.split("-", 1)[1].lower()
                metrics = run_rckt(dataset_name, encoder, fold, budget)
            else:
                metrics = run_baseline(model_name, fold, budget)
            result.metrics[model_name][dataset_name] = metrics
    return result
