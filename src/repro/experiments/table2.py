"""Experiment E1 — Table II: statistics of the four dataset profiles."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.data import DatasetStats, PAPER_TABLE2, compute_stats
from repro.interpret import comparison_table

from .common import DATASETS, cached_dataset


@dataclass
class Table2Result:
    stats: Dict[str, DatasetStats] = field(default_factory=dict)

    def render(self) -> str:
        rows = []
        for name, stat in self.stats.items():
            paper = PAPER_TABLE2[name]
            rows.append([
                name, stat.num_responses, stat.num_sequences,
                stat.num_questions, stat.num_concepts,
                stat.concepts_per_question, stat.correct_rate,
                paper["concepts_per_question"], paper["correct_rate"],
            ])
        return comparison_table(
            ["dataset", "#resp", "#seq", "#ques", "#conc", "conc/q",
             "%corr", "paper conc/q", "paper %corr"],
            rows,
            title="Table II — dataset statistics (synthetic profiles; "
                  "sizes scaled, shapes matched)")


def run_table2(datasets: Optional[Sequence[str]] = None,
               seed: int = 0) -> Table2Result:
    result = Table2Result()
    for name in datasets or DATASETS:
        result.stats[name] = compute_stats(cached_dataset(name, seed=seed))
    return result
