"""Experiment E3 — Table V: ablation of RCKT's components.

Three switches, each mapped to a row of Table V (Sec. V-C):

* ``-joint`` — no joint training with the probability generator (λ = 0).
* ``-mono``  — no monotonicity-based retention: counterfactual sequences
  keep all non-intervened responses factual.
* ``-con``   — no non-negativity constraint on individual influences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.interpret import comparison_table

from .common import Budget, cached_dataset, run_rckt, single_fold
from .paper_numbers import TABLE5

ABLATIONS = {
    "full": {},
    "-joint": {"use_joint": False},
    "-mono": {"use_monotonicity": False},
    "-con": {"use_constraint": False},
}


@dataclass
class AblationResult:
    """variant -> (encoder, dataset) -> {'auc', 'acc'}."""

    metrics: Dict[str, Dict[tuple, Dict[str, float]]] = field(default_factory=dict)

    def degradation(self, variant: str, encoder: str, dataset: str,
                    metric: str = "auc") -> float:
        """full minus ablated — positive means the component helps."""
        full = self.metrics["full"][(encoder, dataset)][metric]
        ablated = self.metrics[variant][(encoder, dataset)][metric]
        return full - ablated

    def render(self) -> str:
        keys = sorted({key for variant in self.metrics.values()
                       for key in variant})
        headers = ["variant"] + [f"{e}/{d} AUC" for e, d in keys] + ["paper Δ(assist09)"]
        rows = []
        for variant, cells in self.metrics.items():
            row = [variant]
            for key in keys:
                row.append(cells[key]["auc"])
            paper_delta = _paper_delta(variant, keys)
            row.append(paper_delta)
            rows.append(row)
        return comparison_table(headers, rows,
                                title="Table V — ablation study "
                                      "(measured AUC; paper full-minus-variant)")


def _paper_delta(variant: str, keys) -> str:
    if variant == "full" or not keys:
        return "-"
    encoder = keys[0][0]
    full = TABLE5.get((encoder, "full"), {}).get("assist09")
    ablated = TABLE5.get((encoder, variant), {}).get("assist09")
    if not (full and ablated):
        return "-"
    return f"{full[0] - ablated[0]:+.4f}"


def run_ablation(encoders: Sequence[str] = ("dkt", "akt"),
                 datasets: Sequence[str] = ("assist09",),
                 variants: Optional[Sequence[str]] = None,
                 budget: Optional[Budget] = None,
                 seed: int = 0) -> AblationResult:
    """Run the Table V grid (defaults: the paper's two best encoders)."""
    budget = budget or Budget.from_env()
    variants = list(variants or ABLATIONS)
    result = AblationResult()
    for variant in variants:
        flags = ABLATIONS[variant]
        result.metrics[variant] = {}
        for encoder in encoders:
            for dataset_name in datasets:
                dataset = cached_dataset(dataset_name, seed=seed)
                fold = single_fold(dataset, seed=seed)
                metrics = run_rckt(dataset_name, encoder, fold, budget, **flags)
                result.metrics[variant][(encoder, dataset_name)] = metrics
    return result
