"""repro — reproduction of RCKT (ICDE 2024).

RCKT: *Interpretable Knowledge Tracing via Response Influence-based
Counterfactual Reasoning* (Cui et al.).

Subpackages
-----------
``repro.tensor`` / ``repro.nn`` / ``repro.optim``
    From-scratch NumPy deep-learning substrate (autodiff, layers, Adam).
``repro.data``
    Sequence preprocessing, 5-fold CV, and the IRT-based student simulator
    standing in for the ASSIST09/ASSIST12/Slepemapy/Eedi corpora.
``repro.models``
    Baselines: DKT, SAKT(+), AKT, DIMKT, IKT, QIKT, BKT.
``repro.core``
    The paper's contribution: counterfactual sequence construction,
    bidirectional encoders, response-influence reasoning and joint training.
``repro.eval`` / ``repro.interpret`` / ``repro.experiments``
    Metrics and CV harness, explanation tooling, and one callable per paper
    table/figure.
"""

__version__ = "1.0.0"

__all__ = ["tensor", "nn", "optim", "data", "models", "core", "eval",
           "interpret", "experiments", "utils"]
