"""CLI: boot a sharded serving cluster (supervisor + workers + router).

Usage::

    python -m repro.cluster --checkpoint rckt.npz --shards 4
    python -m repro.cluster --checkpoint rckt.npz --shards 4 \\
        --journal-dir /var/lib/rckt/journal --fsync batch
    python -m repro.cluster --checkpoint prod=a.npz --checkpoint \\
        canary=b.npz --shards 2 --port 8080 --workers 2 --window 256
    python -m repro.cluster --selfcheck [--journal-dir DIR]

Boots ``--shards`` worker processes (each the full single-process
serving gateway on its own ephemeral port), waits until every one is
healthy, then serves the scatter-gather router on ``--port`` — the
cluster's single public endpoint, wire-compatible with
``python -m repro.serve``.

``--journal-dir`` makes the record journal **durable**: acknowledged
records append to per-shard CRC-framed segment files (fsync policy via
``--fsync``; periodic snapshot + truncation via ``--snapshot-every``),
and a cluster booted over an existing journal directory **recovers on
boot** — every shard's snapshot + tail is replayed into its fresh
worker before the router starts serving, so acknowledged records
survive not just worker crashes but router/process death and full
cold restarts.  Without the flag the journal is in-memory, as before.

``--selfcheck`` runs the CI smoke lane: a throwaway 2-shard cluster on
synthetic checkpoints proving (1) mixed batch envelopes answer
bit-identically to a single in-process ``Service``, (2) a killed
worker is restarted with its journal replayed and answers identically
afterwards, and (3) a warm blue/green rollout applies cluster-wide and
crash recovery restores the rolled-out weights.  With ``--journal-dir``
it additionally proves (4) a **full cold boot** — every process gone,
a torn byte tail appended to a live segment — recovers from disk alone
and still answers bit-identically (the CI durability lane).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from repro.serve.__main__ import _parse_checkpoint
from repro.serve.protocol import DEFAULT_MODEL, is_error, to_wire

from .journal import DEFAULT_SEGMENT_BYTES, RecordJournal
from .ring import DEFAULT_REPLICAS
from .router import ScatterGatherRouter, serve_router
from .supervisor import Supervisor, WorkerSpec, free_port
from .wal import FSYNC_POLICIES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="Sharded multi-process serving cluster over the "
                    "typed RCKT API")
    parser.add_argument("--checkpoint", action="append",
                        type=_parse_checkpoint, metavar="[NAME=]PATH",
                        help="checkpoint every worker registers "
                             "(repeatable); bare PATH registers as "
                             f"'{DEFAULT_MODEL}'")
    parser.add_argument("--shards", type=int, default=2,
                        help="worker process count (default 2)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="router port (0 picks an ephemeral port); "
                             "workers always use ephemeral ports")
    parser.add_argument("--replicas", type=int, default=DEFAULT_REPLICAS,
                        help="consistent-hash ring points per shard")
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--workers", type=int, default=1,
                        help="scoring threads per worker process")
    parser.add_argument("--window", type=int, default=None)
    parser.add_argument("--window-hop", type=int, default=None)
    parser.add_argument("--stream-cache-bytes", type=int, default=None)
    parser.add_argument("--poll-interval", type=float, default=0.5,
                        help="watchdog probe cadence in seconds")
    parser.add_argument("--journal-dir", default=None,
                        help="directory for the durable record journal "
                             "(per-shard segment files + snapshots); an "
                             "existing journal is recovered and replayed "
                             "into the fresh workers on boot.  Default: "
                             "in-memory journal (no durability)")
    parser.add_argument("--fsync", choices=FSYNC_POLICIES,
                        default="batch",
                        help="journal fsync policy: 'record' = fsync "
                             "per acknowledged record, 'batch' = fsync "
                             "once per routed sub-envelope (default), "
                             "'off' = let the OS decide")
    parser.add_argument("--snapshot-every", type=int, default=4096,
                        help="auto-snapshot + truncate a shard's journal "
                             "every N tail records (0 disables; default "
                             "4096)")
    parser.add_argument("--segment-bytes", type=int,
                        default=DEFAULT_SEGMENT_BYTES,
                        help="roll journal segment files at this size")
    parser.add_argument("--log-dir", default=None,
                        help="directory for per-worker logs (default: "
                             "worker output is discarded)")
    parser.add_argument("--verbose", action="store_true")
    parser.add_argument("--selfcheck", action="store_true",
                        help="boot a throwaway 2-shard cluster on "
                             "synthetic checkpoints, prove router/single"
                             "-service bit-identity across a worker "
                             "crash and a warm rollout, exit 0")
    return parser


def _engine_flags(args) -> List[str]:
    flags = ["--max-batch", str(args.max_batch),
             "--workers", str(args.workers)]
    if args.window is not None:
        flags += ["--window", str(args.window)]
    if args.window_hop is not None:
        flags += ["--window-hop", str(args.window_hop)]
    if args.stream_cache_bytes is not None:
        flags += ["--stream-cache-bytes", str(args.stream_cache_bytes)]
    if args.verbose:
        flags += ["--verbose"]
    return flags


def build_journal(args) -> RecordJournal:
    """The cluster's journal per the parsed args — durable (recovering
    any prior state from ``--journal-dir``) or in-memory, with the ring
    parameters the shard keying depends on pinned in the directory."""
    snapshot_every = getattr(args, "snapshot_every", 0) or None
    journal = RecordJournal(
        directory=getattr(args, "journal_dir", None),
        fsync=getattr(args, "fsync", "batch"),
        segment_max_bytes=getattr(args, "segment_bytes",
                                  DEFAULT_SEGMENT_BYTES),
        snapshot_every=snapshot_every)
    journal.bind_meta({"shards": args.shards,
                       "replicas": args.replicas})
    return journal


def build_cluster(args, checkpoints):
    """(journal, supervisor, router) for the given parsed args —
    workers spawned and healthy, any durable journal recovered from
    ``--journal-dir`` and replayed into them (cold boot), router
    attached, watchdog not yet started (the caller decides)."""
    specs = [
        WorkerSpec(shard_id=shard, port=free_port(args.host),
                   checkpoints=[(name, str(path))
                                for name, path in checkpoints],
                   host=args.host, extra_args=tuple(_engine_flags(args)),
                   log_path=(f"{args.log_dir}/worker{shard}.log"
                             if args.log_dir else None))
        for shard in range(args.shards)
    ]
    journal = build_journal(args)
    stray = [shard for shard in journal.shards()
             if shard >= args.shards]
    if stray:
        raise ValueError(
            f"journal directory {journal.directory} holds records for "
            f"shards {stray} but the cluster boots only "
            f"{args.shards} shards")
    supervisor = Supervisor(specs, journal=journal,
                            poll_interval=args.poll_interval)
    supervisor.start()
    if journal.total():
        replayed = supervisor.replay_all()
        print(f"cold boot: replayed {replayed} journaled records into "
              f"{args.shards} shards from {journal.directory}")
    router = ScatterGatherRouter([spec.base_url for spec in specs],
                                 journal=journal, replicas=args.replicas)
    supervisor.attach_router(router)
    return journal, supervisor, router


# ---------------------------------------------------------------------------
# Selfcheck (the CI cluster-smoke lane)
# ---------------------------------------------------------------------------
def _selfcheck_queries(students):
    from repro.serve import (CandidateQuestion, ExplainQuery, HistoryEdit,
                             RecommendQuery, RecourseQuery, ScoreQuery,
                             WhatIfQuery)
    queries = []
    for index, student in enumerate(students):
        question = 1 + (3 * index) % 20
        queries.append(ScoreQuery(student, question, (1 + index % 5,)))
        queries.append(ExplainQuery(student))
        queries.append(WhatIfQuery(student, question, (1 + index % 5,),
                                   (HistoryEdit(0, "flip"),)))
        queries.append(RecommendQuery(
            student, (CandidateQuestion(question, (1,)),
                      CandidateQuestion(1 + (question + 4) % 20, (2,))),
            top_k=2, horizon=2))
        queries.append(RecourseQuery(
            student, question, (1 + index % 5,), threshold=0.95,
            max_edits=2, beam_width=2,
            candidates=(CandidateQuestion(question, (1,)),
                        CandidateQuestion(1 + (question + 4) % 20, (2,)))))
    return queries


def _compare(label: str, cluster_replies, local_replies) -> int:
    mismatches = 0
    for position, (ours, reference) in enumerate(zip(cluster_replies,
                                                     local_replies)):
        if to_wire(ours) != to_wire(reference):
            mismatches += 1
            print(f"selfcheck: {label}[{position}] mismatch:\n"
                  f"  cluster: {to_wire(ours)}\n"
                  f"  local:   {to_wire(reference)}")
    print(f"selfcheck: {label}: {len(cluster_replies)} replies, "
          f"{mismatches} mismatches")
    return mismatches


def _selfcheck(args) -> int:
    import numpy as np
    from repro.core import RCKT, RCKTConfig
    from repro.serve import InferenceEngine, RecordEvent, Service

    rng = np.random.default_rng(5)
    with tempfile.TemporaryDirectory(prefix="rckt-cluster-") as tmp:
        blue = Path(tmp) / "blue.npz"
        green = Path(tmp) / "green.npz"
        InferenceEngine(RCKT(20, 5, RCKTConfig(
            encoder="dkt", dim=8, layers=1, seed=0))).save(blue)
        InferenceEngine(RCKT(20, 5, RCKTConfig(
            encoder="dkt", dim=8, layers=1, seed=9))).save(green)

        args.shards = 2
        args.log_dir = tmp
        _, supervisor, router = build_cluster(args, [(DEFAULT_MODEL,
                                                      blue)])
        local = Service.from_checkpoint(blue)
        failures = 0
        try:
            students = [f"student-{k}" for k in range(8)]
            records = [RecordEvent(student,
                                   int(rng.integers(1, 21)),
                                   int(rng.integers(0, 2)),
                                   (int(rng.integers(1, 6)),))
                       for _ in range(4) for student in students]
            failures += _compare("records",
                                 router.execute_batch(records),
                                 local.execute_batch(records))
            mixed = _selfcheck_queries(students)
            failures += _compare("mixed envelope",
                                 router.execute_batch(mixed),
                                 local.execute_batch(mixed))

            supported = router.health().get("capabilities",
                                            {}).get("query_types", [])
            if "recourse" not in supported:
                print(f"selfcheck: router capabilities missing "
                      f"recourse: {supported}")
                failures += 1

            # The same envelope through the router's public HTTP face.
            from repro.serve import ServiceClient
            from .router import start_router_thread
            server, _ = start_router_thread(router, host=args.host)
            try:
                client = ServiceClient(
                    f"http://{args.host}:{server.server_port}")
                failures += _compare("wire envelope",
                                     client.batch(mixed),
                                     local.execute_batch(mixed))
                # Trace propagation: the envelope ID the router minted
                # for that batch must appear in the router's own span
                # log *and* in at least one worker's (the router→worker
                # hop carries it via protocol v2's request_id field).
                router_spans = client.metrics().get("spans", [])
                batch_ids = [span["request_id"] for span in router_spans
                             if span["name"] == "router.batch"
                             and span["request_id"]]
                if not batch_ids:
                    print(f"selfcheck: router span log has no "
                          f"router.batch span: {router_spans}")
                    failures += 1
                else:
                    rid = batch_ids[-1]
                    fanned = {span["name"] for span in router_spans
                              if span["request_id"] == rid}
                    worker_hits = 0
                    for shard_client in router.clients:
                        worker_spans = shard_client.metrics() \
                            .get("spans", [])
                        worker_hits += sum(
                            1 for span in worker_spans
                            if span["request_id"] == rid
                            and span["name"] == "worker.batch")
                    if len(fanned) < 2 or worker_hits == 0:
                        print(f"selfcheck: request id {rid} did not "
                              f"propagate (router stages {fanned}, "
                              f"worker.batch hits {worker_hits})")
                        failures += 1
                    else:
                        print(f"selfcheck: request id {rid} traced "
                              f"across {len(fanned)} router stages and "
                              f"{worker_hits} worker span(s)")
                client.close()
            finally:
                server.shutdown()

            print("selfcheck: killing worker 0 ...")
            supervisor.workers[0].process.kill()
            supervisor.workers[0].process.wait()
            supervisor.check_once()   # watchdog round: restart + replay
            assert supervisor.workers[0].restarts == 1
            failures += _compare("post-restart envelope",
                                 router.execute_batch(mixed),
                                 local.execute_batch(mixed))

            print("selfcheck: warm blue/green rollout ...")
            results = router.rollout(str(green))
            if any(is_error(result) for result in results):
                print(f"selfcheck: rollout failed: {results}")
                failures += 1
            local.rollout(green)
            failures += _compare("post-rollout envelope",
                                 router.execute_batch(mixed),
                                 local.execute_batch(mixed))

            print("selfcheck: killing worker 1 (post-rollout) ...")
            supervisor.workers[1].process.kill()
            supervisor.workers[1].process.wait()
            supervisor.check_once()
            failures += _compare("post-rollout restart envelope",
                                 router.execute_batch(mixed),
                                 local.execute_batch(mixed))

            if args.journal_dir:
                # Phase 4 (durability lane): snapshot + truncate, land
                # a post-snapshot tail, tear its final bytes, then cold
                # boot a brand-new cluster from disk alone — every
                # process above is gone, only --journal-dir survives.
                print("selfcheck: snapshot + cold boot from "
                      f"{args.journal_dir} ...")
                for stats in supervisor.journal.snapshot_all():
                    print(f"selfcheck: shard {stats['shard']} snapshot "
                          f"{stats['entries']} entries, "
                          f"{stats['segments_removed']} segments "
                          f"truncated")
                extra = [RecordEvent(student, 1 + 2 * k % 20, k % 2,
                                     (1 + k % 5,))
                         for k, student in enumerate(students)]
                failures += _compare("post-snapshot records",
                                     router.execute_batch(extra),
                                     local.execute_batch(extra))
                expected = supervisor.journal.total()
                supervisor.stop()
                router.close()
                supervisor.journal.close()
                from .wal import list_segments
                tails = [segment
                         for shard_dir in
                         sorted(Path(args.journal_dir).glob("shard-*"))
                         for segment in list_segments(shard_dir)]
                if tails:
                    with open(tails[-1], "ab") as handle:
                        handle.write(b"\x40\x00\x00\x00torn")
                    print(f"selfcheck: tore the tail of {tails[-1]}")
                journal2, supervisor, router = build_cluster(
                    args, [(DEFAULT_MODEL, green)])
                if journal2.total() != expected:
                    print(f"selfcheck: cold boot recovered "
                          f"{journal2.total()} journal entries, "
                          f"expected {expected}")
                    failures += 1
                failures += _compare("cold boot envelope",
                                     router.execute_batch(mixed),
                                     local.execute_batch(mixed))
        finally:
            supervisor.stop()
            router.close()
            local.close()
        if failures:
            print(f"selfcheck: FAILED ({failures} mismatching replies)")
            return 1
    print("selfcheck: ok (2 shards, bit-identical through crash "
          "restart and warm rollout"
          + (", cold boot from durable journal)" if args.journal_dir
             else ")"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.selfcheck:
        return _selfcheck(args)
    if not args.checkpoint:
        build_parser().error("--checkpoint is required (or --selfcheck)")
    if args.shards <= 0:
        build_parser().error("--shards must be positive")
    print(f"booting {args.shards} shard workers ...")
    _, supervisor, router = build_cluster(args, args.checkpoint)
    supervisor.start_watchdog()
    server = serve_router(router, host=args.host, port=args.port,
                          verbose=args.verbose)
    print(f"cluster of {args.shards} shards serving "
          f"{[name for name, _ in args.checkpoint]} on "
          f"http://{args.host}:{server.server_port} "
          f"(POST /v1/query, /v1/batch, /v1/admin/rollout; "
          f"GET /v1/health, /v1/models)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
        supervisor.stop()
        router.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
