"""Per-shard record journal: the cluster's crash-recovery ground truth.

Workers hold serving state in process memory (histories + stream
caches), so a worker crash would lose every response recorded since the
worker booted — and break the cluster's bit-identity contract with a
single in-process ``Service``.  The router therefore journals the wire
payload of every **successfully applied** :class:`RecordEvent` under
the owning shard, and the supervisor replays a shard's journal into a
freshly restarted worker *before* putting it back in rotation.
Histories are the only durable state that matters: stream caches are
derived (they rebuild on first score) and model weights come from the
checkpoint on disk, so replaying records is sufficient for the
restarted worker to answer exactly like an uninterrupted one.

Only acknowledged records enter the journal — a record whose reply was
lost to the crash is *not* replayed, which matches what the client
observed (a ``shard_unavailable`` error, i.e. "retry me").

Ordering comes from the *worker*, not the router: each entry carries
the ``history_length`` its :class:`RecordReply` acknowledged, which is
the student's post-append length under the worker's engine lock — the
authoritative per-student sequence number.  Two concurrent envelopes
recording the same student can have their replies journaled in either
arrival order, so replay re-sorts each student's records by that
sequence (cross-student order is unobservable: students are
shared-nothing).  Equal ``(student, sequence)`` pairs are dropped as
duplicates.

The journal is in-memory and append-only; a production deployment
would snapshot + truncate it (or replace it with a log service), which
``docs/CLUSTER.md`` lists as the known bound.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Tuple

from repro.serve.protocol import PROTOCOL_VERSION

from .ring import student_key


class RecordJournal:
    """Thread-safe per-shard append-only log of record wire payloads."""

    def __init__(self):
        self._lock = threading.Lock()
        self._records: Dict[int, List[Tuple[bytes, int, dict]]] = {}

    def append(self, shard: int, payload: dict, sequence: int) -> None:
        """Journal one acknowledged record's wire payload.

        ``sequence`` is the acknowledging reply's ``history_length`` —
        the worker-side apply order for that student (see module
        docstring).
        """
        with self._lock:
            self._records.setdefault(shard, []).append(
                (student_key(payload.get("student_id")), int(sequence),
                 payload))

    def count(self, shard: int) -> int:
        with self._lock:
            return len(self._records.get(shard, ()))

    def sizes(self) -> Dict[int, int]:
        with self._lock:
            return {shard: len(records)
                    for shard, records in self._records.items()}

    def _replay_order(self, shard: int) -> List[dict]:
        """Entries with per-student worker order restored, deduped."""
        with self._lock:
            entries = list(self._records.get(shard, ()))
        first_seen: Dict[bytes, int] = {}
        for index, (student, _, _) in enumerate(entries):
            first_seen.setdefault(student, index)
        entries.sort(key=lambda entry: (first_seen[entry[0]], entry[1]))
        ordered = []
        seen = set()
        for student, sequence, payload in entries:
            if (student, sequence) in seen:
                continue   # a retried ack journaled twice
            seen.add((student, sequence))
            ordered.append(payload)
        return ordered

    def envelopes(self, shard: int,
                  batch_size: int = 256) -> Iterator[dict]:
        """The shard's journal as replayable batch-envelope wire dicts.

        Chunked so a long log replays as a handful of batched requests
        instead of one unbounded body; each student's records appear in
        their acknowledged (worker-side) order.
        """
        records = self._replay_order(shard)
        for start in range(0, len(records), batch_size):
            yield {
                "v": PROTOCOL_VERSION,
                "type": "batch",
                "queries": records[start:start + batch_size],
            }
