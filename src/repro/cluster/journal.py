"""Durable per-shard record journal: the cluster's crash-recovery ground
truth, now backed by a write-ahead log on disk.

Workers hold serving state in process memory (histories + stream
caches), so a worker crash would lose every response recorded since the
worker booted — and break the cluster's bit-identity contract with a
single in-process ``Service``.  The router therefore journals the wire
payload of every **successfully applied** :class:`RecordEvent` under
the owning shard, and the supervisor replays a shard's journal into a
freshly restarted worker *before* putting it back in rotation.
Histories are the only durable state that matters: stream caches are
derived (they rebuild on first score) and model weights come from the
checkpoint on disk, so replaying records is sufficient for the
restarted worker to answer exactly like an uninterrupted one.

Only acknowledged records enter the journal — a record whose reply was
lost to the crash is *not* replayed, which matches what the client
observed (a ``shard_unavailable`` error, i.e. "retry me").  Appends are
validated: a payload that would not replay as a :class:`RecordEvent`
(garbage, or one missing its ``student_id`` field) is rejected with a
:class:`~repro.serve.protocol.MalformedQuery` **value** instead of
being journaled — an unreplayable entry would otherwise poison every
future restart of its shard.

Ordering comes from the *worker*, not the router: each entry carries
the ``history_length`` its :class:`RecordReply` acknowledged, which is
the student's post-append length under the worker's engine lock — the
authoritative per-student sequence number.  Two concurrent envelopes
recording the same student can have their replies journaled in either
arrival order, so replay re-sorts each student's records by that
sequence (cross-student order is unobservable: students are
shared-nothing).  Equal ``(student, sequence)`` pairs are dropped as
duplicates.  Both properties hold across *every* storage boundary:
entries scattered over multiple segment files, and entries split
between a snapshot and the live tail, feed one shared
:func:`replay_order` pass.

Storage tiers (all optional — ``RecordJournal()`` with no directory is
the original purely in-memory journal, which tests and throwaway
clusters still use):

* **Segments** (:mod:`repro.cluster.wal`) — each shard appends framed,
  CRC-checksummed entries to ``<dir>/shard-<n>/segment-*.wal`` under a
  configurable fsync policy (``record`` / ``batch`` / ``off``); files
  roll at ``segment_max_bytes``.  A crash mid-append leaves a torn
  tail that recovery detects via the frame CRC/length and truncates —
  on the final segment only; a non-verifying *sealed* segment is real
  corruption and fails loudly.
* **Snapshots** (:mod:`repro.cluster.snapshot`) — :meth:`snapshot`
  durably writes the shard's replay-ordered deduplicated state and
  deletes every covered segment, bounding disk usage by snapshot +
  unsealed tail; ``snapshot_every`` automates it per N tail entries.
* **Cold boot** — constructing a ``RecordJournal`` over an existing
  directory reloads latest-snapshot + tail segments per shard, so a
  brand-new router/supervisor process can rebuild every worker from
  disk: recovery no longer depends on any previous process's lifetime.

The full on-disk lifecycle is documented in ``docs/CLUSTER.md``.
"""

from __future__ import annotations

import os
import re
import threading
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro import obs
from repro.obs import names as metric_names
from repro.serve.protocol import (PROTOCOL_VERSION, MalformedQuery,
                                  RecordEvent, query_from_wire,
                                  wire_json_bytes, wire_json_loads)

from . import snapshot as snapshot_io
from . import wal
from .ring import student_key
from .wal import FSYNC_POLICIES, SegmentCorruption

#: Default segment roll size (bytes) for durable journals.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

_SHARD_DIR = re.compile(r"^shard-(\d+)$")
_META_NAME = "journal.json"

#: One journal entry: (canonical student key, worker sequence, payload).
Entry = Tuple[bytes, int, dict]


def replay_order(entries: List[Entry]) -> List[Entry]:
    """Worker-acknowledged per-student order, deduplicated.

    The single ordering/dedup pass every replay path shares — whether
    ``entries`` came from one in-memory list, several segment files
    concatenated in append order, or a snapshot followed by its tail
    (the snapshot's entries simply come first).  Students keep their
    first-appearance order (cross-student order is unobservable
    anyway); within a student, entries sort by the worker-side
    sequence, which also interleaves correctly across the snapshot/tail
    seam when a late-arriving low-sequence ack was journaled after a
    snapshot.  Equal ``(student, sequence)`` pairs keep the first copy
    (a retried ack journaled twice — possibly into two different
    segments, or once into the snapshot and once into the tail).
    """
    first_seen: Dict[bytes, int] = {}
    for index, (student, _, _) in enumerate(entries):
        first_seen.setdefault(student, index)
    ordered = sorted(entries,
                     key=lambda entry: (first_seen[entry[0]], entry[1]))
    deduped: List[Entry] = []
    seen = set()
    for student, sequence, payload in ordered:
        if (student, sequence) in seen:
            continue
        seen.add((student, sequence))
        deduped.append((student, sequence, payload))
    return deduped


def validate_entry(payload, sequence) -> Optional[MalformedQuery]:
    """The append-time admission check: *will this entry replay?*

    Returns ``None`` for a journalable entry, else a
    :class:`MalformedQuery` value naming the defect.  The criterion is
    exactly what replay does with the entry — decode it with
    :func:`query_from_wire` and require a :class:`RecordEvent` — so
    nothing the journal accepts can later wedge a shard's recovery
    (a payload missing ``student_id`` used to be journaled under
    ``student_key(None)`` and replayed as a poison record).
    """
    if not isinstance(payload, dict):
        return MalformedQuery(
            f"journal entry payload must be a wire object, got "
            f"{type(payload).__name__}")
    decoded = query_from_wire(payload)
    if isinstance(decoded, MalformedQuery):
        return MalformedQuery(
            f"journal entry would not replay: {decoded.message}",
            details=dict(decoded.details))
    if not isinstance(decoded, RecordEvent):
        return MalformedQuery(
            f"journal entries must be '{RecordEvent.TYPE}' payloads, "
            f"got {payload.get('type')!r}")
    try:
        sequence = int(sequence)
    except (TypeError, ValueError):
        return MalformedQuery(
            f"journal entry sequence must be an integer "
            f"(the acknowledging reply's history_length), got "
            f"{sequence!r}")
    if sequence < 1:
        return MalformedQuery(
            f"journal entry sequence must be >= 1, got {sequence}")
    return None


class _ShardLog:
    """One shard's journal state (and, when durable, its directory)."""

    __slots__ = ("shard", "directory", "snapshot_entries",
                 "snapshot_index", "tail", "writer", "segment_index",
                 "truncated_bytes", "snapshots_taken")

    def __init__(self, shard: int, directory: Optional[Path]):
        self.shard = shard
        self.directory = directory
        self.snapshot_entries: List[Entry] = []
        self.snapshot_index = 0
        self.tail: List[Entry] = []
        self.writer: Optional[wal.SegmentWriter] = None
        self.segment_index = 0
        self.truncated_bytes = 0
        self.snapshots_taken = 0

    def combined(self) -> List[Entry]:
        return self.snapshot_entries + self.tail


class RecordJournal:
    """Thread-safe per-shard journal of acknowledged record payloads.

    Parameters
    ----------
    directory:
        Root of the durable journal (one ``shard-<n>/`` subdirectory
        per shard).  ``None`` (default) keeps the journal purely in
        memory — same semantics, no durability — which is what
        throwaway test clusters use.  An existing directory is
        **recovered on construction**: latest snapshot + tail segments
        per shard, torn final-segment tails truncated.
    fsync:
        One of :data:`~repro.cluster.wal.FSYNC_POLICIES`:
        ``"record"`` (fsync per append), ``"batch"`` (fsync per
        :meth:`sync` call — the router calls it once per sub-envelope),
        or ``"off"`` (flush only; the OS decides).
    segment_max_bytes:
        Roll the active segment once it reaches this size.
    snapshot_every:
        Auto-snapshot a shard whenever its unsnapshotted tail reaches
        this many entries (``None`` disables; :meth:`snapshot` is
        always available explicitly).
    """

    def __init__(self, directory=None, fsync: str = "batch",
                 segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
                 snapshot_every: Optional[int] = None):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync policy must be one of "
                             f"{FSYNC_POLICIES}, got {fsync!r}")
        if segment_max_bytes <= 0:
            raise ValueError("segment_max_bytes must be positive")
        if snapshot_every is not None and snapshot_every <= 0:
            raise ValueError("snapshot_every must be positive or None")
        self._lock = threading.Lock()
        self._directory = Path(directory) if directory else None
        self._fsync = fsync
        self._segment_max_bytes = segment_max_bytes
        self._snapshot_every = snapshot_every
        self._shards: Dict[int, _ShardLog] = {}
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
            self._recover()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def directory(self) -> Optional[str]:
        return str(self._directory) if self._directory else None

    @property
    def durable(self) -> bool:
        return self._directory is not None

    @property
    def fsync_policy(self) -> str:
        return self._fsync

    def shards(self) -> List[int]:
        with self._lock:
            return sorted(self._shards)

    def count(self, shard: int) -> int:
        with self._lock:
            state = self._shards.get(shard)
            return 0 if state is None else len(state.combined())

    def total(self) -> int:
        with self._lock:
            return sum(len(state.combined())
                       for state in self._shards.values())

    def sizes(self) -> Dict[int, int]:
        with self._lock:
            return {shard: len(state.combined())
                    for shard, state in self._shards.items()}

    def describe(self) -> dict:
        """Structured stats (the router's ``/v1/health`` journal body)."""
        with self._lock:
            shards = {}
            for shard, state in sorted(self._shards.items()):
                entry = {"entries": len(state.combined()),
                         "snapshot": len(state.snapshot_entries),
                         "tail": len(state.tail)}
                if state.directory is not None:
                    entry.update(
                        segments=len(wal.list_segments(state.directory)),
                        snapshot_index=state.snapshot_index,
                        snapshots_taken=state.snapshots_taken,
                        truncated_bytes=state.truncated_bytes)
                shards[str(shard)] = entry
            return {"durable": self.durable, "directory": self.directory,
                    "fsync": self._fsync, "shards": shards}

    # ------------------------------------------------------------------
    # Append path
    # ------------------------------------------------------------------
    def append(self, shard: int, payload: dict,
               sequence: int) -> Optional[MalformedQuery]:
        """Journal one acknowledged record's wire payload.

        ``sequence`` is the acknowledging reply's ``history_length`` —
        the worker-side apply order for that student (see module
        docstring).  Returns ``None`` on success, or a
        :class:`MalformedQuery` **value** when the entry would not
        replay (it is then not journaled — see :func:`validate_entry`).
        """
        error = validate_entry(payload, sequence)
        if error is not None:
            return error
        entry = (student_key(payload["student_id"]), int(sequence),
                 payload)
        with self._lock:
            state = self._shard(shard)
            if state.directory is not None:
                writer = self._writer(state)
                writer.append({"sequence": entry[1], "payload": payload})
            state.tail.append(entry)
            wants_snapshot = (self._snapshot_every is not None
                              and len(state.tail) >= self._snapshot_every)
        if wants_snapshot:
            self.snapshot(shard)
        return None

    def sync(self, shard: int) -> None:
        """Durability point for the ``batch`` fsync policy: flush the
        shard's appended-but-unsynced frames to disk.  The router calls
        this once per scatter-gather sub-envelope that journaled
        anything; no-op for in-memory journals and other policies."""
        with self._lock:
            state = self._shards.get(shard)
            if state is not None and state.writer is not None:
                state.writer.sync()

    # ------------------------------------------------------------------
    # Replay path
    # ------------------------------------------------------------------
    def _replay_payloads(self, shard: int) -> List[dict]:
        with self._lock:
            state = self._shards.get(shard)
            combined = [] if state is None else state.combined()
        return [payload for _, _, payload in replay_order(combined)]

    def replay_records(self, shard: Optional[int] = None
                       ) -> List[RecordEvent]:
        """The journal-consumer API: decoded acknowledged records.

        Every journaled payload of ``shard`` (or, with ``None``, of
        every shard in ascending shard order) decoded back into typed
        :class:`~repro.serve.protocol.RecordEvent` values, in replay
        order — per-student worker-acknowledged sequence order with
        ``(student, sequence)`` duplicates dropped, identical to what
        :meth:`envelopes` feeds a restarted worker.  Cross-shard
        concatenation order is unobservable by construction: the ring
        places each student on exactly one shard, so no student's
        events ever span shards.

        This is the contract the ``repro.online`` continual trainer
        consumes (``docs/ONLINE.md``): append-time validation
        (:func:`validate_entry`) guarantees everything here decodes,
        so a failure to decode is corruption and raises ``ValueError``
        rather than silently dropping an acknowledged record.
        """
        shards = self.shards() if shard is None else [shard]
        records: List[RecordEvent] = []
        for index in shards:
            for payload in self._replay_payloads(index):
                decoded = query_from_wire(payload)
                if not isinstance(decoded, RecordEvent):
                    raise ValueError(
                        f"shard {index} journal entry does not replay "
                        f"as a record event: {decoded!r}")
                records.append(decoded)
        return records

    def envelopes(self, shard: int,
                  batch_size: int = 256) -> Iterator[dict]:
        """The shard's journal as replayable batch-envelope wire dicts.

        Chunked so a long log replays as a handful of batched requests
        instead of one unbounded body; each student's records appear in
        their acknowledged (worker-side) order regardless of which
        segment or snapshot they were persisted in.
        """
        records = self._replay_payloads(shard)
        for start in range(0, len(records), batch_size):
            yield {
                "v": PROTOCOL_VERSION,
                "type": "batch",
                "queries": records[start:start + batch_size],
            }

    # ------------------------------------------------------------------
    # Snapshot + truncation
    # ------------------------------------------------------------------
    def snapshot(self, shard: int) -> dict:
        """Compact a shard: durably snapshot its replay-ordered state,
        then drop every covered segment file.

        After this, the shard's disk footprint is one snapshot file
        plus whatever tail accumulates next — replaying is unchanged
        (the snapshot entries simply pre-empt the segments they
        replaced).  In-memory journals compact their entry list the
        same way, just without files.  Returns a small stats dict.
        """
        with self._lock:
            state = self._shard(shard)
            ordered = replay_order(state.combined())
            removed = 0
            if state.directory is not None:
                if state.writer is not None:
                    state.writer.close()
                    state.writer = None
                state.snapshot_index += 1
                snapshot_io.write_snapshot(
                    state.directory, state.snapshot_index,
                    [(sequence, payload)
                     for _, sequence, payload in ordered])
                for path in wal.list_segments(state.directory):
                    path.unlink()
                    removed += 1
                wal.fsync_directory(state.directory)
            state.snapshot_entries = ordered
            state.tail = []
            state.snapshots_taken += 1
            return {"shard": shard, "entries": len(ordered),
                    "segments_removed": removed,
                    "snapshot_index": state.snapshot_index}

    def snapshot_all(self) -> List[dict]:
        return [self.snapshot(shard) for shard in self.shards()]

    # ------------------------------------------------------------------
    # Durable plumbing
    # ------------------------------------------------------------------
    def bind_meta(self, meta: dict) -> dict:
        """Persist (or verify) cluster parameters the journal's shard
        keying depends on.

        A durable journal written by an N-shard, R-replica ring is only
        replayable into a cluster with the *same* ring — replaying a
        shard's records into a differently-placed worker would rebuild
        students on workers that will never be asked about them.  The
        first binder writes ``journal.json``; later binders (cold
        boots) must match or this raises ``ValueError``.  In-memory
        journals accept anything (nothing persists to disagree with).
        """
        if self._directory is None:
            return dict(meta)
        path = self._directory / _META_NAME
        with self._lock:
            if path.exists():
                existing = wire_json_loads(path.read_bytes())
                conflicts = {key: (existing.get(key), value)
                             for key, value in meta.items()
                             if existing.get(key) != value}
                if conflicts:
                    raise ValueError(
                        f"journal directory {self._directory} was "
                        f"written with different cluster parameters: "
                        f"{conflicts} (journal vs requested)")
                return existing
            with open(path, "wb") as handle:
                # fsync the bytes themselves: a dir-entry fsync alone
                # does not make the file *contents* durable, and a
                # half-written meta file would wedge every cold boot.
                handle.write(wire_json_bytes(dict(meta)))
                handle.flush()
                os.fsync(handle.fileno())
            wal.fsync_directory(self._directory)
            return dict(meta)

    def _shard_directory(self, shard: int) -> Optional[Path]:
        if self._directory is None:
            return None
        directory = self._directory / f"shard-{shard:04d}"
        directory.mkdir(parents=True, exist_ok=True)
        return directory

    # invariant: holds-lock
    def _shard(self, shard: int) -> _ShardLog:
        state = self._shards.get(shard)
        if state is None:
            state = _ShardLog(shard, self._shard_directory(shard))
            self._shards[shard] = state
        return state

    def _writer(self, state: _ShardLog) -> wal.SegmentWriter:
        writer = state.writer
        if writer is not None and writer.size >= self._segment_max_bytes:
            writer.close()   # seal: flush + fsync (policy permitting)
            obs.get_registry().counter(
                metric_names.WAL_SEGMENT_ROLLS_TOTAL).inc()
            writer = None
            state.writer = None
        if writer is None:
            # Reuse the current (recovered or just-sealed) segment file
            # only while it is under the roll size; otherwise advance.
            current = wal.segment_path(state.directory,
                                       state.segment_index)
            if state.segment_index == 0 or (
                    current.exists() and current.stat().st_size
                    >= self._segment_max_bytes):
                state.segment_index += 1
            writer = wal.SegmentWriter(
                wal.segment_path(state.directory, state.segment_index),
                fsync=self._fsync)
            state.writer = writer
        return writer

    # Called from __init__ only, before any other thread can hold a
    # reference to this journal — construction-time exclusivity.
    # invariant: holds-lock
    def _recover(self) -> None:
        """Cold boot: rebuild every shard's state from its directory.

        Latest verifying snapshot first, then every segment in index
        order.  A non-verifying frame in the *final* segment is a torn
        tail — truncated in place, counted in ``truncated_bytes``.  The
        same damage in a sealed (non-final) segment raises
        :class:`~repro.cluster.wal.SegmentCorruption`: sealed segments
        were fsynced whole, so a bad frame there is disk corruption
        that silently dropping acknowledged records must not paper
        over.  Entries a lingering pre-snapshot segment duplicates are
        dropped by the shared replay dedup, not here.
        """
        for child in sorted(self._directory.iterdir()):
            match = _SHARD_DIR.match(child.name)
            if match is None or not child.is_dir():
                continue
            shard = int(match.group(1))
            state = _ShardLog(shard, child)
            index, snap_entries, _ = snapshot_io.load_latest(child)
            state.snapshot_index = index
            state.snapshot_entries = [
                (student_key(payload.get("student_id")), sequence,
                 payload)
                for sequence, payload in snap_entries]
            segments = wal.list_segments(child)
            for position, path in enumerate(segments):
                final = position == len(segments) - 1
                if final:
                    entries, dropped = wal.recover_segment(path)
                    state.truncated_bytes += dropped
                else:
                    entries, offset, damage = wal.read_segment(path)
                    if damage is not None:
                        raise SegmentCorruption(path, offset, damage)
                for record in entries:
                    if not isinstance(record, dict):
                        raise SegmentCorruption(
                            path, 0, f"entry is not an object: "
                                     f"{type(record).__name__}")
                    payload = record.get("payload")
                    state.tail.append(
                        (student_key(payload.get("student_id"))
                         if isinstance(payload, dict)
                         else student_key(None),
                         int(record.get("sequence", 0)), payload))
                state.segment_index = wal.segment_index(path)
            self._shards[shard] = state

    def close(self) -> None:
        """Seal every open segment writer (safe to call repeatedly)."""
        with self._lock:
            for state in self._shards.values():
                if state.writer is not None:
                    state.writer.close()
                    state.writer = None
