"""Shard snapshots: the journal's compaction + truncation anchor.

A snapshot is one JSON file (``snapshot-<index>.json``) holding a
shard's **replay-ordered, deduplicated** journal state at the moment it
was taken: the exact ``(sequence, payload)`` list that
:meth:`repro.cluster.journal.RecordJournal.envelopes` would have
replayed.  Once it is durably on disk, every segment file it covers is
redundant and gets deleted — which is what bounds the journal's disk
usage (snapshot + unsealed tail) and makes cold boot O(snapshot + tail)
instead of O(every segment ever written).

Write protocol (crash-safe at every step):

1. serialize to a ``.tmp`` file in the same directory, flush + fsync;
2. ``os.replace`` onto the final ``snapshot-<index>.json`` name (atomic
   on POSIX) and fsync the directory entry;
3. delete older snapshots, then delete covered segments.

A crash between any two steps leaves a state :func:`load_latest` copes
with: an orphaned ``.tmp`` is ignored, two snapshots resolve to the
highest-index one that verifies (the body carries a CRC32 over its
canonical entry bytes), and stale not-yet-deleted segments merely
re-feed entries whose ``(student, sequence)`` pairs the replay dedup
already drops.
"""

from __future__ import annotations

import os
import re
import zlib
from pathlib import Path
from typing import List, Optional, Tuple

from repro.serve.protocol import wire_json_bytes, wire_json_loads

from .wal import fsync_directory

SNAPSHOT_VERSION = 1
SNAPSHOT_SUFFIX = ".json"
_SNAPSHOT_NAME = re.compile(r"^snapshot-(\d{8})\.json$")

#: One snapshot entry: (sequence, wire payload).  The journal re-derives
#: the student key from the payload, so it is not stored.
Entry = Tuple[int, dict]


def snapshot_path(directory, index: int) -> Path:
    return Path(directory) / f"snapshot-{index:08d}{SNAPSHOT_SUFFIX}"


def snapshot_index(path) -> int:
    match = _SNAPSHOT_NAME.match(Path(path).name)
    if match is None:
        raise ValueError(f"not a snapshot file name: {path}")
    return int(match.group(1))


def list_snapshots(directory) -> List[Path]:
    """Snapshot files in ascending index order."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = [p for p in directory.iterdir()
             if _SNAPSHOT_NAME.match(p.name)]
    return sorted(found, key=snapshot_index)


def _entry_records(entries) -> List[dict]:
    return [{"sequence": int(sequence), "payload": payload}
            for sequence, payload in entries]


def write_snapshot(directory, index: int, entries) -> Path:
    """Durably write ``entries`` as snapshot ``index``; prune older ones.

    ``entries`` is an iterable of ``(sequence, payload)`` in replay
    order (already deduplicated by the caller).  Returns the final
    path.  Older snapshot files are unlinked only after the new one is
    durable, so there is always at least one loadable snapshot on disk.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    records = _entry_records(entries)
    body = {
        "version": SNAPSHOT_VERSION,
        "index": int(index),
        "entries": records,
        "crc32": zlib.crc32(wire_json_bytes(records)),
    }
    final = snapshot_path(directory, index)
    tmp = final.with_suffix(final.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(wire_json_bytes(body))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, final)
    fsync_directory(directory)
    for old in list_snapshots(directory):
        if old != final:
            old.unlink()
    fsync_directory(directory)
    return final


def read_snapshot(path) -> List[Entry]:
    """Decode + verify one snapshot file (raises ``ValueError``)."""
    body = wire_json_loads(Path(path).read_bytes())
    if not isinstance(body, dict) or \
            body.get("version") != SNAPSHOT_VERSION:
        raise ValueError(f"{path}: not a v{SNAPSHOT_VERSION} snapshot")
    records = body.get("entries")
    if not isinstance(records, list):
        raise ValueError(f"{path}: snapshot has no entries list")
    if body.get("crc32") != zlib.crc32(wire_json_bytes(records)):
        raise ValueError(f"{path}: snapshot entry CRC mismatch")
    entries = []
    for record in records:
        if not isinstance(record, dict) or "sequence" not in record \
                or "payload" not in record:
            raise ValueError(f"{path}: malformed snapshot entry")
        entries.append((int(record["sequence"]), record["payload"]))
    return entries


def load_latest(directory) -> Tuple[int, List[Entry],
                                    Optional[str]]:
    """The newest snapshot that verifies: ``(index, entries, skipped)``.

    Snapshots are tried newest-first; a file that fails to verify is
    skipped (its name is reported in ``skipped``) because an older
    intact snapshot plus the still-present segments it covered is a
    complete journal, whereas refusing to boot would not be.  With no
    loadable snapshot the result is ``(0, [], ...)`` — replay falls
    back to the segments alone.
    """
    skipped = None
    for path in reversed(list_snapshots(directory)):
        try:
            return snapshot_index(path), read_snapshot(path), skipped
        except (ValueError, OSError):
            skipped = path.name
    return 0, [], skipped
