"""Scatter-gather router: one wire endpoint over N shard workers.

The router is the cluster's single public surface.  It speaks exactly
the protocol the single-process gateway speaks (``POST /v1/query``,
``POST /v1/batch``, ``GET /v1/health`` / ``/v1/models``, ``POST
/v1/admin/rollout``) and answers **bit-identically** to one in-process
:class:`repro.serve.Service` holding all the students — sharding is an
implementation detail the wire cannot observe.  Per query it:

1. validates/decodes the envelope exactly like the gateway
   (:func:`repro.serve.protocol.query_from_wire` — garbage becomes
   structured ``malformed_query`` values, never stack traces);
2. splits a mixed-type :class:`~repro.serve.protocol.BatchEnvelope` by
   the consistent-hash ring (:mod:`repro.cluster.ring`) over each
   query's ``student_id``, preserving envelope order within every
   shard — records still apply before reads per student, because a
   student's records and reads always land on the same worker;
3. fans the per-shard sub-envelopes out concurrently over persistent
   keep-alive connections (:class:`repro.serve.ServiceClient`);
4. merges the replies back into envelope order, journaling every
   acknowledged record (:mod:`repro.cluster.journal` — disk-backed
   when the cluster runs with ``--journal-dir``, with one fsync per
   sub-envelope under the default ``batch`` policy) so the supervisor
   can rebuild a crashed worker, and a future cold boot can rebuild
   the whole cluster;
5. surfaces per-shard failures as
   :class:`~repro.serve.protocol.ShardUnavailable` **values** in the
   affected slots — a worker crash mid-fan-out degrades exactly the
   queries that needed that worker, and nothing ever raises across the
   scatter-gather boundary.

Queries the router cannot place (a nested batch envelope — anything
without a ``student_id``) are forwarded to a deterministic fallback
shard whose ``Service`` produces the canonical taxonomy error, so even
the error *messages* match the single-process facade byte for byte.
"""

from __future__ import annotations

import dataclasses
import threading
from concurrent.futures import ThreadPoolExecutor
from http.server import ThreadingHTTPServer
from typing import Dict, List, Optional

from repro import obs
from repro.obs import names as metric_names
from repro.serve.http_gateway import ServiceClient, _GatewayHandler
from repro.serve.protocol import (PROTOCOL_VERSION, BatchEnvelope,
                                  BatchReply, ExplainQuery, InternalError,
                                  MalformedQuery, NotFound, RecommendQuery,
                                  RecordEvent, RecourseQuery, ScoreQuery,
                                  ShardUnavailable, WhatIfQuery,
                                  capabilities, is_error,
                                  negotiated_version, query_from_wire,
                                  to_wire)

from .journal import RecordJournal
from .ring import DEFAULT_REPLICAS, HashRing

# RecourseQuery rides the same path as every other student-addressed
# query: the whole edit search runs shard-local on the worker owning
# the student (its history and warm stream caches live there), and the
# router only forwards the query and merges the typed reply.
_QUERY_CLASSES = (ScoreQuery, ExplainQuery, WhatIfQuery, RecommendQuery,
                  RecourseQuery, RecordEvent)


class ScatterGatherRouter:
    """Route typed queries across shard workers, merge typed replies.

    Parameters
    ----------
    shard_urls:
        One worker base URL per shard, index == shard id.  The list is
        positional and stable across worker restarts (the supervisor
        respawns a worker on its original port), so the ring never
        re-maps students when a worker bounces.
    timeout:
        Per-request socket timeout of the shard clients.
    journal:
        The :class:`RecordJournal` acknowledged records are logged to
        (shared with the supervisor's replay); a private one by default.
    replicas:
        Ring points per shard (placement smoothing).
    """

    def __init__(self, shard_urls: List[str], timeout: float = 30.0,
                 journal: Optional[RecordJournal] = None,
                 replicas: int = DEFAULT_REPLICAS):
        if not shard_urls:
            raise ValueError("at least one shard url is required")
        self.shard_urls = list(shard_urls)
        self.ring = HashRing(len(self.shard_urls), replicas=replicas)
        self.clients = [ServiceClient(url, timeout=timeout)
                        for url in self.shard_urls]
        # Liveness probes get their own short-timeout clients: a hung
        # worker must cost the aggregate /v1/health a few seconds, not
        # the full query timeout.
        self._probe_clients = [
            ServiceClient(url, timeout=min(timeout, 3.0))
            for url in self.shard_urls]
        self.journal = journal if journal is not None else RecordJournal()
        self._draining = set()
        self._lock = threading.Lock()
        self._obs = obs.get_registry()
        # Leaf fan-out tasks only (no nested submits), so a bounded
        # shared pool cannot deadlock — concurrent envelopes just queue.
        self._pool = ThreadPoolExecutor(
            max_workers=max(4, 2 * len(self.shard_urls)),
            thread_name_prefix="rckt-router")
        #: Hook for ``/v1/admin/rollout`` — the supervisor installs its
        #: own (which also updates restart checkpoints); standalone
        #: routers fan the rollout out directly.
        self.rollout_hook = None

    # ------------------------------------------------------------------
    # Shard state
    # ------------------------------------------------------------------
    def shard_of(self, query) -> int:
        """The shard owning a query (fallback shard 0 for shardless
        payloads like nested envelopes — their canonical rejection
        comes from a worker's ``Service``, identically worded)."""
        if not hasattr(query, "student_id"):
            return 0
        return self.ring.shard_for(query.student_id)

    def drain(self, shard: int) -> None:
        """Stop routing to a shard (planned restart); queries for its
        students answer ``shard_unavailable`` until :meth:`resume`."""
        with self._lock:
            self._draining.add(shard)

    def resume(self, shard: int) -> None:
        with self._lock:
            self._draining.discard(shard)

    def draining(self) -> set:
        with self._lock:
            return set(self._draining)

    def close(self) -> None:
        self._pool.shutdown(wait=True)
        for client in self.clients + self._probe_clients:
            client.close()

    def _unavailable(self, shard: int, reason: str) -> ShardUnavailable:
        self._obs.counter(metric_names.ROUTER_SHARD_UNAVAILABLE_TOTAL,
                          shard=str(shard)).inc()
        return ShardUnavailable(
            f"shard {shard} ({self.shard_urls[shard]}) is unavailable: "
            f"{reason}",
            details={"shard": shard, "url": self.shard_urls[shard]})

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, query):
        """One query (or a whole envelope) -> its typed reply."""
        if isinstance(query, BatchEnvelope):
            return BatchReply(tuple(self.execute_batch(query)))
        return self.execute_batch([query])[0]

    def execute_batch(self, queries) -> List[object]:
        """Scatter a batch by shard, gather replies in input order.

        A :class:`BatchEnvelope` carrying a ``request_id`` has that ID
        propagated on every router→worker sub-envelope, so the worker's
        span log shows the same ID the gateway minted.
        """
        request_id = None
        if isinstance(queries, BatchEnvelope):
            request_id = queries.request_id
            queries = queries.queries
        queries = list(queries)
        replies: List[object] = [None] * len(queries)
        groups: Dict[int, List[int]] = {}
        for index, query in enumerate(queries):
            if is_error(query):
                replies[index] = query   # pre-decoded malformed slot
            elif not isinstance(query, _QUERY_CLASSES) \
                    and not isinstance(query, BatchEnvelope):
                # Unserializable in-process garbage cannot cross the
                # wire; reject with the facade's exact wording.
                replies[index] = MalformedQuery(
                    f"not a protocol query: {type(query).__name__!s}")
            else:
                groups.setdefault(self.shard_of(query), []).append(index)
        draining = self.draining()
        futures = {}
        for shard, indices in groups.items():
            if shard in draining:
                error = self._unavailable(shard, "draining for restart")
                for index in indices:
                    replies[index] = error
                continue
            sub = [queries[index] for index in indices]
            if len(groups) == 1:
                self._gather(shard, indices, sub, replies, request_id)
            else:
                futures[self._pool.submit(
                    self._gather, shard, indices, sub, replies,
                    request_id)] = shard
        for future in futures:
            future.result()   # _gather never raises; propagate bugs only
        return replies

    def _gather(self, shard: int, indices: List[int], sub: List[object],
                replies: List[object],
                request_id: Optional[str] = None) -> None:
        """One shard's sub-envelope round-trip (fills reply slots)."""
        envelope = BatchEnvelope(tuple(sub), request_id=request_id)
        fanout = self._obs.histogram(metric_names.ROUTER_FANOUT_SECONDS,
                                     shard=str(shard))
        try:
            with obs.Span(f"router.fanout.shard{shard}", request_id,
                          histogram=fanout):
                shard_replies = self.clients[shard].batch(envelope)
        except Exception as error:  # noqa: BLE001 — fan-out boundary
            failure = self._unavailable(
                shard, f"{type(error).__name__}: {error}")
            for index in indices:
                replies[index] = failure
            return
        if is_error(shard_replies):
            # A request-level error for the whole sub-envelope (e.g. a
            # worker that rejected the body) lands in every slot.
            for index in indices:
                replies[index] = shard_replies
            return
        if len(shard_replies) != len(sub):
            failure = InternalError(
                f"shard {shard} answered {len(shard_replies)} replies "
                f"for {len(sub)} queries",
                details={"shard": shard, "url": self.shard_urls[shard]})
            for index in indices:
                replies[index] = failure
            return
        journaled = False
        for index, query, reply in zip(indices, sub, shard_replies):
            replies[index] = reply
            if isinstance(query, RecordEvent) and getattr(reply, "ok",
                                                          False):
                # Acknowledged ground truth: replayable after a crash.
                # The reply's history_length is the worker-side apply
                # order — the journal re-sorts by it so concurrent
                # envelopes cannot invert a student's replay order.
                rejected = self.journal.append(
                    shard, to_wire(query), sequence=reply.history_length)
                if rejected is not None:
                    # The worker applied a record the journal refuses to
                    # persist (it would not replay) — the durability
                    # contract is broken for this slot, so say so
                    # instead of acking silently.
                    replies[index] = InternalError(
                        f"acknowledged record could not be journaled: "
                        f"{rejected.message}",
                        details={"shard": shard})
                else:
                    journaled = True
        if journaled:
            # The batch fsync policy's durability point: one disk flush
            # per sub-envelope, not per record.
            self.journal.sync(shard)

    # ------------------------------------------------------------------
    # Cluster plane
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Aggregate worker healths (the router's ``/v1/health`` body).

        Probes fan out concurrently on short-timeout clients, so the
        aggregate answers in one slowest-probe time — a wedged worker
        cannot stall the endpoint for the full query timeout per shard.
        """
        draining = self.draining()

        def probe(shard: int) -> dict:
            entry = {"shard": shard, "url": self.shard_urls[shard],
                     "draining": shard in draining}
            try:
                worker = self._probe_clients[shard].health()
                entry["ok"] = worker.get("status") == "ok"
                entry["models"] = worker.get("models", [])
            except Exception as error:  # noqa: BLE001 — probe boundary
                entry["ok"] = False
                entry["error"] = f"{type(error).__name__}: {error}"
            return entry

        shards = list(self._pool.map(probe,
                                     range(len(self.shard_urls))))
        healthy = all(s["ok"] and not s["draining"] for s in shards)
        return {
            "status": "ok" if healthy else "degraded",
            "protocol": PROTOCOL_VERSION,
            "capabilities": capabilities(),
            "shards": shards,
            "ring": self.ring.describe(),
            "journal": self.journal.describe(),
        }

    def models(self):
        """Proxy ``/v1/models`` from the first reachable worker (every
        worker serves the same registry contents by construction)."""
        last_error = None
        for shard, client in enumerate(self.clients):
            try:
                return client.models()
            except Exception as error:  # noqa: BLE001 — probe boundary
                last_error = self._unavailable(
                    shard, f"{type(error).__name__}: {error}")
        return last_error

    def rollout(self, checkpoint, model: str = None,
                warm_top: int = None) -> List[object]:
        """Warm blue/green rollout across every shard, one at a time.

        Sequential on purpose: at any instant at most one worker is
        mid-swap, and each worker's swap is itself atomic with a warm
        standby — the cluster never has a cold-cache moment.  Returns
        one summary dict or taxonomy error value per shard.  When a
        supervisor installed :attr:`rollout_hook`, it runs instead (it
        additionally re-points restart checkpoints at the new weights).
        """
        if self.rollout_hook is not None:
            return self.rollout_hook(checkpoint, model=model,
                                     warm_top=warm_top)
        results = []
        for shard, client in enumerate(self.clients):
            try:
                results.append(client.rollout(checkpoint, model=model,
                                              warm_top=warm_top))
            except Exception as error:  # noqa: BLE001 — fan-out boundary
                results.append(self._unavailable(
                    shard, f"{type(error).__name__}: {error}"))
        return results


# ---------------------------------------------------------------------------
# The router's own HTTP face (same plumbing as the worker gateway)
# ---------------------------------------------------------------------------
class _RouterHandler(_GatewayHandler):
    """Gateway handler routing into a ScatterGatherRouter."""

    server_version = "rckt-cluster/1"

    def _route_get(self, path: str, query: str) -> None:
        router = self.server.router
        if path == "/v1/health":
            payload = router.health()
            payload["uptime_s"] = obs.clock() - self.server.started
            payload["served_requests"] = \
                self.server.obs_registry.counter_total(
                    metric_names.HTTP_REQUESTS_TOTAL)
            self._send_json(200, payload)
        elif path == "/v1/models":
            models = router.models()
            if is_error(models):
                self._send_reply(models)
            else:
                self._send_json(200, models)
        elif path == "/v1/metrics":
            self._serve_metrics(query)
        else:
            self._send_reply(NotFound(f"no such route: GET {self.path}"))

    def _route_post(self, path: str) -> None:
        router = self.server.router
        payload = self._read_body()
        if is_error(payload):
            self._send_reply(payload)
            return
        # Same per-request negotiation as the worker gateway, so an
        # unsupported-version or unknown-type rejection serializes to
        # byte-identical JSON from either surface.
        version = negotiated_version(payload)
        try:
            if path == "/v1/query":
                self._send_reply(router.execute(query_from_wire(payload)),
                                 version=version)
            elif path == "/v1/batch":
                envelope = query_from_wire(payload)
                if is_error(envelope):
                    self._send_reply(envelope, version=version)
                    return
                if not isinstance(envelope, BatchEnvelope):
                    envelope = BatchEnvelope((envelope,))
                # Same admission tracing as the worker gateway: mint
                # when absent, echo on X-Request-Id, and let
                # execute_batch propagate it on the worker hop.
                if envelope.request_id is None:
                    envelope = dataclasses.replace(
                        envelope, request_id=obs.new_request_id())
                self._request_id = envelope.request_id
                with obs.Span("router.batch", envelope.request_id):
                    replies = router.execute_batch(envelope)
                self._send_json(200, to_wire(BatchReply(tuple(replies)),
                                             version=version))
            elif path == "/v1/admin/rollout":
                self._admin_rollout(router, payload)
            else:
                self._send_reply(NotFound(
                    f"no such route: POST {self.path}"), version=version)
        except Exception as error:  # noqa: BLE001 - transport boundary
            self._send_reply(InternalError(
                f"router failure: {type(error).__name__}: {error}"),
                version=version)

    def _admin_rollout(self, router, payload) -> None:
        if not isinstance(payload, dict) or \
                not isinstance(payload.get("checkpoint"), str):
            self._send_reply(MalformedQuery(
                "rollout needs a JSON object with a 'checkpoint' path"))
            return
        results = router.rollout(payload["checkpoint"],
                                 model=payload.get("model"),
                                 warm_top=payload.get("warm_top"))
        entries = [to_wire(r) if is_error(r) else r for r in results]
        all_ok = all(not is_error(r) for r in results)
        self._send_json(200 if all_ok else 502, {
            "status": "ok" if all_ok else "failed",
            "shards": entries,
        })


class RouterHTTPServer(ThreadingHTTPServer):
    """Thread-per-connection HTTP server bound to one router."""

    daemon_threads = True

    def __init__(self, address, router: ScatterGatherRouter,
                 verbose: bool = False):
        super().__init__(address, _RouterHandler)
        self.router = router
        self.verbose = verbose
        self.role = "router"
        self.obs_registry = obs.get_registry()
        self.started = obs.clock()


def serve_router(router: ScatterGatherRouter, host: str = "127.0.0.1",
                 port: int = 0, verbose: bool = False) -> RouterHTTPServer:
    """Bind the router's HTTP face (``port=0`` picks an ephemeral port);
    call ``serve_forever()`` to enter the loop (the CLI does)."""
    return RouterHTTPServer((host, port), router, verbose=verbose)


def start_router_thread(router: ScatterGatherRouter,
                        host: str = "127.0.0.1", port: int = 0):
    """Router HTTP server on a daemon thread; ``(server, thread)``."""
    server = serve_router(router, host=host, port=port)
    thread = threading.Thread(target=server.serve_forever,
                              name="rckt-cluster-router", daemon=True)
    thread.start()
    return server, thread
