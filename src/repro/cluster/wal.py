"""Write-ahead segment files: the journal's on-disk byte layer.

A shard's journal lives in one directory as a sequence of append-only
**segment files** (``segment-<index>.wal``, monotonically numbered)
plus at most one snapshot (:mod:`repro.cluster.snapshot`).  A segment
is a flat concatenation of framed entries::

    +----------------+----------------+------------------------+
    | length  (u32le)| crc32   (u32le)| payload (length bytes) |
    +----------------+----------------+------------------------+

where ``payload`` is the canonical compact JSON of one journal entry
(:func:`repro.serve.protocol.wire_json_bytes`) and ``crc32`` is
``zlib.crc32`` over exactly those payload bytes.  The frame makes two
failure modes detectable at read time:

* **Torn tail** — a crash mid-append leaves a *prefix* of the last
  frame on disk (appends are sequential writes, so a partial write is
  always a prefix).  :func:`scan_entries` stops at the first frame that
  does not verify and reports the byte offset of the last good frame
  boundary; :func:`recover_segment` truncates the file there, which is
  the documented recovery action for the *final* segment of a shard.
* **Sealed-segment corruption** — the same non-verifying frame in a
  non-final segment cannot be a torn append (later segments only exist
  because the earlier one was sealed with a final flush), so the
  journal layer treats it as real corruption and fails loudly instead
  of silently dropping acknowledged records.

Durability is a per-writer **fsync policy** (:data:`FSYNC_POLICIES`):

* ``"record"`` — ``fsync`` after every appended frame: an acknowledged
  record survives power loss, at one disk flush per record.
* ``"batch"`` — frames are flushed to the OS per append and ``fsync``
  runs once per :meth:`SegmentWriter.sync` call (the router calls it
  once per scatter-gather sub-envelope): a power loss can cost at most
  the current batch, a process crash costs nothing.
* ``"off"`` — never ``fsync`` (the OS decides when bytes hit the
  platter): process crashes are still fully covered, power loss is not.

Sealing a segment (roll-over, snapshot, close) always flushes and —
unless the policy is ``"off"`` — fsyncs, so sealed segments are
complete by construction.
"""

from __future__ import annotations

import os
import re
import struct
import zlib
from pathlib import Path
from typing import List, Optional, Tuple

from repro import obs
from repro.obs import names as metric_names
from repro.serve.protocol import wire_json_bytes, wire_json_loads

#: Supported fsync policies, strongest first (see module docstring).
FSYNC_POLICIES = ("record", "batch", "off")

SEGMENT_SUFFIX = ".wal"
_SEGMENT_NAME = re.compile(r"^segment-(\d{8})\.wal$")

#: Frame header: payload byte length + CRC32 of the payload bytes.
_HEADER = struct.Struct("<II")
HEADER_BYTES = _HEADER.size


class SegmentCorruption(RuntimeError):
    """A sealed segment failed to verify (not a recoverable torn tail)."""

    def __init__(self, path, offset: int, reason: str):
        super().__init__(f"{path}: corrupt frame at byte {offset}: "
                         f"{reason}")
        self.path = str(path)
        self.offset = offset
        self.reason = reason


def segment_path(directory, index: int) -> Path:
    return Path(directory) / f"segment-{index:08d}{SEGMENT_SUFFIX}"


def segment_index(path) -> int:
    match = _SEGMENT_NAME.match(Path(path).name)
    if match is None:
        raise ValueError(f"not a segment file name: {path}")
    return int(match.group(1))


def list_segments(directory) -> List[Path]:
    """The directory's segment files in index (== append) order."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = [p for p in directory.iterdir()
             if _SEGMENT_NAME.match(p.name)]
    return sorted(found, key=segment_index)


def encode_entry(entry: dict) -> bytes:
    """One framed entry: header + canonical JSON payload bytes."""
    payload = wire_json_bytes(entry)
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def scan_entries(data: bytes) -> Tuple[List[dict], int, Optional[str]]:
    """Decode framed entries from raw segment bytes.

    Returns ``(entries, valid_bytes, damage)``: every entry that
    verified, the offset of the first byte past the last good frame,
    and ``None`` when the whole buffer verified — otherwise a short
    reason (``"torn header"`` / ``"torn payload"`` / ``"crc mismatch"``
    / ``"undecodable payload"``) describing why scanning stopped.
    Everything at or after ``valid_bytes`` is unverified and must be
    either truncated (final segment: torn tail) or treated as
    corruption (sealed segment) by the caller.
    """
    entries: List[dict] = []
    offset = 0
    total = len(data)
    while offset < total:
        if offset + HEADER_BYTES > total:
            return entries, offset, "torn header"
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + HEADER_BYTES
        end = start + length
        if end > total:
            return entries, offset, "torn payload"
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return entries, offset, "crc mismatch"
        try:
            entries.append(wire_json_loads(payload))
        except ValueError:
            return entries, offset, "undecodable payload"
        offset = end
    return entries, offset, None


def read_segment(path) -> Tuple[List[dict], int, Optional[str]]:
    """:func:`scan_entries` over a segment file's bytes."""
    return scan_entries(Path(path).read_bytes())


def recover_segment(path) -> Tuple[List[dict], int]:
    """Read a segment, truncating any torn tail in place.

    Returns ``(entries, dropped_bytes)``.  Only correct for the shard's
    *final* segment — on sealed segments the journal layer raises
    :class:`SegmentCorruption` instead of calling this (see module
    docstring for why the distinction is safe).
    """
    path = Path(path)
    entries, valid_bytes, damage = read_segment(path)
    dropped = 0
    if damage is not None:
        dropped = path.stat().st_size - valid_bytes
        with open(path, "rb+") as handle:
            handle.truncate(valid_bytes)
            handle.flush()
            os.fsync(handle.fileno())
    return entries, dropped


def fsync_directory(directory) -> None:
    """Best-effort fsync of a directory entry (after create/rename/
    unlink) so the metadata change itself survives power loss."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return   # platform without directory fds: nothing to do
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class SegmentWriter:
    """Append framed entries to one segment file under a fsync policy."""

    def __init__(self, path, fsync: str = "batch"):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync policy must be one of "
                             f"{FSYNC_POLICIES}, got {fsync!r}")
        self.path = Path(path)
        self.fsync = fsync
        registry = obs.get_registry()
        self._obs_append = registry.histogram(
            metric_names.WAL_APPEND_SECONDS)
        self._obs_fsync = registry.histogram(
            metric_names.WAL_FSYNC_SECONDS)
        existed = self.path.exists()
        self._size = self.path.stat().st_size if existed else 0
        self._file = open(self.path, "ab")
        self._dirty = False
        if not existed:
            fsync_directory(self.path.parent)

    @property
    def size(self) -> int:
        """Bytes in the segment (on-disk size plus unflushed appends)."""
        return self._size

    def append(self, entry: dict) -> int:
        """Frame + write one entry; returns the frame's byte length."""
        started = obs.clock()
        frame = encode_entry(entry)
        self._file.write(frame)
        self._file.flush()   # visible to readers/crash-of-this-process
        self._size += len(frame)
        if self.fsync == "record":
            fsync_started = obs.clock()
            os.fsync(self._file.fileno())
            self._obs_fsync.observe(obs.clock() - fsync_started)
        else:
            self._dirty = True
        self._obs_append.observe(obs.clock() - started)
        return len(frame)

    def sync(self) -> None:
        """Batch-policy durability point (no-op for record/off)."""
        if self.fsync == "batch" and self._dirty:
            started = obs.clock()
            os.fsync(self._file.fileno())
            self._obs_fsync.observe(obs.clock() - started)
            self._dirty = False

    def close(self) -> None:
        """Seal the segment: flush, fsync (unless policy off), close."""
        if self._file.closed:
            return
        self._file.flush()
        if self.fsync != "off":
            os.fsync(self._file.fileno())
        self._file.close()
