"""Consistent-hash ring: deterministic student -> shard placement.

RCKT serving is shared-nothing per student — histories, forward-stream
caches, and influence computations never cross students — so the only
routing invariant a cluster needs is *stickiness*: every query for a
student must land on the shard that holds that student's state.  The
ring provides it with two properties:

* **Determinism** — placement is a pure function of ``(student_id,
  shard count, replicas)``.  Any process that builds a ring with the
  same parameters (the router, a restarted router, an offline capacity
  planner) computes identical placements; nothing about the mapping
  lives in mutable state.
* **Resize stability** — each shard owns ``replicas`` pseudo-random
  points on a 2^64 circle and a student belongs to the first shard
  point at or after its own hashed position.  Growing from N to N+1
  shards only claims the arc segments the new shard's points land in:
  in expectation exactly 1/(N+1) of students move, and every student
  that moves, moves *to the new shard* — never between two old shards
  (whose points did not change).  That is what keeps a future
  re-sharding migration's copy set minimal.

Hashing is :func:`hashlib.sha1` over a canonical byte serialization of
the student id (``int`` and ``str`` ids hash identically across
processes and Python builds — no dependence on ``hash()``
randomization).
"""

from __future__ import annotations

import bisect
import hashlib
import json
from typing import List

#: Points per shard on the ring.  More points smooth the arc-length
#: distribution (the std/mean imbalance shrinks ~ 1/sqrt(replicas)).
DEFAULT_REPLICAS = 96


def student_key(student_id) -> bytes:
    """Canonical bytes for a student id, stable across processes.

    JSON scalars (``str``, ``int``, ``float``, ``bool``, ``None``) —
    everything a wire query can carry — serialize canonically; other
    objects fall back to ``repr`` (in-process callers with exotic ids
    still get deterministic placement within one build).  A ``str`` id
    and the ``int`` it spells are deliberately distinct keys, mirroring
    the history store where ``"7"`` and ``7`` are different students.
    """
    try:
        return json.dumps(student_id, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError):
        return repr(student_id).encode("utf-8")


def _point(data: bytes) -> int:
    """A position on the 2^64 circle for arbitrary bytes."""
    return int.from_bytes(hashlib.sha1(data).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring over ``shards`` integer shard ids.

    >>> ring = HashRing(4)
    >>> ring.shard_for("student-17") == HashRing(4).shard_for("student-17")
    True
    """

    def __init__(self, shards: int, replicas: int = DEFAULT_REPLICAS):
        if shards <= 0:
            raise ValueError(f"shards must be positive, got {shards}")
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        self.shards = shards
        self.replicas = replicas
        points = []
        for shard in range(shards):
            for replica in range(replicas):
                token = f"shard:{shard}:replica:{replica}".encode("ascii")
                points.append((_point(token), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def shard_for(self, student_id) -> int:
        """The shard id owning ``student_id`` (clockwise successor)."""
        position = _point(student_key(student_id))
        index = bisect.bisect_right(self._points, position)
        if index == len(self._points):
            index = 0   # wrap past the top of the circle
        return self._owners[index]

    def partition(self, student_ids) -> List[List[int]]:
        """Indices of ``student_ids`` grouped by owning shard."""
        groups: List[List[int]] = [[] for _ in range(self.shards)]
        for index, student_id in enumerate(student_ids):
            groups[self.shard_for(student_id)].append(index)
        return groups

    def describe(self) -> dict:
        return {"shards": self.shards, "replicas": self.replicas,
                "points": len(self._points)}
