"""Sharded multi-process serving: scatter-gather over shard workers.

``repro.cluster`` scales the PR 4 typed serving API horizontally.  The
counterfactual workload is shared-nothing per student (histories,
forward-stream caches, and influence computations never cross
students), so the cluster shards *students* across worker processes
and keeps one contract above everything else: **an N-shard cluster
answers bit-identically to a single in-process**
:class:`repro.serve.Service` — through worker crashes (journal replay)
and warm blue/green rollouts alike.

* :class:`HashRing` (:mod:`repro.cluster.ring`) — deterministic,
  resize-stable student -> shard placement via consistent hashing.
* :mod:`repro.cluster.worker` — the shard worker entrypoint: the
  stock ``Service`` + ``ModelRegistry`` + HTTP gateway as one
  supervised OS process (``python -m repro.cluster.worker``).
* :class:`ScatterGatherRouter` (:mod:`repro.cluster.router`) — the
  public wire endpoint: validates envelopes, splits mixed-type batches
  by shard, fans out over persistent keep-alive connections, merges
  replies in envelope order, and surfaces per-shard failures as
  :class:`~repro.serve.protocol.ShardUnavailable` *values*.
* :class:`RecordJournal` (:mod:`repro.cluster.journal`) — per-shard
  log of acknowledged records, the crash-recovery ground truth.  With
  a directory it is a **durable write-ahead journal**: CRC-framed
  segment files (:mod:`repro.cluster.wal`) with configurable fsync,
  compacted by replay-ordered snapshots (:mod:`repro.cluster.snapshot`)
  that truncate covered segments, recovered — torn tails and all — on
  cold boot.
* :class:`Supervisor` (:mod:`repro.cluster.supervisor`) — spawns and
  babysits workers: health probes, drain + same-port restart + journal
  replay on crash, and rolling warm blue/green checkpoint rollouts
  (each worker pre-warms the standby's stream caches for its hottest
  students before the atomic swap).

``python -m repro.cluster`` boots the whole stack from checkpoint
files (``--journal-dir`` for durability + recovery-on-boot);
``--selfcheck`` runs the CI smoke: a 2-shard cluster proving
mixed-envelope bit-identity, kill-one-worker recovery, a rollout, and
(with ``--journal-dir``) a full cold boot from disk.
See ``docs/CLUSTER.md`` for semantics and operations.
"""

from .journal import RecordJournal, replay_order
from .ring import DEFAULT_REPLICAS, HashRing, student_key
from .router import (RouterHTTPServer, ScatterGatherRouter, serve_router,
                     start_router_thread)
from .supervisor import Supervisor, WorkerHandle, WorkerSpec, free_port
from .wal import FSYNC_POLICIES, SegmentCorruption

__all__ = [
    "HashRing", "DEFAULT_REPLICAS", "student_key",
    "RecordJournal", "replay_order",
    "FSYNC_POLICIES", "SegmentCorruption",
    "ScatterGatherRouter", "RouterHTTPServer", "serve_router",
    "start_router_thread",
    "Supervisor", "WorkerSpec", "WorkerHandle", "free_port",
]
