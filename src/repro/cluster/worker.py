"""Shard worker entrypoint: one ``Service`` behind the wire gateway.

A worker is deliberately boring — it *is* the PR 4 serving stack
(:class:`repro.serve.ModelRegistry` + :class:`repro.serve.Service` +
the HTTP/JSON gateway) booted as its own OS process, one per shard.
All cluster behavior lives around it: the router decides which worker
owns which student, the supervisor decides when a worker lives or
dies, and the journal decides what a reborn worker must replay — a
worker itself never touches the journal's disk state; it just answers
the replayed record envelopes like any other client traffic.
Because a worker speaks the exact single-process protocol (including
``POST /v1/admin/rollout`` for the warm blue/green swap), the
router-vs-single-``Service`` bit-identity contract reduces to "the
router splits and merges correctly".

Usage (what the supervisor spawns)::

    python -m repro.cluster.worker --checkpoint rckt.npz --port 9101
    python -m repro.cluster.worker --checkpoint prod=a.npz \\
        --checkpoint canary=b.npz --port 9102 --shard-id 1 --workers 2
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro import obs
from repro.serve.__main__ import build_parser as build_serve_parser
from repro.serve.__main__ import _engine_kwargs
from repro.serve.http_gateway import serve_http
from repro.serve.registry import ModelRegistry
from repro.serve.service import Service


def build_parser():
    """The serve CLI plus cluster-only cosmetics (``--shard-id``)."""
    parser = build_serve_parser()
    parser.prog = "python -m repro.cluster.worker"
    parser.description = ("One cluster shard: the HTTP/JSON serving "
                          "gateway as a supervised worker process")
    parser.add_argument("--shard-id", type=int, default=None,
                        help="shard index this worker serves (cosmetic: "
                             "placement lives in the router's ring; this "
                             "labels logs and process listings)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.selfcheck:
        parser.error("--selfcheck belongs to python -m repro.serve; "
                     "the cluster smoke test is python -m repro.cluster "
                     "--selfcheck")
    if not args.checkpoint:
        parser.error("--checkpoint is required")
    registry = ModelRegistry()
    for name, path in args.checkpoint:
        engine = registry.load(name, path, **_engine_kwargs(args))
        print(f"[worker{'' if args.shard_id is None else args.shard_id}] "
              f"loaded model '{name}' from {path} "
              f"({engine.num_questions} questions, "
              f"{engine.num_concepts} concepts)", flush=True)
    # Spans this process records are labelled as worker-side, and any
    # request ID it should ever mint (direct traffic bypassing the
    # router) is distinguishable from router/gateway-minted ones.
    shard_tag = "" if args.shard_id is None else str(args.shard_id)
    obs.set_id_prefix(f"w{shard_tag or '0'}")
    service = Service(registry=registry, max_batch=args.max_batch)
    server = serve_http(service, host=args.host, port=args.port,
                        verbose=args.verbose, role="worker")
    print(f"[worker{'' if args.shard_id is None else args.shard_id}] "
          f"serving {registry.names()} on "
          f"http://{args.host}:{server.server_port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
