"""Worker lifecycle: spawn, probe, drain, restart, replay, roll out.

The supervisor owns the shard workers as OS processes.  Its loop keeps
the cluster inside the bit-identity contract at all times:

* **Boot** — spawn every worker (``python -m repro.cluster.worker``) on
  its assigned port and block until its ``/v1/health`` answers; the
  router only exists once every shard is reachable.
* **Watchdog** — poll process liveness and worker health; a dead or
  persistently unhealthy worker is restarted *on its original port*
  (the ring mapping never moves) behind a router drain, and the
  shard's :class:`~repro.cluster.journal.RecordJournal` is replayed
  into the fresh process before traffic resumes — the reborn worker
  answers exactly like one that never crashed, because acknowledged
  records are the only serving state that cannot be derived.  With a
  durable (disk-backed) journal the same replay also powers **cold
  boot**: :meth:`Supervisor.replay_all` rebuilds every worker of a
  brand-new cluster process from the journal directory, so recovery
  no longer depends on any previous router process's lifetime.
* **Warm blue/green rollout** — forward a new checkpoint to each
  worker's ``/v1/admin/rollout`` one shard at a time.  Each worker
  builds the green engine, adopts live histories, pre-warms its
  forward-stream caches for that shard's hottest students, and swaps
  atomically (:meth:`repro.serve.Service.rollout`) — no downtime, no
  post-swap cold-start spike.  On success the supervisor re-points the
  shard's restart checkpoint at the new weights, so a crash *after* a
  rollout restarts onto the rolled-out model, not the boot-time one.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import repro
from repro import obs
from repro.serve.http_gateway import ServiceClient
from repro.serve.protocol import DEFAULT_MODEL, is_error, query_from_wire

from .journal import RecordJournal


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (tiny bind race: acceptable for the
    local/CI clusters this module targets)."""
    with socket.socket() as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


@dataclass
class WorkerSpec:
    """Everything needed to (re)spawn one shard worker."""

    shard_id: int
    port: int
    checkpoints: List[Tuple[str, str]]   # (model name, path)
    host: str = "127.0.0.1"
    extra_args: Tuple[str, ...] = ()     # engine flags (--workers, ...)
    log_path: Optional[str] = None

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def argv(self) -> List[str]:
        argv = [sys.executable, "-m", "repro.cluster.worker",
                "--host", self.host, "--port", str(self.port),
                "--shard-id", str(self.shard_id)]
        for name, path in self.checkpoints:
            argv += ["--checkpoint", f"{name}={path}"]
        argv += list(self.extra_args)
        return argv


@dataclass
class WorkerHandle:
    """One supervised worker's live state."""

    spec: WorkerSpec
    process: Optional[subprocess.Popen] = None
    restarts: int = 0
    health_failures: int = 0
    #: Set while a restart is owed/incomplete: the shard stays drained
    #: until a respawn *and* journal replay both succeed.
    needs_recovery: bool = False
    _log_file: object = field(default=None, repr=False)

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None


class Supervisor:
    """Spawn and babysit the shard workers of one cluster.

    Parameters
    ----------
    specs:
        One :class:`WorkerSpec` per shard, index == shard id.
    journal:
        The router-shared :class:`RecordJournal` replayed on restart.
    router:
        Optional :class:`~repro.cluster.router.ScatterGatherRouter`
        to drain/resume around restarts; also receives
        :attr:`~repro.cluster.router.ScatterGatherRouter.rollout_hook`.
    poll_interval / unhealthy_after:
        Watchdog cadence; a worker failing ``unhealthy_after``
        consecutive health probes (or whose process died) restarts.
    boot_timeout:
        Seconds to wait for a (re)spawned worker's first healthy probe.
    """

    def __init__(self, specs: Sequence[WorkerSpec],
                 journal: Optional[RecordJournal] = None,
                 router=None, poll_interval: float = 0.5,
                 unhealthy_after: int = 3, boot_timeout: float = 60.0):
        self.workers = [WorkerHandle(spec) for spec in specs]
        self.journal = journal if journal is not None else RecordJournal()
        self.router = router
        if router is not None:
            router.rollout_hook = self.rollout
        self.poll_interval = poll_interval
        self.unhealthy_after = unhealthy_after
        self.boot_timeout = boot_timeout
        self.clients = [ServiceClient(h.spec.base_url, timeout=5.0)
                        for h in self.workers]
        self._stop = threading.Event()
        self._watchdog: Optional[threading.Thread] = None
        self._lock = threading.Lock()   # serializes restart/rollout

    def attach_router(self, router) -> None:
        """Bind a router created after the workers booted (the usual
        order: supervise -> wait healthy -> route)."""
        with self._lock:
            # restart/rollout read self.router under the lock; binding
            # it unlocked could hand a half-attached router to a
            # concurrently restarting worker.
            self.router = router
        router.rollout_hook = self.rollout

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn every worker and wait until all are healthy."""
        for handle in self.workers:
            self._spawn(handle)
        for handle in self.workers:
            self._wait_healthy(handle)

    def start_watchdog(self) -> None:
        if self._watchdog is not None:
            return
        self._watchdog = threading.Thread(target=self._watch,
                                          name="rckt-cluster-watchdog",
                                          daemon=True)
        self._watchdog.start()

    def stop(self) -> None:
        """Stop the watchdog and terminate every worker."""
        self._stop.set()
        if self._watchdog is not None:
            self._watchdog.join(timeout=5.0)
            self._watchdog = None
        for handle in self.workers:
            self._terminate(handle)
        for client in self.clients:
            client.close()

    def _spawn(self, handle: WorkerHandle) -> None:
        spec = handle.spec
        env = dict(os.environ)
        # The worker must import this very checkout of `repro`,
        # wherever the parent found it.
        package_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = package_root if not existing \
            else os.pathsep.join([package_root, existing])
        if spec.log_path:
            handle._log_file = open(spec.log_path, "ab")
            stdout = stderr = handle._log_file
        else:
            stdout = stderr = subprocess.DEVNULL
        handle.process = subprocess.Popen(spec.argv(), env=env,
                                          stdout=stdout, stderr=stderr)
        handle.health_failures = 0

    def _terminate(self, handle: WorkerHandle) -> None:
        process = handle.process
        if process is not None and process.poll() is None:
            process.terminate()
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        if handle._log_file is not None:
            handle._log_file.close()
            handle._log_file = None

    def _wait_healthy(self, handle: WorkerHandle) -> None:
        client = self.clients[handle.spec.shard_id]
        deadline = obs.clock() + self.boot_timeout
        while obs.clock() < deadline:
            if not handle.alive:
                raise RuntimeError(
                    f"worker {handle.spec.shard_id} exited with code "
                    f"{handle.process.returncode} during boot "
                    f"(log: {handle.spec.log_path or 'discarded'})")
            try:
                if client.health().get("status") == "ok":
                    handle.health_failures = 0
                    return
            except Exception:  # noqa: BLE001 — boot probe
                pass
            obs.sleep(0.05)
        raise RuntimeError(f"worker {handle.spec.shard_id} did not become "
                           f"healthy within {self.boot_timeout}s")

    # ------------------------------------------------------------------
    # Watchdog + crash recovery
    # ------------------------------------------------------------------
    def _watch(self) -> None:
        while not self._stop.wait(self.poll_interval):
            try:
                self.check_once()
            except Exception:  # noqa: BLE001 — the watchdog must survive
                pass

    def check_once(self) -> None:
        """One probe round: restart any dead/unhealthy/unrecovered
        worker.  A restart that fails (boot or replay) leaves
        ``needs_recovery`` set — the shard stays drained and is retried
        on the next round rather than silently serving without its
        journal."""
        for handle in self.workers:
            if self._stop.is_set():
                return
            shard = handle.spec.shard_id
            if not handle.alive or handle.needs_recovery:
                self._try_restart(shard)
                continue
            try:
                healthy = self.clients[shard].health() \
                    .get("status") == "ok"
            except Exception:  # noqa: BLE001 — probe boundary
                healthy = False
            if healthy:
                handle.health_failures = 0
            else:
                handle.health_failures += 1
                if handle.health_failures >= self.unhealthy_after:
                    self._try_restart(shard)

    def _try_restart(self, shard: int) -> None:
        """Watchdog wrapper: a failed restart must not kill the probe
        loop for the other shards (the shard stays drained and flagged
        for another attempt)."""
        try:
            self.restart(shard)
        except Exception:  # noqa: BLE001 — retried next round
            pass

    def restart(self, shard: int) -> None:
        """Drain, respawn on the same port, replay the journal, resume.

        Routing only resumes after a **successful** replay: a reborn
        worker missing acknowledged records would silently break the
        bit-identity contract, so on boot or replay failure the shard
        stays drained (queries keep answering ``shard_unavailable``)
        and ``needs_recovery`` marks it for another restart attempt.
        """
        with self._lock:
            handle = self.workers[shard]
            if self.router is not None:
                self.router.drain(shard)
            handle.needs_recovery = True
            self._terminate(handle)
            self._spawn(handle)
            handle.restarts += 1
            self._wait_healthy(handle)
            self.replay(shard)
            handle.needs_recovery = False
            handle.health_failures = 0
            if self.router is not None:
                self.router.resume(shard)

    def replay(self, shard: int) -> int:
        """Re-apply the shard's acknowledged records, in journal order.

        Returns the number of replayed records; raises ``RuntimeError``
        if any replayed record is rejected (that would mean the journal
        and the checkpoint disagree — a bug worth failing loudly on).
        """
        client = self.clients[shard]
        replayed = 0
        for envelope in self.journal.envelopes(shard):
            queries = [query_from_wire(q) for q in envelope["queries"]]
            replies = client.batch(queries)
            bad = [r for r in replies if is_error(r)]
            if bad:
                raise RuntimeError(f"journal replay rejected on shard "
                                   f"{shard}: {bad[0]}")
            replayed += len(queries)
        return replayed

    def replay_all(self) -> int:
        """Replay every shard's journal into its (fresh) worker.

        The cold-boot path: after :meth:`start` brings up empty workers
        from checkpoints, this rebuilds their histories from a durable
        journal recovered off disk.  Returns the total replayed record
        count.  Raises like :meth:`replay` on any rejected record.
        """
        return sum(self.replay(handle.spec.shard_id)
                   for handle in self.workers)

    # ------------------------------------------------------------------
    # Warm blue/green rollout
    # ------------------------------------------------------------------
    def rollout(self, checkpoint, model: str = None,
                warm_top: int = None) -> List[object]:
        """Roll a new checkpoint across the shards, one worker at a time.

        Stops at the first failing shard (the remaining workers keep
        the old weights — inspect the returned list and retry).  On
        each success the shard's restart checkpoint is re-pointed, so
        crash recovery restores the *rolled-out* model.
        """
        name = model if model is not None else DEFAULT_MODEL
        results: List[object] = []
        with self._lock:
            for handle in self.workers:
                shard = handle.spec.shard_id
                try:
                    result = self.clients[shard].rollout(
                        checkpoint, model=model, warm_top=warm_top)
                except Exception as error:  # noqa: BLE001 — fan-out
                    from repro.serve.protocol import ShardUnavailable
                    result = ShardUnavailable(
                        f"shard {shard} ({handle.spec.base_url}) is "
                        f"unavailable: {type(error).__name__}: {error}",
                        details={"shard": shard,
                                 "url": handle.spec.base_url})
                results.append(result)
                if is_error(result):
                    break
                handle.spec.checkpoints = [
                    (n, str(checkpoint) if n == name else p)
                    for n, p in handle.spec.checkpoints]
        return results
