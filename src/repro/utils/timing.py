"""Timing shim: the bench's ``Timer`` now lives in :mod:`repro.obs`.

The Table VI efficiency bench (and anything else) keeps importing
``repro.utils.timing.Timer``; the implementation moved into the obs
layer so one stopwatch serves benches, spans, and histograms alike.
"""

from __future__ import annotations

from repro.obs.metrics import Timer

__all__ = ["Timer"]
