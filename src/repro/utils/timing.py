"""Lightweight wall-clock timing used by the Table VI efficiency bench."""

from __future__ import annotations

import time


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed_ms >= 0
    True
    """

    def __init__(self) -> None:
        self.elapsed_s = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed_s = time.perf_counter() - self._start

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_s * 1000.0
