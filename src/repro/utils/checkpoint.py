"""Model checkpointing: state dicts to/from ``.npz`` files.

The module system (:class:`repro.nn.Module`) exposes ``state_dict`` /
``load_state_dict``; these helpers persist them with NumPy's compressed
archive format plus a small JSON header for configuration echoes, so a
trained RCKT (or any baseline) can be shipped and reloaded without
retraining.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

_META_KEY = "__checkpoint_meta__"


def save_checkpoint(path: Union[str, Path], state: Dict[str, np.ndarray],
                    metadata: Optional[Dict[str, Any]] = None) -> None:
    """Write a state dict (and JSON-serializable metadata) to ``path``.

    Parameter names may contain dots (``fc1.weight``); they are stored
    verbatim as npz keys.
    """
    path = Path(path)
    if _META_KEY in state:
        raise ValueError(f"'{_META_KEY}' is reserved for checkpoint metadata")
    payload = dict(state)
    payload[_META_KEY] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(path, **payload)


def load_checkpoint(path: Union[str, Path]
                    ) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Read back ``(state_dict, metadata)`` written by :func:`save_checkpoint`."""
    path = Path(path)
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise ValueError(f"{path} is not a repro checkpoint "
                             f"(missing metadata record)")
        metadata = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
        state = {key: archive[key] for key in archive.files
                 if key != _META_KEY}
    return state, metadata


def save_model(path: Union[str, Path], model,
               metadata: Optional[Dict[str, Any]] = None) -> None:
    """Persist any :class:`repro.nn.Module`'s parameters."""
    save_checkpoint(path, model.state_dict(), metadata)


def load_model(path: Union[str, Path], model) -> Dict[str, Any]:
    """Restore parameters into ``model`` in place; returns the metadata."""
    state, metadata = load_checkpoint(path)
    model.load_state_dict(state)
    return metadata
