"""Finite-difference gradient verification for the autodiff substrate.

Since the whole reproduction rests on a from-scratch autodiff engine, we
verify analytic gradients against central finite differences both in unit
tests and (optionally) when developing new layers.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor import Tensor


def numerical_gradient(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                       index: int, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of ``fn`` w.r.t. ``inputs[index]``.

    ``fn`` must return a scalar Tensor.  Inputs are perturbed in place and
    restored, so the caller's tensors are unchanged on return.
    """
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(*inputs).item()
        flat[i] = original - eps
        minus = fn(*inputs).item()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
              eps: float = 1e-6, atol: float = 1e-5, rtol: float = 1e-4) -> bool:
    """Compare autodiff gradients of ``fn`` against finite differences.

    Raises ``AssertionError`` with a diagnostic message on mismatch; returns
    True when all input gradients agree within tolerance.
    """
    for tensor in inputs:
        tensor.zero_grad()
    out = fn(*inputs)
    if out.data.size != 1:
        raise ValueError("gradcheck requires a scalar-valued function")
    out.backward()
    for i, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}")
    return True
