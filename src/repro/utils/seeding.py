"""Deterministic random-generator management.

Every stochastic component (initializers, dropout, data simulators,
shuffling) receives an explicit ``numpy.random.Generator``.  These helpers
derive independent child generators from a run seed so that adding a new
consumer never perturbs the streams of existing ones.
"""

from __future__ import annotations

import hashlib
from typing import List

import numpy as np


def stable_hash(name: str) -> int:
    """Process-independent 32-bit hash of a string.

    Python's builtin ``hash`` is randomized per process (PYTHONHASHSEED),
    which would make seeds derived from component names non-reproducible
    across runs.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little")


def derive_rng(seed: int, *names: str) -> np.random.Generator:
    """Derive a generator from ``seed`` and a path of component names.

    ``derive_rng(7, "model", "dropout")`` always yields the same stream, and
    streams with different name paths are statistically independent.
    """
    entropy = [seed] + [stable_hash(name) for name in names]
    return np.random.default_rng(np.random.SeedSequence(entropy))


def spawn_rngs(seed: int, count: int) -> List[np.random.Generator]:
    """Split a seed into ``count`` independent generators."""
    return [np.random.default_rng(child)
            for child in np.random.SeedSequence(seed).spawn(count)]
