"""Shared utilities: seeding, timing, numerical grad-checking."""

from .checkpoint import (load_checkpoint, load_model, save_checkpoint,
                         save_model)
from .gradcheck import gradcheck, numerical_gradient
from .seeding import derive_rng, spawn_rngs, stable_hash
from .timing import Timer

__all__ = ["gradcheck", "numerical_gradient", "derive_rng", "spawn_rngs",
           "stable_hash", "Timer",
           "save_checkpoint", "load_checkpoint", "save_model", "load_model"]
