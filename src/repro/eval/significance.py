"""Statistical significance testing (Table IV's T-test, p <= 0.01)."""

from __future__ import annotations

from typing import Sequence, Tuple

from scipy import stats


def paired_t_test(a: Sequence[float], b: Sequence[float]) -> Tuple[float, float]:
    """Paired t-test over per-fold metric values; returns (t, p).

    The paper marks RCKT results with ``*`` when the improvement over the
    best baseline is significant at p <= 0.01 across cross-validation folds.
    """
    if len(a) != len(b):
        raise ValueError("paired test needs equal-length samples")
    if len(a) < 2:
        raise ValueError("need at least two paired observations")
    result = stats.ttest_rel(a, b)
    return float(result.statistic), float(result.pvalue)


def is_significant(a: Sequence[float], b: Sequence[float],
                   alpha: float = 0.01) -> bool:
    """One-sided check that ``a`` beats ``b`` significantly."""
    t, p = paired_t_test(a, b)
    return t > 0 and (p / 2) <= alpha
