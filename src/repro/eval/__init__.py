"""Evaluation: metrics, early stopping, significance tests."""

from .early_stopping import EarlyStopping
from .metrics import accuracy_score, auc_score
from .significance import is_significant, paired_t_test

__all__ = ["auc_score", "accuracy_score", "EarlyStopping",
           "paired_t_test", "is_significant"]
