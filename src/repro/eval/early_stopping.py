"""Early stopping on validation performance.

Sec. V-A2: training stops when validation performance has not improved for
10 consecutive epochs; the best-epoch weights are restored.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


class EarlyStopping:
    """Tracks a maximized metric and stores the best model state."""

    def __init__(self, patience: int = 10, min_delta: float = 0.0):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.min_delta = min_delta
        self.best_value: float = -np.inf
        self.best_state: Optional[Dict[str, np.ndarray]] = None
        self.best_epoch: int = -1
        self._bad_epochs = 0

    def update(self, value: float, epoch: int,
               state: Optional[Dict[str, np.ndarray]] = None) -> bool:
        """Record an epoch result; returns True when training should stop."""
        if value > self.best_value + self.min_delta:
            self.best_value = value
            self.best_epoch = epoch
            self.best_state = state
            self._bad_epochs = 0
            return False
        self._bad_epochs += 1
        return self._bad_epochs >= self.patience

    @property
    def should_restore(self) -> bool:
        return self.best_state is not None
