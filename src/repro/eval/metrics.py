"""Binary-classification metrics: AUC and ACC (Sec. V-A2).

Implemented from scratch (no sklearn in this environment).  AUC uses the
rank formulation with midrank tie handling, equivalent to the trapezoidal
ROC integral.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.stats import rankdata


def auc_score(labels: Sequence[float], scores: Sequence[float]) -> float:
    """Area under the ROC curve via the Mann-Whitney rank statistic.

    Raises ``ValueError`` when only one class is present (AUC undefined).
    """
    labels = np.asarray(labels, dtype=np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise ValueError(f"shape mismatch: {labels.shape} vs {scores.shape}")
    if labels.size == 0:
        raise ValueError("empty input")
    positives = int((labels == 1).sum())
    negatives = int((labels == 0).sum())
    if positives == 0 or negatives == 0:
        raise ValueError("AUC undefined with a single class")
    ranks = rankdata(scores)  # midranks for ties
    positive_rank_sum = ranks[labels == 1].sum()
    return float((positive_rank_sum - positives * (positives + 1) / 2.0)
                 / (positives * negatives))


def accuracy_score(labels: Sequence[float], scores: Sequence[float],
                   threshold: float = 0.5) -> float:
    """Fraction of correct binary decisions at ``threshold``.

    The paper thresholds predictive scores at gamma (0.5 for probability
    outputs; RCKT's influence-difference score uses 0 — callers pass the
    appropriate threshold).
    """
    labels = np.asarray(labels, dtype=np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise ValueError(f"shape mismatch: {labels.shape} vs {scores.shape}")
    if labels.size == 0:
        raise ValueError("empty input")
    predictions = (scores >= threshold).astype(np.float64)
    return float((predictions == labels).mean())
