"""Core feed-forward layers: Linear, Embedding, Dropout, LayerNorm, MLP."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.tensor import Tensor, init, ops

from .module import Module


class Linear(Module):
    """Affine map ``y = x W + b`` over the trailing dimension."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = init.xavier_uniform((in_features, out_features), rng)
        self.bias = init.zeros((out_features,)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def forward_np(self, x: np.ndarray) -> np.ndarray:
        """No-grad NumPy twin of :meth:`forward` (serving step kernels)."""
        out = x @ self.weight.data
        if self.bias is not None:
            out = out + self.bias.data
        return out


class Embedding(Module):
    """ID-to-vector lookup table.

    Index 0 is conventionally the padding ID in this repository; callers
    mask padded positions explicitly, so no special handling is needed here.
    """

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator,
                 std: float = 0.02):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = init.normal((num_embeddings, dim), std, rng)

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices)
        if indices.max(initial=0) >= self.num_embeddings or indices.min(initial=0) < 0:
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings})")
        return ops.embedding(self.weight, indices)


class Dropout(Module):
    """Inverted dropout; inactive in eval mode."""

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return ops.dropout(x, self.rate, self._rng, training=self.training)


class LayerNorm(Module):
    """Layer normalization over the trailing dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = init.ones((dim,))
        self.beta = init.zeros((dim,))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (variance + self.eps).sqrt()
        return normed * self.gamma + self.beta

    def forward_np(self, x: np.ndarray) -> np.ndarray:
        """No-grad NumPy twin of :meth:`forward`, op-for-op."""
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / np.sqrt(variance + self.eps)
        return normed * self.gamma.data + self.beta.data


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class MLP(Module):
    """Stack of Linear layers with ReLU activations and optional dropout.

    The paper's prediction head (Eq. 26) is the two-layer instance
    ``MLP([2d, d, 1])`` followed by a sigmoid applied by the caller.
    """

    def __init__(self, sizes: Sequence[int], rng: np.random.Generator,
                 dropout: float = 0.0,
                 dropout_rng: Optional[np.random.Generator] = None):
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least an input and output size")
        from .module import ModuleList
        self.layers = ModuleList([
            Linear(a, b, rng) for a, b in zip(sizes[:-1], sizes[1:])
        ])
        self.dropout = (Dropout(dropout, dropout_rng or rng)
                        if dropout > 0 else None)

    def forward(self, x: Tensor) -> Tensor:
        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i != last:
                x = x.relu()
                if self.dropout is not None:
                    x = self.dropout(x)
        return x
