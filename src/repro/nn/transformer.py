"""Transformer encoder blocks and positional encodings.

Used by the SAKT and AKT baselines and by the bidirectional RCKT encoders
(RCKT-SAKT, RCKT-AKT), which stack these blocks "in a multi-layer style"
(Sec. IV-D1).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.tensor import Tensor

from .attention import MultiHeadAttention
from .layers import Dropout, LayerNorm, Linear
from .module import Module, ModuleList


def sinusoidal_positions(length: int, dim: int) -> np.ndarray:
    """Classic fixed sinusoidal positional table, shape ``(length, dim)``."""
    positions = np.arange(length)[:, None].astype(np.float64)
    dims = np.arange(dim)[None, :].astype(np.float64)
    angle_rates = 1.0 / np.power(10000.0, (2 * (dims // 2)) / dim)
    table = positions * angle_rates
    table[:, 0::2] = np.sin(table[:, 0::2])
    table[:, 1::2] = np.cos(table[:, 1::2])
    return table


class PositionalEncoding(Module):
    """Adds fixed sinusoidal position information to a (B, L, D) tensor.

    The table starts at ``initial_length`` rows and grows geometrically on
    demand: sinusoidal positions are a pure function of the index, so a
    grown table's prefix is bit-identical to the original and any sequence
    length encodes exactly as it would have with a bigger initial table.
    Growth replaces the whole array atomically (readers that captured the
    old reference keep a consistent — merely shorter — table), which keeps
    concurrent inference threads safe without a lock: racing growers
    compute identical tables.
    """

    def __init__(self, initial_length: int, dim: int):
        super().__init__()
        self.dim = dim
        self._table = sinusoidal_positions(initial_length, dim)

    def ensure(self, length: int) -> np.ndarray:
        """Return a table covering at least ``length`` positions.

        Use the *returned* reference rather than re-reading the attribute:
        the attribute may be swapped again by a concurrent caller.
        """
        table = self._table
        if length <= table.shape[0]:
            return table
        grown = max(length, 2 * table.shape[0])
        table = sinusoidal_positions(grown, self.dim)
        self._table = table
        return table

    def forward(self, x: Tensor) -> Tensor:
        length = x.shape[1]
        table = self.ensure(length)
        return x + Tensor(table[:length])


class FeedForward(Module):
    """Position-wise two-layer FFN with ReLU."""

    def __init__(self, dim: int, hidden: int, rng: np.random.Generator,
                 dropout: float = 0.0):
        super().__init__()
        self.fc1 = Linear(dim, hidden, rng)
        self.fc2 = Linear(hidden, dim, rng)
        self.dropout = Dropout(dropout, rng) if dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.fc1(x).relu()
        if self.dropout is not None:
            hidden = self.dropout(hidden)
        return self.fc2(hidden)

    def forward_np(self, x: np.ndarray) -> np.ndarray:
        """No-grad NumPy twin (eval mode: dropout is identity)."""
        hidden = self.fc1.forward_np(x)
        hidden = hidden * (hidden > 0)  # Tensor.relu's exact formulation
        return self.fc2.forward_np(hidden)


class TransformerBlock(Module):
    """Post-LN transformer encoder block (attention + FFN, residuals)."""

    def __init__(self, dim: int, heads: int, rng: np.random.Generator,
                 ffn_hidden: Optional[int] = None, dropout: float = 0.0,
                 monotonic: bool = False):
        super().__init__()
        self.attention = MultiHeadAttention(dim, heads, rng, dropout=dropout,
                                            monotonic=monotonic)
        self.ffn = FeedForward(dim, ffn_hidden or 2 * dim, rng, dropout=dropout)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)
        self.dropout = Dropout(dropout, rng) if dropout > 0 else None

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None,
                context: Optional[Tensor] = None) -> Tensor:
        """Self-attention when ``context`` is None, else cross-attention."""
        source = context if context is not None else x
        attended = self.attention(x, source, source, mask=mask)
        if self.dropout is not None:
            attended = self.dropout(attended)
        x = self.norm1(x + attended)
        ffn_out = self.ffn(x)
        if self.dropout is not None:
            ffn_out = self.dropout(ffn_out)
        return self.norm2(x + ffn_out)

    def step_inference(self, x: np.ndarray, kv_cache) -> np.ndarray:
        """Self-attention step for one appended position (no-grad, eval).

        ``x`` is the ``(B, D)`` block input at the new position;
        ``kv_cache`` is the block's :class:`~repro.nn.attention.KVCache`
        holding the projected prefix, which this call extends in place
        before attending (non-strict causal: the position sees itself).
        Returns the block output at the new position.
        """
        k, v = self.attention.project_kv_step(x)
        kv_cache.append(k, v)
        keys, values = kv_cache.view()
        attended = self.attention.attend_step(x, keys, values,
                                              kv_cache.length - 1)
        x = self.norm1.forward_np(x + attended)
        return self.norm2.forward_np(x + self.ffn.forward_np(x))


class TransformerEncoder(Module):
    """Stack of :class:`TransformerBlock` sharing one attention mask."""

    def __init__(self, dim: int, heads: int, layers: int,
                 rng: np.random.Generator, dropout: float = 0.0,
                 monotonic: bool = False):
        super().__init__()
        self.blocks = ModuleList([
            TransformerBlock(dim, heads, rng, dropout=dropout,
                             monotonic=monotonic)
            for _ in range(layers)
        ])

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        for block in self.blocks:
            x = block(x, mask=mask)
        return x

    @property
    def last_attention_weights(self) -> Optional[np.ndarray]:
        """Attention weights of the final block's last forward pass."""
        return self.blocks[len(self.blocks) - 1].attention.last_weights
