"""Recurrent layers: LSTM cell, unidirectional LSTM, bidirectional LSTM.

DKT (Piech et al., 2015) uses an LSTM; RCKT-DKT extends it bidirectionally
(BiLSTM, Sec. V-A4 of the paper).  The bidirectional variant here exposes
the *shifted* outputs the RCKT encoder needs: the forward state at position
``i`` summarizes inputs ``1..i`` and the backward state summarizes inputs
``i..L``, so Eq. 25's strict exclusion of position ``i`` is implemented by
the caller indexing ``forward[i-1]`` and ``backward[i+1]``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tensor import Tensor, concat, init, stack

from .module import Module


class LSTMCell(Module):
    """Single LSTM step with fused gate weights (order: i, f, g, o)."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.weight_x = init.xavier_uniform((input_dim, 4 * hidden_dim), rng)
        self.weight_h = init.xavier_uniform((hidden_dim, 4 * hidden_dim), rng)
        bias = np.zeros(4 * hidden_dim)
        # Standard trick: initialize the forget-gate bias to 1 so early
        # training does not wash out the cell state.
        bias[hidden_dim:2 * hidden_dim] = 1.0
        self.bias = Tensor(bias, requires_grad=True)

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        z = x @ self.weight_x + h_prev @ self.weight_h + self.bias
        hidden = self.hidden_dim
        i_gate = z[:, 0 * hidden:1 * hidden].sigmoid()
        f_gate = z[:, 1 * hidden:2 * hidden].sigmoid()
        g_gate = z[:, 2 * hidden:3 * hidden].tanh()
        o_gate = z[:, 3 * hidden:4 * hidden].sigmoid()
        c_new = f_gate * c_prev + i_gate * g_gate
        h_new = o_gate * c_new.tanh()
        return h_new, c_new

    def initial_state(self, batch: int) -> Tuple[Tensor, Tensor]:
        zeros = Tensor(np.zeros((batch, self.hidden_dim)))
        return zeros, zeros


class LSTM(Module):
    """Unidirectional LSTM over a ``(batch, length, dim)`` sequence."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator,
                 reverse: bool = False):
        super().__init__()
        self.cell = LSTMCell(input_dim, hidden_dim, rng)
        self.hidden_dim = hidden_dim
        self.reverse = reverse

    def forward(self, x: Tensor,
                state: Optional[Tuple[Tensor, Tensor]] = None) -> Tensor:
        """Return the hidden state after each step, shape ``(B, L, H)``.

        With ``reverse=True`` the sequence is consumed right-to-left but the
        outputs are returned in the original order: position ``i`` then
        holds the state after consuming inputs ``i..L``.
        """
        batch, length, _ = x.shape
        if state is None:
            state = self.cell.initial_state(batch)
        steps = range(length - 1, -1, -1) if self.reverse else range(length)
        outputs: list = [None] * length
        h, c = state
        for t in steps:
            h, c = self.cell(x[:, t, :], (h, c))
            outputs[t] = h
        return stack(outputs, axis=1)


class BiLSTM(Module):
    """Forward + backward LSTM pair returning both directions separately.

    Unlike the usual concatenating BiLSTM, the two streams are kept apart
    because RCKT sums *shifted* views of them (Eq. 25).
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.forward_lstm = LSTM(input_dim, hidden_dim, rng)
        self.backward_lstm = LSTM(input_dim, hidden_dim, rng, reverse=True)
        self.hidden_dim = hidden_dim

    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        return self.forward_lstm(x), self.backward_lstm(x)
