"""Recurrent layers: LSTM cell, unidirectional LSTM, bidirectional LSTM.

DKT (Piech et al., 2015) uses an LSTM; RCKT-DKT extends it bidirectionally
(BiLSTM, Sec. V-A4 of the paper).  The bidirectional variant here exposes
the *shifted* outputs the RCKT encoder needs: the forward state at position
``i`` summarizes inputs ``1..i`` and the backward state summarizes inputs
``i..L``, so Eq. 25's strict exclusion of position ``i`` is implemented by
the caller indexing ``forward[i-1]`` and ``backward[i+1]``.
"""

from __future__ import annotations

import contextlib
from typing import Optional, Tuple

import numpy as np

from repro.tensor import (Tensor, init, is_grad_enabled, sigmoid_array,
                          stack, where)

from .module import Module


_INFERENCE_KERNEL = True


@contextlib.contextmanager
def inference_kernel(enabled: bool):
    """Toggle the fused no-grad LSTM kernel (default on).

    ``inference_kernel(False)`` runs the original per-step autograd cell
    even under ``no_grad`` — a debugging aid for comparing the kernel
    and graph paths directly (see ``tests/nn/test_rnn.py``).  Note the
    inference benchmarks do *not* use this: both arms of
    ``benchmarks/bench_inference.py`` share the kernel, so the reported
    speedups are purely structural (batching/stream sharing), not
    kernel-vs-no-kernel.
    """
    global _INFERENCE_KERNEL
    previous = _INFERENCE_KERNEL
    _INFERENCE_KERNEL = enabled
    try:
        yield
    finally:
        _INFERENCE_KERNEL = previous


def _lstm_gate_step(projected_t: np.ndarray, h: np.ndarray, c: np.ndarray,
                    weight_h: np.ndarray, bias: np.ndarray,
                    hidden: int) -> Tuple[np.ndarray, np.ndarray]:
    """One fused-gate LSTM step on pre-projected inputs (no-grad NumPy).

    Shared by the batched inference kernel and the serving single-step
    extension path so the two stay numerically aligned op-for-op.
    """
    z = (projected_t + h @ weight_h) + bias
    in_forget = sigmoid_array(z[:, :2 * hidden])
    i_gate = in_forget[:, :hidden]
    f_gate = in_forget[:, hidden:]
    g_gate = np.tanh(z[:, 2 * hidden:3 * hidden])
    o_gate = sigmoid_array(z[:, 3 * hidden:])
    c_new = f_gate * c + i_gate * g_gate
    h_new = o_gate * np.tanh(c_new)
    return h_new, c_new


class LSTMCell(Module):
    """Single LSTM step with fused gate weights (order: i, f, g, o)."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.weight_x = init.xavier_uniform((input_dim, 4 * hidden_dim), rng)
        self.weight_h = init.xavier_uniform((hidden_dim, 4 * hidden_dim), rng)
        bias = np.zeros(4 * hidden_dim)
        # Standard trick: initialize the forget-gate bias to 1 so early
        # training does not wash out the cell state.
        bias[hidden_dim:2 * hidden_dim] = 1.0
        self.bias = Tensor(bias, requires_grad=True)

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        z = x @ self.weight_x + h_prev @ self.weight_h + self.bias
        hidden = self.hidden_dim
        i_gate = z[:, 0 * hidden:1 * hidden].sigmoid()
        f_gate = z[:, 1 * hidden:2 * hidden].sigmoid()
        g_gate = z[:, 2 * hidden:3 * hidden].tanh()
        o_gate = z[:, 3 * hidden:4 * hidden].sigmoid()
        c_new = f_gate * c_prev + i_gate * g_gate
        h_new = o_gate * c_new.tanh()
        return h_new, c_new

    def initial_state(self, batch: int) -> Tuple[Tensor, Tensor]:
        zeros = Tensor(np.zeros((batch, self.hidden_dim)))
        return zeros, zeros


class LSTM(Module):
    """Unidirectional LSTM over a ``(batch, length, dim)`` sequence."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator,
                 reverse: bool = False):
        super().__init__()
        self.cell = LSTMCell(input_dim, hidden_dim, rng)
        self.hidden_dim = hidden_dim
        self.reverse = reverse

    def forward(self, x: Tensor,
                state: Optional[Tuple[Tensor, Tensor]] = None,
                mask: Optional[np.ndarray] = None) -> Tensor:
        """Return the hidden state after each step, shape ``(B, L, H)``.

        With ``reverse=True`` the sequence is consumed right-to-left but the
        outputs are returned in the original order: position ``i`` then
        holds the state after consuming inputs ``i..L``.

        ``mask`` (``(B, L)`` bool, True at real steps) makes the recurrence
        skip padded steps entirely: state carries through unchanged and the
        carried state is emitted.  A reversed LSTM whose row is padded after
        position ``t`` therefore reaches ``t`` with its initial (zero)
        state, exactly as if the sequence ended there — this is what lets
        one full-length padded batch reproduce exact-length prefix batches
        bit-for-bit (the multi-target fast path relies on it).
        """
        batch, length, _ = x.shape
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
        if state is None:
            if _INFERENCE_KERNEL and not is_grad_enabled():
                return Tensor(self._forward_inference(x.data, mask))
            state = self.cell.initial_state(batch)
        steps = range(length - 1, -1, -1) if self.reverse else range(length)
        outputs: list = [None] * length
        h, c = state
        for t in steps:
            h_new, c_new = self.cell(x[:, t, :], (h, c))
            if mask is not None:
                step = mask[:, t][:, None]
                h_new = where(step, h_new, h)
                c_new = where(step, c_new, c)
            h, c = h_new, c_new
            outputs[t] = h
        return stack(outputs, axis=1)

    def _forward_inference(self, x: np.ndarray,
                           mask: Optional[np.ndarray]) -> np.ndarray:
        """No-grad kernel; see :meth:`forward_inference_with_state`."""
        outputs, _, _ = self.forward_inference_with_state(x, mask)
        return outputs

    def forward_inference_with_state(
            self, x: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """No-grad kernel returning ``(outputs, h, c)``.

        Raw-NumPy recurrence with the input projection hoisted into one
        ``(B*L, D) @ (D, 4H)`` gemm instead of one small gemm per step.
        The per-element gate math matches the autograd cell (shared
        :func:`repro.tensor.sigmoid_array`).

        The returned ``(h, c)`` is each row's carry state after its last
        *real* step (the mask freezes state through trailing padding), so
        a caller can keep extending the recurrence one step at a time via
        :meth:`step_inference` — the serving forward-stream cache.
        """
        cell = self.cell
        batch, length, _ = x.shape
        hidden = cell.hidden_dim
        projected = (x.reshape(batch * length, -1) @ cell.weight_x.data)
        projected = projected.reshape(batch, length, 4 * hidden)
        # Step-major layout keeps each step's slab contiguous in cache.
        projected = np.ascontiguousarray(projected.swapaxes(0, 1))
        weight_h = cell.weight_h.data
        bias = cell.bias.data
        h = np.zeros((batch, hidden))
        c = np.zeros((batch, hidden))
        outputs = np.empty((batch, length, hidden))
        steps = range(length - 1, -1, -1) if self.reverse else range(length)
        for t in steps:
            h_new, c_new = _lstm_gate_step(projected[t], h, c, weight_h,
                                           bias, hidden)
            if mask is not None:
                step = mask[:, t]
                # Column-sorted target chunks make most steps all-active;
                # the select is only paid where rows actually diverge.
                if not step.all():
                    step = step[:, None]
                    h_new = np.where(step, h_new, h)
                    c_new = np.where(step, c_new, c)
            h, c = h_new, c_new
            outputs[:, t, :] = h
        return outputs, h, c

    def step_inference(self, x: np.ndarray, h: np.ndarray,
                       c: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """One no-grad recurrence step: ``(B, D)`` input, carried state in,
        new ``(h, c)`` out.  Shares the gate math with the batch kernel so
        incrementally extended streams track re-encoded ones to roundoff.
        Meaningless for ``reverse=True`` layers (anti-causal state cannot
        be extended on the right); callers only cache forward streams.
        """
        cell = self.cell
        projected = x @ cell.weight_x.data
        return _lstm_gate_step(projected, h, c, cell.weight_h.data,
                               cell.bias.data, cell.hidden_dim)


class BiLSTM(Module):
    """Forward + backward LSTM pair returning both directions separately.

    Unlike the usual concatenating BiLSTM, the two streams are kept apart
    because RCKT sums *shifted* views of them (Eq. 25).
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.forward_lstm = LSTM(input_dim, hidden_dim, rng)
        self.backward_lstm = LSTM(input_dim, hidden_dim, rng, reverse=True)
        self.hidden_dim = hidden_dim

    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        return self.forward_lstm(x), self.backward_lstm(x)
