"""Attention layers: scaled dot-product, multi-head, and AKT-style
monotonic (distance-decaying) attention.

SAKT (Pandey & Karypis, 2019) uses standard multi-head attention; AKT
(Ghosh et al., 2020) multiplies attention logits by an exponential decay in
the distance between the query and key positions so older interactions
matter less.  The paper's RCKT-AKT notes that "monotonic attention can also
be made bi-directional due to the duality of distance": we implement the
decay on ``|i - j|`` so the same layer serves both directions.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tensor import Tensor, init, masked_softmax

from .layers import Dropout, Linear
from .module import Module


def _softplus(x: Tensor) -> Tensor:
    """Numerically adequate softplus for small-magnitude decay parameters."""
    return (x.clip(-30.0, 30.0).exp() + 1.0).log()


def _softplus_array(x: np.ndarray) -> np.ndarray:
    """Raw-NumPy twin of :func:`_softplus` (same ops, same roundoff)."""
    return np.log(np.exp(np.clip(x, -30.0, 30.0)) + 1.0)


class KVCache:
    """Growable projected key/value prefix for one attention layer.

    Serving keeps one of these per (student, encoder layer): the causal
    forward stream only ever *appends* positions, so the projected keys
    and values of the prefix can be reused verbatim while each new step
    attends over them (:meth:`MultiHeadAttention.attend_step`).  Arrays
    grow geometrically like :class:`repro.serve.history.StudentHistory`.
    """

    __slots__ = ("keys", "values", "length")

    INITIAL_CAPACITY = 8

    def __init__(self, rows: int, dim: int,
                 keys: Optional[np.ndarray] = None,
                 values: Optional[np.ndarray] = None):
        if keys is not None:
            self.length = keys.shape[1]
            capacity = max(self.length, self.INITIAL_CAPACITY)
            self.keys = np.empty((rows, capacity, dim))
            self.values = np.empty((rows, capacity, dim))
            self.keys[:, :self.length] = keys
            self.values[:, :self.length] = values
        else:
            self.length = 0
            self.keys = np.empty((rows, self.INITIAL_CAPACITY, dim))
            self.values = np.empty((rows, self.INITIAL_CAPACITY, dim))

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Add one position: ``k``/``v`` are ``(rows, dim)``."""
        capacity = self.keys.shape[1]
        if self.length == capacity:
            rows, _, dim = self.keys.shape
            grown_k = np.empty((rows, 2 * capacity, dim))
            grown_v = np.empty((rows, 2 * capacity, dim))
            grown_k[:, :capacity] = self.keys
            grown_v[:, :capacity] = self.values
            self.keys, self.values = grown_k, grown_v
        self.keys[:, self.length] = k
        self.values[:, self.length] = v
        self.length += 1

    def view(self) -> Tuple[np.ndarray, np.ndarray]:
        """Live ``(keys, values)`` views over the filled prefix."""
        return self.keys[:, :self.length], self.values[:, :self.length]

    def clone(self) -> "KVCache":
        """Independent copy of the filled prefix (the constructor copies
        into fresh capacity arrays, so no extra copy here)."""
        keys, values = self.view()
        return KVCache(self.keys.shape[0], self.keys.shape[2],
                       keys=keys, values=values)

    @property
    def nbytes(self) -> int:
        return self.keys.nbytes + self.values.nbytes


class MultiHeadAttention(Module):
    """Multi-head attention with an optional monotonic distance decay.

    Parameters
    ----------
    dim:
        Model dimension; must be divisible by ``heads``.
    monotonic:
        When True, a learnable per-head decay rate ``theta_h >= 0`` is
        applied as ``logits -= theta_h * |i - j|`` (AKT's exponential decay
        in its multiplicative form on the pre-softmax logits).
    """

    def __init__(self, dim: int, heads: int, rng: np.random.Generator,
                 dropout: float = 0.0, monotonic: bool = False):
        super().__init__()
        if dim % heads != 0:
            raise ValueError(f"dim {dim} not divisible by heads {heads}")
        self.dim = dim
        self.heads = heads
        self.head_dim = dim // heads
        self.monotonic = monotonic
        self.query_proj = Linear(dim, dim, rng)
        self.key_proj = Linear(dim, dim, rng)
        self.value_proj = Linear(dim, dim, rng)
        self.out_proj = Linear(dim, dim, rng)
        self.dropout = Dropout(dropout, rng) if dropout > 0 else None
        if monotonic:
            # softplus(0.54) ~= 1.0; start with a mild decay.
            self.decay = init.normal((heads,), 0.1, rng)
        self.last_weights: Optional[np.ndarray] = None
        self.capture_kv: bool = False
        self.last_kv: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def _split(self, x: Tensor, batch: int, length: int) -> Tensor:
        """(B, L, D) -> (B, H, L, Dh)."""
        return x.reshape(batch, length, self.heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, query: Tensor, key: Tensor, value: Tensor,
                mask: Optional[np.ndarray] = None) -> Tensor:
        """Attend ``query`` over ``key``/``value``.

        ``mask`` is a boolean array broadcastable to ``(B, H, Lq, Lk)`` with
        True marking *allowed* positions.  Rows with no allowed key yield a
        zero context vector (see :func:`repro.tensor.masked_softmax`).

        When :attr:`capture_kv` is set (serving warm-up), the pre-split
        projected keys/values of this pass are stashed on
        :attr:`last_kv` as plain ``(B, Lk, D)`` arrays.
        """
        batch, q_len, _ = query.shape
        k_len = key.shape[1]
        projected_k = self.key_proj(key)
        projected_v = self.value_proj(value)
        if self.capture_kv:
            self.last_kv = (projected_k.data, projected_v.data)
        q = self._split(self.query_proj(query), batch, q_len)
        k = self._split(projected_k, batch, k_len)
        v = self._split(projected_v, batch, k_len)

        logits = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.head_dim))
        if self.monotonic:
            positions_q = np.arange(q_len)[:, None]
            positions_k = np.arange(k_len)[None, :]
            distance = np.abs(positions_q - positions_k).astype(np.float64)
            theta = _softplus(self.decay).reshape(1, self.heads, 1, 1)
            logits = logits - theta * Tensor(distance)

        if mask is None:
            mask = np.ones((1, 1, q_len, k_len), dtype=bool)
        else:
            mask = np.asarray(mask, dtype=bool)
            while mask.ndim < 4:
                mask = mask[None]
        weights = masked_softmax(logits, mask, axis=-1)
        self.last_weights = weights.data.copy()
        if self.dropout is not None:
            weights = self.dropout(weights)
        context = weights @ v
        context = context.transpose(0, 2, 1, 3).reshape(batch, q_len, self.dim)
        return self.out_proj(context)


    # ------------------------------------------------------------------
    # No-grad incremental inference (forward-stream serving cache)
    # ------------------------------------------------------------------
    def project_kv_step(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Projected key/value for one new position; ``x`` is ``(B, D)``.

        Matches the batch path's ``key_proj``/``value_proj`` outputs
        before the head split, so the results can be appended to a
        :class:`KVCache` holding batch-computed prefixes.
        """
        k = x @ self.key_proj.weight.data + self.key_proj.bias.data
        v = x @ self.value_proj.weight.data + self.value_proj.bias.data
        return k, v

    def attend_step(self, x: np.ndarray, keys: np.ndarray,
                    values: np.ndarray, position: int) -> np.ndarray:
        """Causal attention for the single query at ``position``.

        ``x`` is the ``(B, D)`` layer input at the new position;
        ``keys``/``values`` are the ``(B, n, D)`` projected prefix with
        ``n == position + 1`` (the new position's own key/value already
        appended — the non-strict causal mask lets a position attend to
        itself).  All prefix positions are real by construction, so no
        mask is needed; the softmax mirrors
        :func:`repro.tensor.masked_softmax`'s stable form op-for-op.
        """
        batch, dim = x.shape
        n = keys.shape[1]
        if n != position + 1:
            raise ValueError(f"key/value prefix of length {n} does not "
                             f"cover query position {position}")
        q = x @ self.query_proj.weight.data + self.query_proj.bias.data
        q = q.reshape(batch, self.heads, 1, self.head_dim)
        k = keys.reshape(batch, n, self.heads, self.head_dim)
        k = k.transpose(0, 2, 1, 3)
        v = values.reshape(batch, n, self.heads, self.head_dim)
        v = v.transpose(0, 2, 1, 3)
        logits = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.head_dim))
        if self.monotonic:
            distance = (position - np.arange(n)).astype(np.float64)
            theta = _softplus_array(self.decay.data)
            logits = logits - (theta.reshape(1, self.heads, 1, 1)
                               * distance[None, None, None, :])
        row_max = logits.max(axis=-1, keepdims=True)
        np.subtract(logits, row_max, out=logits)
        exp = np.exp(logits, out=logits)
        weights = exp / exp.sum(axis=-1, keepdims=True)
        context = (weights @ v).transpose(0, 2, 1, 3).reshape(batch, dim)
        return context @ self.out_proj.weight.data + self.out_proj.bias.data


def causal_mask(length: int, strict: bool = True) -> np.ndarray:
    """Lower-triangular attention mask.

    ``strict=True`` excludes the diagonal (a position cannot attend to
    itself), which is what the RCKT bidirectional encoders need so that the
    prediction for response ``i`` never sees response ``i``.
    """
    offset = -1 if strict else 0
    return np.tril(np.ones((length, length), dtype=bool), k=offset)


def anti_causal_mask(length: int, strict: bool = True) -> np.ndarray:
    """Upper-triangular mask: position ``i`` attends only to ``j > i``."""
    offset = 1 if strict else 0
    return np.triu(np.ones((length, length), dtype=bool), k=offset)
