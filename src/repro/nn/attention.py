"""Attention layers: scaled dot-product, multi-head, and AKT-style
monotonic (distance-decaying) attention.

SAKT (Pandey & Karypis, 2019) uses standard multi-head attention; AKT
(Ghosh et al., 2020) multiplies attention logits by an exponential decay in
the distance between the query and key positions so older interactions
matter less.  The paper's RCKT-AKT notes that "monotonic attention can also
be made bi-directional due to the duality of distance": we implement the
decay on ``|i - j|`` so the same layer serves both directions.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tensor import Tensor, init, masked_softmax, ops

from .layers import Dropout, Linear
from .module import Module


def _softplus(x: Tensor) -> Tensor:
    """Numerically adequate softplus for small-magnitude decay parameters."""
    return (x.clip(-30.0, 30.0).exp() + 1.0).log()


class MultiHeadAttention(Module):
    """Multi-head attention with an optional monotonic distance decay.

    Parameters
    ----------
    dim:
        Model dimension; must be divisible by ``heads``.
    monotonic:
        When True, a learnable per-head decay rate ``theta_h >= 0`` is
        applied as ``logits -= theta_h * |i - j|`` (AKT's exponential decay
        in its multiplicative form on the pre-softmax logits).
    """

    def __init__(self, dim: int, heads: int, rng: np.random.Generator,
                 dropout: float = 0.0, monotonic: bool = False):
        super().__init__()
        if dim % heads != 0:
            raise ValueError(f"dim {dim} not divisible by heads {heads}")
        self.dim = dim
        self.heads = heads
        self.head_dim = dim // heads
        self.monotonic = monotonic
        self.query_proj = Linear(dim, dim, rng)
        self.key_proj = Linear(dim, dim, rng)
        self.value_proj = Linear(dim, dim, rng)
        self.out_proj = Linear(dim, dim, rng)
        self.dropout = Dropout(dropout, rng) if dropout > 0 else None
        if monotonic:
            # softplus(0.54) ~= 1.0; start with a mild decay.
            self.decay = init.normal((heads,), 0.1, rng)
        self.last_weights: Optional[np.ndarray] = None

    def _split(self, x: Tensor, batch: int, length: int) -> Tensor:
        """(B, L, D) -> (B, H, L, Dh)."""
        return x.reshape(batch, length, self.heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, query: Tensor, key: Tensor, value: Tensor,
                mask: Optional[np.ndarray] = None) -> Tensor:
        """Attend ``query`` over ``key``/``value``.

        ``mask`` is a boolean array broadcastable to ``(B, H, Lq, Lk)`` with
        True marking *allowed* positions.  Rows with no allowed key yield a
        zero context vector (see :func:`repro.tensor.masked_softmax`).
        """
        batch, q_len, _ = query.shape
        k_len = key.shape[1]
        q = self._split(self.query_proj(query), batch, q_len)
        k = self._split(self.key_proj(key), batch, k_len)
        v = self._split(self.value_proj(value), batch, k_len)

        logits = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.head_dim))
        if self.monotonic:
            positions_q = np.arange(q_len)[:, None]
            positions_k = np.arange(k_len)[None, :]
            distance = np.abs(positions_q - positions_k).astype(np.float64)
            theta = _softplus(self.decay).reshape(1, self.heads, 1, 1)
            logits = logits - theta * Tensor(distance)

        if mask is None:
            mask = np.ones((1, 1, q_len, k_len), dtype=bool)
        else:
            mask = np.asarray(mask, dtype=bool)
            while mask.ndim < 4:
                mask = mask[None]
        weights = masked_softmax(logits, mask, axis=-1)
        self.last_weights = weights.data.copy()
        if self.dropout is not None:
            weights = self.dropout(weights)
        context = weights @ v
        context = context.transpose(0, 2, 1, 3).reshape(batch, q_len, self.dim)
        return self.out_proj(context)


def causal_mask(length: int, strict: bool = True) -> np.ndarray:
    """Lower-triangular attention mask.

    ``strict=True`` excludes the diagonal (a position cannot attend to
    itself), which is what the RCKT bidirectional encoders need so that the
    prediction for response ``i`` never sees response ``i``.
    """
    offset = -1 if strict else 0
    return np.tril(np.ones((length, length), dtype=bool), k=offset)


def anti_causal_mask(length: int, strict: bool = True) -> np.ndarray:
    """Upper-triangular mask: position ``i`` attends only to ``j > i``."""
    offset = 1 if strict else 0
    return np.triu(np.ones((length, length), dtype=bool), k=offset)
