"""Neural-network layers built on the :mod:`repro.tensor` substrate."""

from .attention import (KVCache, MultiHeadAttention, anti_causal_mask,
                        causal_mask)
from .layers import (MLP, Dropout, Embedding, LayerNorm, Linear, ReLU,
                     Sigmoid, Tanh)
from .module import Module, ModuleList
from .rnn import LSTM, BiLSTM, LSTMCell, inference_kernel
from .transformer import (FeedForward, PositionalEncoding, TransformerBlock,
                          TransformerEncoder, sinusoidal_positions)

__all__ = [
    "Module", "ModuleList",
    "Linear", "Embedding", "Dropout", "LayerNorm", "MLP",
    "ReLU", "Tanh", "Sigmoid",
    "LSTMCell", "LSTM", "BiLSTM", "inference_kernel",
    "MultiHeadAttention", "KVCache", "causal_mask", "anti_causal_mask",
    "TransformerBlock", "TransformerEncoder", "FeedForward",
    "PositionalEncoding", "sinusoidal_positions",
]
