"""Minimal module system: parameter registration, train/eval, state dicts.

Mirrors the subset of ``torch.nn.Module`` the paper's models need.  A
parameter is simply a :class:`~repro.tensor.Tensor` with
``requires_grad=True`` assigned as an attribute; submodules are discovered
by attribute scanning, and :class:`ModuleList` holds ordered collections
(e.g. stacked transformer layers).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.tensor import Tensor


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self.training: bool = True

    # ------------------------------------------------------------------
    # Parameter / submodule discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")

    def parameters(self) -> List[Tensor]:
        return [param for _, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()

    # ------------------------------------------------------------------
    # Mode switching
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    # ------------------------------------------------------------------
    # Gradient and state management
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter's data, keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, param in params.items():
            if param.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{param.data.shape} vs {state[name].shape}")
            param.data[...] = state[name]

    def num_parameters(self) -> int:
        return sum(param.data.size for param in self.parameters())

    # ------------------------------------------------------------------
    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class ModuleList(Module):
    """Ordered container whose items are registered as submodules."""

    def __init__(self, modules: List[Module] = None) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        setattr(self, f"item_{len(self._items)}", module)
        self._items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
