"""Counterfactual recourse search: prescribe edits, not just explain.

KTCF ("Actionable Recourse in Knowledge Tracing via Counterfactual
Explanations", PAPERS.md) turns this paper's counterfactual machinery
from *explaining* a prediction into *prescribing* an intervention.  The
:class:`RecourseSearch` behind :class:`~repro.serve.protocol
.RecourseQuery` does exactly that: given a student and a target
question, find the **minimal** set of edits that lifts the predicted
success probability past a caller-supplied threshold.  Two edit
dimensions:

* ``fix_history`` — set an in-window incorrect recorded response to
  correct (the what-if machinery's ``set`` edit, searched instead of
  caller-supplied);
* ``practice`` — append a candidate question answered correctly (the
  assumed-answer worlds RecommendQuery already scores).

Search shape
------------
Breadth-first by edit count: generation ``g`` holds worlds with exactly
``g`` edits, so the first generation to clear the threshold *is* the
minimal edit set (ties broken toward the highest score).  ``beam_width``
bounds how many worlds survive each generation (1 = greedy); duplicate
edit *sets* reached along different paths are expanded once.

Batching contract (the whole point of riding the PR 4 scheduler):
every generation is scored through
:meth:`~repro.serve.engine.InferenceEngine._score_rows` as rows of
**one** shared forward-stream batch — and practice worlds whose parent
timeline is already warm extend a ``clone()`` of the parent's stream
cache by a single encoder step, costing *zero* forward passes.  Only
``fix_history`` worlds (whose edit rewrites the middle of the timeline)
are re-encoded, all of them in the generation's single warm-build pass.
Forward-call counting tests pin both properties.

The reply carries the chosen edit path with its per-step probability
trajectory, plus a per-step ``lowered_score`` monotonicity diagnostic
(Counterfactual Monotonic KT, PAPERS.md): every move adds a correct
response, so a score that *drops* flags an answer-bias violation —
:meth:`repro.serve.Service.monotonicity_report` sweeps the same signal
as a standalone probe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data import PAD_ID

from .engine import InferenceEngine, _ContextRow
from .forward_cache import base_contents, question_vector_for
from .history import ArrayHistory
from .protocol import RecourseQuery, RecourseReply, RecourseStep

#: Hard search-budget caps; admission rejects queries beyond them.
MAX_EDITS = 16
MAX_BEAM_WIDTH = 32


@dataclass(frozen=True)
class _Move:
    """One candidate edit applied to a parent world."""

    kind: str                        # "fix_history" | "practice"
    question_id: int
    concept_ids: Tuple[int, ...]
    position: Optional[int] = None   # fix_history: absolute position
    candidate: Optional[int] = None  # practice: index into candidates


class _World:
    """One hypothetical timeline: the base history plus a move chain."""

    __slots__ = ("parent", "move", "fixed", "practiced", "length",
                 "score", "entry")

    def __init__(self, parent: Optional["_World"], move: Optional[_Move],
                 fixed: frozenset, practiced: Tuple[int, ...],
                 length: int):
        self.parent = parent
        self.move = move
        self.fixed = fixed            # fixed history positions
        self.practiced = practiced    # candidate indices, in append order
        self.length = length          # timeline length (base + practiced)
        self.score = None             # filled by the generation batch
        self.entry = None             # warm StudentStreamCache, if any

    def path(self) -> List["_World"]:
        """Root-exclusive chain of worlds, first move first."""
        nodes = []
        world = self
        while world.move is not None:
            nodes.append(world)
            world = world.parent
        return list(reversed(nodes))


class RecourseSearch:
    """One query's search over an admission-time history snapshot.

    ``snapshot`` is the *full*-history array copies taken when the
    query's baseline probe was admitted (a concurrent ``record`` must
    never tear the search across two history states), ``baseline`` the
    probe's score from the shared mixed-type batch, and ``root_entry``
    an optional caller-owned clone of the student's warm stream-cache
    entry anchored at the snapshot's serving window — the seed that
    makes first-generation practice worlds free of forward passes.
    """

    def __init__(self, engine: InferenceEngine, model_name: str,
                 query: RecourseQuery, snapshot: Tuple[np.ndarray, ...],
                 baseline: float, root_entry=None):
        self.engine = engine
        self.model_name = model_name
        self.query = query
        self.snapshot = snapshot
        self.baseline = float(baseline)
        self.base_length = len(snapshot[0])
        generator = engine.model.generator
        self.encoder = generator.encoder
        self.embedder = generator.embedder
        self.response_table = \
            self.embedder.response_embedding.weight.data
        self.correct_categories = base_contents(
            np.asarray(1), engine.model.config.use_monotonicity)
        self.candidate_vectors = [
            question_vector_for(self.embedder, candidate.question_id,
                                candidate.concept_ids)
            for candidate in query.candidates]
        # Edits behind the serving window cannot move the score; only
        # in-window incorrect responses are fixable.
        window_start = engine._window_start(self.base_length)
        responses = snapshot[1]
        self.fix_positions = tuple(
            int(p) for p in range(window_start, self.base_length)
            if responses[p] == 0) if query.allow_history_edits else ()
        history_width = snapshot[2].shape[1] if self.base_length else 1
        self.width = max([history_width] + [len(c.concept_ids)
                                            for c in query.candidates])
        root = _World(None, None, frozenset(), (), self.base_length)
        root.score = self.baseline
        root.entry = root_entry
        self.root = root

    # ------------------------------------------------------------------
    # Search loop
    # ------------------------------------------------------------------
    def run(self) -> RecourseReply:
        query = self.query
        if self.baseline >= query.threshold:
            return self._reply(self.root, True, 0, 0)
        beam = [self.root]
        best = None
        achieved = None
        generations = 0
        worlds_scored = 0
        while generations < query.max_edits:
            children = self._expand(beam)
            if not children:
                break
            generations += 1
            worlds_scored += len(children)
            self._score_generation(children)
            # Stable: ties keep the deterministic expansion order, so
            # every shard and the in-process facade pick the same path.
            children.sort(key=lambda world: -world.score)
            if best is None or children[0].score > best.score:
                best = children[0]
            if children[0].score >= query.threshold:
                achieved = children[0]
                break
            beam = children[:query.beam_width]
            for world in children[query.beam_width:]:
                world.entry = None   # losers' warm timelines die here
        if achieved is not None:
            return self._reply(achieved, True, generations, worlds_scored)
        chosen = best if best is not None and best.score > self.baseline \
            else self.root
        return self._reply(chosen, False, generations, worlds_scored)

    def _expand(self, beam: List[_World]) -> List[_World]:
        """All unseen one-move extensions of the beam, in beam order."""
        children = []
        seen = set()
        for world in beam:
            for move in self._moves(world):
                if move.kind == "fix_history":
                    fixed = world.fixed | {move.position}
                    practiced = world.practiced
                else:
                    fixed = world.fixed
                    practiced = world.practiced + (move.candidate,)
                # Practice order barely moves the final score and never
                # changes the edit *set*; exploring permutations would
                # burn the beam on duplicates.
                key = (fixed, tuple(sorted(practiced)))
                if key in seen:
                    continue
                seen.add(key)
                children.append(_World(world, move, fixed, practiced,
                                       self.base_length + len(practiced)))
        return children

    def _moves(self, world: _World):
        responses = self.snapshot[1]
        questions = self.snapshot[0]
        for position in self.fix_positions:
            if position in world.fixed:
                continue
            counts = self.snapshot[3]
            yield _Move("fix_history", int(questions[position]),
                        tuple(int(c) for c in
                              self.snapshot[2][position,
                                               :counts[position]]),
                        position=position)
        for index, candidate in enumerate(self.query.candidates):
            yield _Move("practice", candidate.question_id,
                        tuple(candidate.concept_ids), candidate=index)

    # ------------------------------------------------------------------
    # Batched scoring
    # ------------------------------------------------------------------
    def _score_generation(self, children: List[_World]) -> None:
        """Score a whole generation as one shared forward-stream batch."""
        engine = self.engine
        probe = (self.query.question_id, self.query.concept_ids)
        rows = []
        local: Dict[int, object] = {}
        for index, world in enumerate(children):
            timeline = self._timeline(world)
            start = engine._window_start(timeline.length)
            rows.append(_ContextRow(timeline, start, probe))
            entry = self._extended_entry(world, start)
            if entry is not None:
                local[index] = entry
        scores, built = engine._score_rows(rows,
                                           local_entries=local or None)
        for index, world in enumerate(children):
            world.score = float(scores[index])
            world.entry = built.get(index)

    def _timeline(self, world: _World) -> ArrayHistory:
        q, r, c, k = self.snapshot
        n = self.base_length
        total = n + len(world.practiced)
        questions = np.empty(total, dtype=np.int64)
        responses = np.empty(total, dtype=np.int64)
        concepts = np.full((total, self.width), PAD_ID, dtype=np.int64)
        counts = np.ones(total, dtype=np.int64)
        questions[:n] = q
        responses[:n] = r
        concepts[:n, :c.shape[1]] = c
        counts[:n] = k
        for position in world.fixed:
            responses[position] = 1
        for offset, candidate_index in enumerate(world.practiced):
            candidate = self.query.candidates[candidate_index]
            ids = candidate.concept_ids
            questions[n + offset] = candidate.question_id
            responses[n + offset] = 1
            concepts[n + offset, :len(ids)] = ids
            counts[n + offset] = len(ids)
        return ArrayHistory(self.query.student_id, questions, responses,
                            concepts, counts)

    def _extended_entry(self, world: _World, start: int):
        """Clone-extend the parent's warm entry for a practice world.

        Valid only when the child keeps the parent's window anchor (an
        append can slide the window, invalidating anchored state) and
        the parent's entry still covers its whole timeline.  Returns a
        private entry the shared batch consumes via ``local_entries`` —
        zero forward passes for this row.
        """
        parent = world.parent
        move = world.move
        if (move.kind != "practice" or parent is None
                or parent.entry is None
                or parent.entry.anchor != start
                or parent.entry.length != parent.length
                - parent.entry.anchor):
            return None
        entry = parent.entry.clone()
        entry.extend(self.encoder, self.candidate_vectors[move.candidate],
                     self.correct_categories, self.response_table)
        return entry

    # ------------------------------------------------------------------
    # Reply assembly
    # ------------------------------------------------------------------
    def _reply(self, world: _World, achieved: bool, generations: int,
               worlds_scored: int) -> RecourseReply:
        steps = []
        previous = self.baseline
        monotonic = True
        for node in world.path():
            move = node.move
            lowered = node.score < previous
            if lowered:
                monotonic = False
            steps.append(RecourseStep(
                kind=move.kind, question_id=move.question_id,
                score=float(node.score), position=move.position,
                concept_ids=move.concept_ids, lowered_score=lowered))
            previous = node.score
        query = self.query
        return RecourseReply(
            query.student_id, query.question_id,
            achieved=achieved, threshold=float(query.threshold),
            baseline_score=self.baseline,
            final_score=float(steps[-1].score) if steps
            else self.baseline,
            steps=tuple(steps), monotonic=monotonic,
            generations=generations, worlds_scored=worlds_scored,
            history_length=world.length, model=self.model_name)
