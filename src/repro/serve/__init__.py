"""Serving subsystem: checkpointed RCKT inference behind a micro-batcher.

``repro.serve`` turns the repository's counterfactual scorer into an
engine shaped like a production inference service:

* :class:`InferenceEngine` — holds one loaded model, per-student cached
  interaction arrays, and a pending-request queue.
* :class:`ScoreRequest` / :class:`PendingScore` — the submit/flush
  micro-batch lifecycle (see :mod:`repro.serve.engine` for the walkthrough).
* :class:`HistoryStore` / :class:`StudentHistory` — O(1)-append response
  logs assembled into padded batches without per-interaction Python work.
* :class:`StreamCacheStore` / :class:`StudentStreamCache` — per-student
  incremental forward-stream caches under an LRU byte budget
  (:mod:`repro.serve.forward_cache`): ``record`` extends each cached
  encoder state by one step, so steady-state scoring only pays for the
  per-request backward streams.

Histories are unbounded in length: positional tables grow on demand,
and ``InferenceEngine(window=W)`` serves arbitrarily long students over
a sliding window with exact truncation semantics (windowed scores equal
a full recompute on the window slice — ``docs/SERVING.md`` documents
the anchoring).

All scoring goes through the multi-target fast path
(:mod:`repro.core.multi_target`), which the golden-parity suite pins to
the legacy per-prefix scores, so the engine is exactly as accurate as the
paper's evaluation protocol — just batched, cached, windowed, and
(optionally) threaded via the ``workers`` option.
"""

from .engine import InferenceEngine, PendingScore, ScoreRequest
from .forward_cache import (DEFAULT_STREAM_CACHE_BYTES, StreamCacheStore,
                            StudentStreamCache, build_stream_caches)
from .history import HistoryStore, HistoryWindow, StudentHistory

__all__ = [
    "InferenceEngine", "ScoreRequest", "PendingScore",
    "HistoryStore", "StudentHistory", "HistoryWindow",
    "StreamCacheStore", "StudentStreamCache", "build_stream_caches",
    "DEFAULT_STREAM_CACHE_BYTES",
]
