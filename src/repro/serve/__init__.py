"""Serving subsystem: a typed, transport-agnostic API over RCKT inference.

``repro.serve`` turns the repository's counterfactual scorer into an
engine shaped like a production inference service, reachable three
equivalent ways — the typed facade, the legacy engine methods (now thin
shims over it), and HTTP:

* :class:`Service` — the typed facade (protocol v2, v1 envelopes still
  accepted): every capability is a typed query (:class:`ScoreQuery`,
  :class:`ExplainQuery` for per-response influences,
  :class:`WhatIfQuery` for counterfactual history edits,
  :class:`RecommendQuery`, :class:`RecourseQuery` for the batched
  counterfactual edit search of :mod:`repro.serve.recourse`,
  :class:`RecordEvent`, batched via :class:`BatchEnvelope`) answered by
  a typed reply or a structured error **value**
  (:class:`~repro.serve.protocol.ServiceError` subclasses — never
  raised across the boundary).  One admission scheduler coalesces
  heterogeneous query types per model into shared forward-stream
  batches; :meth:`Service.monotonicity_report` sweeps the
  correct-response-lowers-mastery diagnostic per student.
* :class:`ModelRegistry` — named checkpoints with atomic hot-swap;
  queries address models by name.
* :mod:`repro.serve.http_gateway` — stdlib HTTP/JSON gateway
  (``python -m repro.serve``) plus :class:`ServiceClient`; same
  protocol, same errors, over the wire.
* :class:`InferenceEngine` — the per-model compute core: per-student
  cached interaction arrays (:class:`HistoryStore`), incremental
  forward-stream caches under an LRU byte budget
  (:class:`StreamCacheStore`), sliding-window anchoring, and a
  persistent worker pool.  Its classic ``score`` / ``influences`` /
  ``recommend`` / ``submit``/``flush`` methods now shim through the
  facade.

Histories are unbounded in length: positional tables grow on demand,
and ``InferenceEngine(window=W)`` serves arbitrarily long students over
a sliding window with exact truncation semantics (windowed scores equal
a full recompute on the window slice — ``docs/SERVING.md`` documents
the anchoring; ``docs/API.md`` documents the protocol).

All scoring goes through the multi-target fast path
(:mod:`repro.core.multi_target`), which the golden-parity suite pins to
the legacy per-prefix scores, so every surface is exactly as accurate
as the paper's evaluation protocol — just batched, cached, windowed,
typed, and (optionally) threaded.
"""

from .engine import InferenceEngine, PendingScore, ScoreRequest
from .forward_cache import (DEFAULT_STREAM_CACHE_BYTES, StreamCacheStore,
                            StudentStreamCache, build_stream_caches)
from .history import (ArrayHistory, HistoryStore, HistoryWindow,
                      StudentHistory, assemble_padded)
from .http_gateway import (ServiceClient, ServiceHTTPServer, serve_http,
                           start_http_thread)
from .protocol import (DEFAULT_MODEL, PROTOCOL_VERSION,
                       SUPPORTED_PROTOCOL_VERSIONS, BatchEnvelope,
                       BatchReply, CandidateQuestion, EmptyHistory,
                       ExplainQuery, ExplainReply, HistoryEdit,
                       InfluenceItem, InternalError, InvalidConcept,
                       InvalidEdit, InvalidQuestion, MalformedQuery,
                       ModelNotLoaded, NotFound, RecommendQuery,
                       RecommendReply,
                       RecommendationItem, RecordEvent, RecordReply,
                       RecourseQuery, RecourseReply, RecourseStep,
                       RolloutRefused, ScoreQuery, ScoreReply, ServiceError,
                       ShardUnavailable, UnknownQueryType, UnknownStudent,
                       UnsupportedVersion, WhatIfQuery,
                       WhatIfReply, capabilities, is_error,
                       negotiated_version, query_from_wire,
                       query_types_for, reply_from_wire, to_wire)
from .recourse import RecourseSearch
from .registry import ModelRegistry, registry_for
from .service import PendingReply, Service

__all__ = [
    # engine core
    "InferenceEngine", "ScoreRequest", "PendingScore",
    "HistoryStore", "StudentHistory", "HistoryWindow", "ArrayHistory",
    "assemble_padded",
    "StreamCacheStore", "StudentStreamCache", "build_stream_caches",
    "DEFAULT_STREAM_CACHE_BYTES",
    # facade + registry
    "Service", "PendingReply", "ModelRegistry", "registry_for",
    # protocol
    "PROTOCOL_VERSION", "SUPPORTED_PROTOCOL_VERSIONS", "DEFAULT_MODEL",
    "ScoreQuery", "ExplainQuery", "WhatIfQuery", "RecommendQuery",
    "RecourseQuery", "RecordEvent", "BatchEnvelope", "HistoryEdit",
    "CandidateQuestion",
    "ScoreReply", "ExplainReply", "WhatIfReply", "RecommendReply",
    "RecourseReply", "RecourseStep", "RecourseSearch",
    "RecordReply", "BatchReply", "InfluenceItem", "RecommendationItem",
    "ServiceError", "UnknownStudent", "InvalidQuestion", "InvalidConcept",
    "EmptyHistory", "InvalidEdit", "ModelNotLoaded", "MalformedQuery",
    "UnsupportedVersion", "UnknownQueryType", "RolloutRefused",
    "ShardUnavailable", "NotFound", "InternalError", "is_error", "to_wire",
    "query_from_wire", "reply_from_wire", "capabilities",
    "negotiated_version", "query_types_for",
    # HTTP gateway
    "ServiceClient", "ServiceHTTPServer", "serve_http",
    "start_http_thread",
]
