"""The transport-agnostic ``Service`` facade: one scheduler, typed edges.

Every serving capability flows through :meth:`Service.execute` /
:meth:`Service.execute_batch` as a typed query
(:mod:`repro.serve.protocol`) and comes back as a typed reply or a
structured :class:`~repro.serve.protocol.ServiceError` **value** — the
facade never raises across its boundary for a bad request, which is what
lets the HTTP gateway forward the exact same taxonomy.

The scheduler
-------------
``execute_batch`` is the single admission point.  One batch:

1. routes queries to their named model (:class:`ModelRegistry`);
2. applies every :class:`RecordEvent` first, in envelope order — all
   read queries then observe the same post-record snapshot;
3. coalesces the heterogeneous read queries for each model —
   :class:`ScoreQuery` probes, :class:`ExplainQuery` targets, both
   timelines of every :class:`WhatIfQuery` (edited + baseline), and
   every :class:`RecommendQuery` candidate's success-probability
   probe — into **one shared forward-stream batch**: a single
   :class:`repro.core.multi_target.MultiTargetContext` whose forward
   half comes from the per-student incremental caches, with every
   missing row (cold students, edited timelines, off-anchor explain
   targets) warm-built in one stacked pass.  Only the per-target
   backward streams run per query, column-banded and threaded on the
   engine's persistent worker pool.
4. scores each :class:`RecommendQuery`'s assumed-answer value worlds in
   one stacked pass per query
   (:meth:`InferenceEngine._recommend_values`) against the history
   snapshot its probes were admitted with, then blends them with the
   shared-batch probabilities.

Replies come back in query order.  Window semantics are inherited
unchanged: each row conditions on its anchored window slice, identical
to the engine's direct paths.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.tensor import no_grad

from .. import obs
from ..obs import names as metric_names
from .engine import InferenceEngine, _ContextRow
from .forward_cache import build_stream_caches
from .history import ArrayHistory, StudentHistory
from .protocol import (DEFAULT_MODEL, EDIT_OPS, BatchEnvelope, BatchReply,
                       EmptyHistory,
                       ExplainQuery, ExplainReply, InfluenceItem,
                       InternalError, InvalidConcept, InvalidEdit,
                       InvalidQuestion, MalformedQuery, ModelNotLoaded,
                       RecommendQuery, RecommendReply, RecommendationItem,
                       RecordEvent, RecordReply, RecourseQuery, ScoreQuery,
                       ScoreReply, ServiceError, UnknownStudent,
                       WhatIfQuery, WhatIfReply, is_error)
from .recourse import MAX_BEAM_WIDTH, MAX_EDITS, RecourseSearch
from .registry import ModelRegistry, registry_for

_QUERY_CLASSES = (ScoreQuery, ExplainQuery, WhatIfQuery, RecommendQuery,
                  RecourseQuery, RecordEvent)

_ID_ERROR_CLASSES = {
    "question": InvalidQuestion,
    "concept": InvalidConcept,
    "concept_empty": InvalidConcept,
}


@dataclass
class _ReadRow:
    """Scheduler bookkeeping for one row of a shared context batch.

    ``length`` snapshots the (windowed or edited) history length at
    admission — replies must describe the state the row was scored
    against, not whatever a concurrent ``record`` appended since.
    """

    index: int          # reply slot
    role: str           # "score" | "explain" | "what_if_edit"
    #                     | "what_if_base" | "recommend" | "recourse_base"
    query: object
    history: object
    start: int
    length: int


@dataclass
class _PendingRecourse:
    """One :class:`RecourseQuery` whose baseline probe rode the batch.

    ``snapshot`` pins *full*-history copies from admission time — the
    search generations run after the engine lock is released, and a
    concurrent ``record`` must never tear the search across two history
    states.  ``baseline`` collects the target's unedited score from the
    shared context.
    """

    query: RecourseQuery
    snapshot: tuple
    baseline: Optional[float] = None


@dataclass
class _PendingRecommend:
    """One :class:`RecommendQuery` whose probes ride the shared batch.

    ``snapshot`` pins the windowed history copies the probes were
    admitted against (the value worlds re-score the same context after
    the engine lock is released); ``probabilities`` collects the
    per-candidate success scores from the shared context, in candidate
    order.
    """

    query: RecommendQuery
    snapshot: tuple
    probabilities: List[float] = field(default_factory=list)


@dataclass
class PendingReply:
    """Handle returned by :meth:`Service.submit`; resolved on flush."""

    query: object
    _reply: Optional[object] = field(default=None, repr=False)
    #: obs-clock stamp taken at admission; the flush observes the
    #: queue wait into ``service_admission_wait_seconds``.
    _submitted: Optional[float] = field(default=None, repr=False)

    @property
    def done(self) -> bool:
        return self._reply is not None

    @property
    def reply(self):
        if self._reply is None:
            raise RuntimeError("query not flushed yet — call "
                               "Service.flush()")
        return self._reply


class Service:
    """Typed, transport-agnostic facade over one or many models.

    Parameters
    ----------
    model:
        A :class:`~repro.core.RCKT`, an :class:`InferenceEngine`, or
        ``None`` when ``registry`` is given.  A bare model/engine is
        wrapped in a one-entry registry under its engine name
        (:data:`~repro.serve.protocol.DEFAULT_MODEL` unless the engine
        carries another).
    registry:
        A pre-populated :class:`ModelRegistry` for multi-model serving.
    max_batch:
        Pending-query count that triggers an automatic flush of the
        :meth:`submit` queue.
    engine_kwargs:
        Forwarded to :class:`InferenceEngine` when ``model`` is a bare
        model (``window=...``, ``workers=...``, …).
    """

    def __init__(self, model=None, *, registry: Optional[ModelRegistry]
                 = None, max_batch: int = 64, **engine_kwargs):
        if (model is None) == (registry is None):
            raise ValueError("provide exactly one of model or registry")
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        self.registry = registry if registry is not None \
            else registry_for(model, **engine_kwargs)
        self.max_batch = max_batch
        self._pending: List[PendingReply] = []
        self._lock = threading.Lock()
        # Instrument handles are captured at construction (and never
        # mutated afterwards): swapping the process registry affects
        # services built later, not this one — what the bench's
        # instrumented-vs-disabled arms rely on.
        self._obs = obs.get_registry()
        self._obs_batch_seconds = self._obs.histogram(
            metric_names.SERVICE_BATCH_SECONDS)
        self._obs_batch_size = self._obs.histogram(
            metric_names.SERVICE_BATCH_SIZE, buckets=obs.SIZE_BUCKETS)
        self._obs_admission_wait = self._obs.histogram(
            metric_names.SERVICE_ADMISSION_WAIT_SECONDS)
        self._obs_coalesced_reads = self._obs.counter(
            metric_names.SERVICE_COALESCED_READS_TOTAL)
        # The facade is the canonical service of its engines: legacy
        # engine methods shim through `engine.service`, which must
        # resolve back here instead of spawning a parallel facade.
        for name in self.registry.names():
            engine = self.registry.get(name)
            if engine is not None and engine._service is None:
                engine._service = self

    @classmethod
    def from_checkpoint(cls, path, name: str = DEFAULT_MODEL,
                        max_batch: int = 64, **engine_kwargs) -> "Service":
        """One-model service straight from an engine checkpoint file."""
        registry = ModelRegistry()
        registry.load(name, path, **engine_kwargs)
        return cls(registry=registry, max_batch=max_batch)

    # ------------------------------------------------------------------
    # Registry conveniences
    # ------------------------------------------------------------------
    def engine(self, name: str = DEFAULT_MODEL) -> InferenceEngine:
        """The named engine; raises ``KeyError`` for unknown names
        (in-process administration — queries get ``ModelNotLoaded``)."""
        engine = self.registry.get(name)
        if engine is None:
            raise KeyError(f"no model named '{name}' is loaded "
                           f"(known: {self.registry.names()})")
        return engine

    def describe_models(self) -> List[dict]:
        return self.registry.describe()

    def close(self) -> None:
        """Shut down every engine's persistent worker pool."""
        for name in self.registry.names():
            engine = self.registry.get(name)
            if engine is not None:
                engine.close()

    # ------------------------------------------------------------------
    # Warm blue/green rollout
    # ------------------------------------------------------------------
    def rollout(self, path, name: str = DEFAULT_MODEL,
                warm_top: int = 64, gate=None):
        """Blue/green checkpoint rollout with a warm standby.

        Builds a *standby* engine from ``path`` (the green side), hands
        it the live engine's serving state — the shared history store,
        lock, and persistent worker pool — pre-builds its forward-stream
        caches for the ``warm_top`` hottest students (the live stream
        cache's LRU order *is* the hot set), and only then atomically
        rebinds ``name``.  The blue engine keeps serving, records
        included, until the rebind; in-flight queries that already
        resolved it finish on the old weights.  Unlike
        :meth:`ModelRegistry.swap` (in-place weight reload, every cache
        cold afterwards), the hot working set scores warm from the first
        post-swap request.

        ``gate``, when given, is a callable ``(incumbent_engine,
        standby_engine) -> Optional[ServiceError]`` consulted after the
        standby is built and id-space-validated but *before* any live
        state is adopted.  A returned error value (typically
        :class:`~repro.serve.protocol.RolloutRefused` from a
        ``repro.online`` drift monitor) aborts the rollout and is
        **returned as that value, never raised** — the incumbent keeps
        serving and the standby is discarded.  This is the serve-side
        half of the continual-learning loop's auto-rollout gate
        (``docs/ONLINE.md``).

        Returns a summary dict (model, warmed count, encoder, students)
        on success.  In-process administration errors raise —
        ``KeyError`` for an unknown name, ``ValueError`` for an
        id-space mismatch — exactly like :meth:`ModelRegistry.swap`;
        the HTTP gateway's ``/v1/admin/rollout`` route maps them onto
        the error taxonomy.
        """
        old = self.registry.get(name)
        if old is None:
            raise KeyError(f"no model named '{name}' is loaded "
                           f"(known: {self.registry.names()})")
        standby = InferenceEngine.from_checkpoint(
            path, max_batch=old.max_batch, target_batch=old.target_batch,
            stream_cache_bytes=old.stream_caches.budget_bytes,
            window=old.window,
            window_hop=old.window_hop if old.window is not None else None)
        if (standby.num_questions, standby.num_concepts) \
                != (old.num_questions, old.num_concepts):
            raise ValueError(
                f"checkpoint at {path} serves a different id space "
                f"({standby.num_questions} questions / "
                f"{standby.num_concepts} concepts vs "
                f"{old.num_questions} / {old.num_concepts}); recorded "
                f"histories cannot migrate onto it")
        if gate is not None:
            verdict = gate(old, standby)
            if is_error(verdict):
                return verdict
        # Adopt the live serving state: histories are ground-truth
        # observations shared across model versions, and sharing the
        # *lock* keeps blue-side records serialized against the green
        # side's reads for as long as both engines are referenced.
        standby.students = old.students
        standby._lock = old._lock
        # One persistent pool per serving slot: the standby was built
        # pool-less and inherits the blue engine's threads, so the swap
        # neither leaks a pool nor strands in-flight chunks.
        standby.workers = old.workers
        standby._executor = old._executor
        warmed = self._warm_standby(old, standby, warm_top)
        self.registry.register(name, standby)
        if standby._service is None:
            standby._service = self
        return {"model": name, "warmed": warmed,
                "encoder": standby.model.config.encoder,
                "students": len(standby.students)}

    def _warm_standby(self, old: InferenceEngine,
                      standby: InferenceEngine, warm_top: int) -> int:
        """Pre-build the standby's stream caches for the hot set.

        Snapshots the hottest students' anchored windows under the
        shared lock (cheap memcpys), then runs one stacked
        :func:`~repro.serve.forward_cache.build_stream_caches` pass on
        the standby model *outside* the lock — the blue side keeps
        serving while the green side warms.  A record that lands
        between snapshot and swap merely makes that entry stale, and
        stale entries self-heal (discard + rebuild) on first use.
        """
        if warm_top <= 0 or not standby.stream_caches.enabled:
            return 0
        snapshots = []
        with old._lock:
            for student_id in old.stream_caches.hot_keys(warm_top):
                history = old.students.peek(student_id)
                if history is None or history.length == 0:
                    continue
                start = standby._window_start(history.length)
                arrays = [a.copy() for a in
                          (history.suffix(start) if start
                           else history).view()]
                snapshots.append((student_id, start,
                                  ArrayHistory(student_id, *arrays)))
        if not snapshots:
            return 0
        with no_grad():
            built = build_stream_caches(standby.model,
                                        [s[2] for s in snapshots])
        for (student_id, start, _), entry in zip(snapshots, built):
            entry.anchor = start
            standby.stream_caches.put(student_id, entry)
        return len(snapshots)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def execute(self, query):
        """Run one query synchronously; returns its reply or error.

        A :class:`BatchEnvelope` is accepted too (the gateway's
        ``/v1/query`` route feeds whatever decoded) and comes back as a
        :class:`~repro.serve.protocol.BatchReply`.
        """
        if isinstance(query, BatchEnvelope):
            return BatchReply(tuple(self.execute_batch(query)))
        return self.execute_batch([query])[0]

    def submit(self, query) -> PendingReply:
        """Enqueue a query; auto-flushes once ``max_batch`` wait."""
        pending = PendingReply(query, _submitted=obs.clock())
        with self._lock:
            self._pending.append(pending)
            ready = len(self._pending) >= self.max_batch
        if ready:
            self.flush()
        return pending

    def flush(self) -> List[PendingReply]:
        """Resolve every pending handle in one scheduled batch."""
        with self._lock:
            batch, self._pending = self._pending, []
        if not batch:
            return []
        admitted = obs.clock()
        for pending in batch:
            if pending._submitted is not None:
                self._obs_admission_wait.observe(
                    admitted - pending._submitted)
        replies = self.execute_batch([p.query for p in batch])
        for pending, reply in zip(batch, replies):
            pending._reply = reply
        return batch

    def execute_batch(self, queries) -> List[object]:
        """The scheduler: every query of a batch, replies in order.

        Accepts a :class:`BatchEnvelope` or any sequence of queries
        (stray :class:`~repro.serve.protocol.MalformedQuery` values from
        wire decoding pass through as their own replies).  Never raises
        for a bad query — errors come back as values in its slot.
        """
        started = obs.clock()
        if isinstance(queries, BatchEnvelope):
            queries = queries.queries
        queries = list(queries)
        replies: List[object] = [None] * len(queries)
        groups = {}
        for index, query in enumerate(queries):
            if is_error(query):
                replies[index] = query       # pre-decoded malformed slot
            elif isinstance(query, BatchEnvelope):
                replies[index] = MalformedQuery(
                    "batch envelopes cannot ride inside another batch — "
                    "pass the envelope itself to execute()/POST /v1/batch")
            elif not isinstance(query, _QUERY_CLASSES):
                replies[index] = MalformedQuery(
                    f"not a protocol query: {type(query).__name__!s}")
            else:
                groups.setdefault(query.model, []).append((index, query))
                self._obs.counter(metric_names.SERVICE_REQUESTS_TOTAL,
                                  type=query.TYPE).inc()
        for model_name, group in groups.items():
            engine = self.registry.get(model_name)
            if engine is None:
                error = ModelNotLoaded(
                    f"no model named '{model_name}' is loaded "
                    f"(known: {self.registry.names()})",
                    details={"model": model_name,
                             "known": tuple(self.registry.names())})
                for index, _ in group:
                    replies[index] = error
                continue
            group_started = obs.clock()
            self._execute_group(engine, model_name, group, replies)
            group_elapsed = obs.clock() - group_started
            # Per-type latency is the group latency each query actually
            # experienced — reads of a batch resolve together, so
            # per-query wall time *is* the shared-flush wall time.
            for _index, query in group:
                self._obs.histogram(metric_names.SERVICE_QUERY_SECONDS,
                                    type=query.TYPE).observe(group_elapsed)
        self._obs_batch_size.observe(len(queries))
        self._obs_batch_seconds.observe(obs.clock() - started)
        return replies

    # ------------------------------------------------------------------
    # Per-model execution
    # ------------------------------------------------------------------
    def _execute_group(self, engine: InferenceEngine, model_name: str,
                       group, replies: List[object]) -> None:
        # Replies echo `model_name` — the name the query addressed —
        # which can differ from `engine.name` when one engine is
        # served under aliases (see ModelRegistry.register).
        def guarded(index, run, *args):
            # The facade never raises across its boundary: anything a
            # handler still throws becomes an InternalError value in
            # that query's slot, leaving its siblings untouched.
            try:
                replies[index] = run(engine, model_name, *args)
            except Exception as error:  # noqa: BLE001 — taxonomy boundary
                replies[index] = InternalError(
                    f"scheduler failure in model '{engine.name}': "
                    f"{type(error).__name__}: {error}",
                    details={"model": engine.name})

        coalesced = []
        for index, query in group:
            if isinstance(query, RecordEvent):
                # Records first, in envelope order: every read of the
                # batch then observes the same post-record snapshot.
                guarded(index, self._apply_record, query)
            else:
                coalesced.append((index, query))
        if coalesced:
            try:
                self._flush_reads(engine, model_name, coalesced,
                                  replies)
            except Exception as error:   # noqa: BLE001 — taxonomy boundary
                failure = InternalError(
                    f"scheduler failure in model '{engine.name}': "
                    f"{type(error).__name__}: {error}",
                    details={"model": engine.name})
                for index, _ in coalesced:
                    if replies[index] is None:
                        replies[index] = failure

    def _id_error_value(self, engine: InferenceEngine, question_id,
                        concept_ids, student_id) -> Optional[ServiceError]:
        found = engine._id_error(question_id, concept_ids, student_id)
        if found is None:
            return None
        kind, message, details = found
        return _ID_ERROR_CLASSES[kind](message, details=tuple(
            details.items()))

    def _apply_record(self, engine: InferenceEngine, model_name: str,
                      query: RecordEvent):
        error = self._id_error_value(engine, query.question_id,
                                     query.concept_ids, query.student_id)
        if error is not None:
            return error
        if query.correct not in (0, 1):
            return MalformedQuery(
                f"correct must be 0 or 1, got {query.correct}",
                details={"correct": query.correct})
        engine.record(query.student_id, query.question_id, query.correct,
                      query.concept_ids)
        return RecordReply(query.student_id,
                           engine.history_length(query.student_id),
                           model=model_name)

    def _admit_recommend(self, engine, model_name, index,
                         query: RecommendQuery, rows, meta, recommends,
                         replies) -> None:
        """Admit a recommend query's success probes into the shared batch.

        One probe row per candidate (sharing the student's stream-cache
        slot with any :class:`ScoreQuery` in the batch) — the last
        uncoalesced read path, folded.  The assumed-answer value worlds
        still run per query (:meth:`InferenceEngine._recommend_values`)
        against the snapshot taken here, after the shared flush.
        """
        for name, value, kinds in (
                ("top_k", query.top_k, (int,)),
                ("horizon", query.horizon, (int,)),
                ("target_success", query.target_success, (int, float)),
                ("value_weight", query.value_weight, (int, float))):
            if not isinstance(value, kinds) or isinstance(value, bool):
                expected = "an integer" if kinds == (int,) else "a number"
                replies[index] = MalformedQuery(
                    f"{name} must be {expected}, got {value!r}",
                    details={name: value})
                return
        for candidate in query.candidates:
            error = self._id_error_value(engine, candidate.question_id,
                                         candidate.concept_ids,
                                         query.student_id)
            if error is not None:
                replies[index] = error
                return
        history = engine.students.peek(query.student_id)
        if history is None or history.length == 0:
            replies[index] = EmptyHistory(
                f"recommendation needs a non-empty history"
                f"{engine._error_context(query.student_id)}",
                details={"student_id": str(query.student_id),
                         "model": engine.name})
            return
        if not query.candidates:
            replies[index] = RecommendReply(query.student_id, (),
                                            model=model_name)
            return
        start = engine._window_start(history.length)
        recommends[index] = _PendingRecommend(
            query, engine._snapshot_window(history))
        for candidate in query.candidates:
            rows.append(_ContextRow(history, start,
                                    (candidate.question_id,
                                     candidate.concept_ids),
                                    cache_key=query.student_id))
            meta.append(_ReadRow(index, "recommend", query, history, start,
                                 history.length))

    def _admit_recourse(self, engine, index, query: RecourseQuery, rows,
                        meta, recourses, replies) -> None:
        """Admit a recourse query's baseline probe into the shared batch.

        The target's unedited score rides the same coalesced context as
        every other read (sharing the student's stream-cache slot); the
        search generations run after the flush, each as its own single
        shared batch (:class:`~repro.serve.recourse.RecourseSearch`).
        Budget caps and id validation happen here so a bad query never
        costs a forward pass.
        """
        for name, value, kinds in (
                ("threshold", query.threshold, (int, float)),
                ("max_edits", query.max_edits, (int,)),
                ("beam_width", query.beam_width, (int,))):
            if not isinstance(value, kinds) or isinstance(value, bool):
                expected = "an integer" if kinds == (int,) else "a number"
                replies[index] = MalformedQuery(
                    f"{name} must be {expected}, got {value!r}",
                    details={name: value})
                return
        if not 0.0 <= query.threshold <= 1.0:
            replies[index] = MalformedQuery(
                f"threshold must be within [0, 1], got {query.threshold!r}",
                details={"threshold": query.threshold})
            return
        if not 1 <= query.max_edits <= MAX_EDITS:
            replies[index] = MalformedQuery(
                f"max_edits must be within [1, {MAX_EDITS}], got "
                f"{query.max_edits!r}", details={"max_edits":
                                                 query.max_edits})
            return
        if not 1 <= query.beam_width <= MAX_BEAM_WIDTH:
            replies[index] = MalformedQuery(
                f"beam_width must be within [1, {MAX_BEAM_WIDTH}], got "
                f"{query.beam_width!r}", details={"beam_width":
                                                  query.beam_width})
            return
        if not isinstance(query.allow_history_edits, bool):
            replies[index] = MalformedQuery(
                f"allow_history_edits must be a boolean, got "
                f"{query.allow_history_edits!r}",
                details={"allow_history_edits": query.allow_history_edits})
            return
        if not query.allow_history_edits and not query.candidates:
            replies[index] = MalformedQuery(
                f"recourse needs at least one edit dimension: provide "
                f"candidates or allow history edits"
                f"{engine._error_context(query.student_id)}")
            return
        error = self._id_error_value(engine, query.question_id,
                                     query.concept_ids, query.student_id)
        if error is not None:
            replies[index] = error
            return
        for candidate in query.candidates:
            error = self._id_error_value(engine, candidate.question_id,
                                         candidate.concept_ids,
                                         query.student_id)
            if error is not None:
                replies[index] = error
                return
        history = engine.students.peek(query.student_id)
        if history is None:
            replies[index] = UnknownStudent(
                f"recourse search needs a recorded history"
                f"{engine._error_context(query.student_id)}",
                details={"student_id": str(query.student_id),
                         "model": engine.name})
            return
        if history.length == 0:
            replies[index] = EmptyHistory(
                f"recourse search needs a non-empty history"
                f"{engine._error_context(query.student_id)}",
                details={"student_id": str(query.student_id),
                         "model": engine.name})
            return
        # Full-history snapshot: the search edits absolute positions and
        # re-windows every hypothetical timeline itself.
        recourses[index] = _PendingRecourse(
            query, tuple(a.copy() for a in history.view()))
        start = engine._window_start(history.length)
        rows.append(_ContextRow(history, start,
                                (query.question_id, query.concept_ids),
                                cache_key=query.student_id))
        meta.append(_ReadRow(index, "recourse_base", query, history, start,
                             history.length))

    # ------------------------------------------------------------------
    # The mixed-type shared-context flush
    # ------------------------------------------------------------------
    def _flush_reads(self, engine: InferenceEngine, model_name: str,
                     coalesced, replies: List[object]) -> None:
        """Score + explain + what-if + recommend/recourse-probe batch."""
        rows: List[_ContextRow] = []
        meta: List[_ReadRow] = []
        recommends = {}
        recourses = {}
        with no_grad():
            with engine._lock:
                for index, query in coalesced:
                    if isinstance(query, ScoreQuery):
                        self._admit_score(engine, index, query, rows, meta,
                                          replies)
                    elif isinstance(query, ExplainQuery):
                        self._admit_explain(engine, index, query, rows,
                                            meta, replies)
                    elif isinstance(query, RecommendQuery):
                        self._admit_recommend(engine, model_name, index,
                                              query, rows, meta,
                                              recommends, replies)
                    elif isinstance(query, RecourseQuery):
                        self._admit_recourse(engine, index, query, rows,
                                             meta, recourses, replies)
                    else:
                        self._admit_what_if(engine, index, query, rows,
                                            meta, replies)
                if not rows:
                    return
                context, cols = engine._assemble_rows(rows)
            # Backward passes run outside the engine lock: the context
            # holds copies (and a consistent model reference even across
            # a concurrent hot swap).
            probe_rows = np.array([k for k, row in enumerate(meta)
                                   if row.role != "explain"],
                                  dtype=np.int64)
            scores = np.full(len(rows), np.nan)
            if len(probe_rows):
                scores[probe_rows] = engine._score_context(
                    context, probe_rows, cols[probe_rows])
            explain_rows = np.array([k for k, row in enumerate(meta)
                                     if row.role == "explain"],
                                    dtype=np.int64)
            computation = None
            if len(explain_rows):
                computation = context.influences_for(explain_rows,
                                                     cols[explain_rows])
        self._obs_coalesced_reads.inc(len(rows))
        self._resolve_reads(engine, model_name, meta, scores, explain_rows,
                            computation, recommends, recourses, replies)

    def _admit_score(self, engine, index, query: ScoreQuery, rows, meta,
                     replies) -> None:
        error = self._id_error_value(engine, query.question_id,
                                     query.concept_ids, query.student_id)
        if error is not None:
            replies[index] = error
            return
        history = engine.students.peek(query.student_id) \
            or StudentHistory(query.student_id)
        start = engine._window_start(history.length)
        rows.append(_ContextRow(history, start,
                                (query.question_id, query.concept_ids),
                                cache_key=query.student_id))
        meta.append(_ReadRow(index, "score", query, history, start,
                             history.length))

    def _admit_explain(self, engine, index, query: ExplainQuery, rows,
                       meta, replies) -> None:
        history = engine.students.peek(query.student_id)
        if history is None or history.length < 2:
            # The taxonomy distinguishes "who?" from "not enough yet",
            # but the message keeps the engine's historical wording.
            cls = UnknownStudent if history is None else EmptyHistory
            replies[index] = cls(
                f"influences need at least two recorded responses"
                f"{engine._error_context(query.student_id)}",
                details={"student_id": str(query.student_id),
                         "history_length":
                         history.length if history else 0,
                         "model": engine.name})
            return
        # The target is the last response; the window bounds the
        # history *before* it.
        start = engine._window_start(history.length - 1)
        rows.append(_ContextRow(history, start, None,
                                cache_key=query.student_id))
        meta.append(_ReadRow(index, "explain", query, history, start,
                             history.length))

    def _admit_what_if(self, engine, index, query: WhatIfQuery, rows,
                       meta, replies) -> None:
        error = self._id_error_value(engine, query.question_id,
                                     query.concept_ids, query.student_id)
        if error is not None:
            replies[index] = error
            return
        history = engine.students.peek(query.student_id)
        if history is None:
            replies[index] = UnknownStudent(
                f"what-if replay needs a recorded history"
                f"{engine._error_context(query.student_id)}",
                details={"student_id": str(query.student_id),
                         "model": engine.name})
            return
        edited = self._apply_edits(engine, history, query)
        if is_error(edited):
            replies[index] = edited
            return
        # Two rows per query: the edited timeline (detached — never
        # cached) and the recorded baseline (shares the student's cache
        # slot with any ScoreQuery in the batch).
        edit_start = engine._window_start(edited.length)
        rows.append(_ContextRow(edited, edit_start,
                                (query.question_id, query.concept_ids)))
        meta.append(_ReadRow(index, "what_if_edit", query, edited,
                             edit_start, edited.length))
        start = engine._window_start(history.length)
        rows.append(_ContextRow(history, start,
                                (query.question_id, query.concept_ids),
                                cache_key=query.student_id))
        meta.append(_ReadRow(index, "what_if_base", query, history, start,
                             history.length))

    def _apply_edits(self, engine, history, query: WhatIfQuery):
        """Edited detached timeline, or the first ``InvalidEdit``."""
        length = history.length
        for edit in query.edits:
            context = engine._error_context(query.student_id)
            if edit.op not in EDIT_OPS:
                return InvalidEdit(
                    f"unknown edit op '{edit.op}' (expected one of "
                    f"{list(EDIT_OPS)}){context}",
                    details={"op": edit.op})
            if not isinstance(edit.position, int) \
                    or isinstance(edit.position, bool):
                return InvalidEdit(
                    f"edit position must be an integer, got "
                    f"{edit.position!r}{context}",
                    details={"position": edit.position})
            if not 0 <= edit.position < length:
                return InvalidEdit(
                    f"edit position {edit.position} outside the recorded "
                    f"history [0, {length}){context}",
                    details={"position": edit.position,
                             "history_length": length})
            if edit.op == "set" and edit.value not in (0, 1):
                return InvalidEdit(
                    f"edit value must be 0 or 1, got {edit.value!r}"
                    f"{context}", details={"value": edit.value})
        positions = [edit.position for edit in query.edits]
        if len(set(positions)) != len(positions):
            duplicate = next(p for p in positions if positions.count(p) > 1)
            return InvalidEdit(
                f"duplicate edit position {duplicate}: positions index "
                f"the history before any edits apply, so each may be "
                f"edited at most once per query"
                f"{engine._error_context(query.student_id)}",
                details={"position": duplicate})
        questions, responses, concepts, counts = \
            (array.copy() for array in history.view())
        # Highest position first: removals never shift a pending index.
        for edit in sorted(query.edits, key=lambda e: -e.position):
            if edit.op == "flip":
                responses[edit.position] = 1 - responses[edit.position]
            elif edit.op == "set":
                responses[edit.position] = edit.value
            else:
                keep = np.arange(len(questions)) != edit.position
                questions = questions[keep]
                responses = responses[keep]
                concepts = concepts[keep]
                counts = counts[keep]
        return ArrayHistory(query.student_id, questions, responses,
                            concepts, counts)

    def _resolve_reads(self, engine: InferenceEngine, model_name: str,
                       meta: List[_ReadRow], scores, explain_rows,
                       computation, recommends, recourses,
                       replies) -> None:
        """Turn raw scores/influence grids into typed replies."""
        edit_scores = {}
        base_scores = {}
        for position, row in enumerate(meta):
            if row.role == "score":
                replies[row.index] = ScoreReply(
                    row.query.student_id, row.query.question_id,
                    float(scores[position]), row.length, model=model_name)
            elif row.role == "what_if_edit":
                edit_scores[row.index] = (row.query, float(scores[position]),
                                          row.length)
            elif row.role == "what_if_base":
                base_scores[row.index] = float(scores[position])
            elif row.role == "recommend":
                # Meta order preserves candidate order per query.
                recommends[row.index].probabilities.append(
                    float(scores[position]))
            elif row.role == "recourse_base":
                recourses[row.index].baseline = float(scores[position])
        for index, (query, score, edited_length) in edit_scores.items():
            replies[index] = WhatIfReply(
                query.student_id, query.question_id, score,
                baseline_score=base_scores[index],
                history_length=edited_length, model=model_name)
        for position, row_index in enumerate(explain_rows):
            row = meta[row_index]
            replies[row.index] = self._explain_reply(
                model_name, row, computation, position,
                attach=len(explain_rows) == 1)
        for index, pending in recommends.items():
            try:
                replies[index] = self._recommend_reply(engine, model_name,
                                                       pending)
            except Exception as error:  # noqa: BLE001 — taxonomy boundary
                replies[index] = InternalError(
                    f"scheduler failure in model '{engine.name}': "
                    f"{type(error).__name__}: {error}",
                    details={"model": engine.name})
        for index, pending in recourses.items():
            try:
                replies[index] = self._recourse_reply(engine, model_name,
                                                      pending)
            except Exception as error:  # noqa: BLE001 — taxonomy boundary
                replies[index] = InternalError(
                    f"scheduler failure in model '{engine.name}': "
                    f"{type(error).__name__}: {error}",
                    details={"model": engine.name})

    def _recommend_reply(self, engine: InferenceEngine, model_name: str,
                         pending: _PendingRecommend) -> RecommendReply:
        """Blend shared-batch probabilities with the value worlds."""
        query = pending.query
        values = engine._recommend_values(pending.snapshot,
                                          query.candidates, query.horizon)
        items = []
        for candidate, probability, value in zip(query.candidates,
                                                 pending.probabilities,
                                                 values):
            difficulty_fit = 1.0 - abs(probability - query.target_success)
            items.append(RecommendationItem(
                question_id=candidate.question_id,
                concept_ids=tuple(candidate.concept_ids),
                success_probability=probability,
                value=float(value),
                score=difficulty_fit + query.value_weight * float(value)))
        items.sort(key=lambda item: -item.score)
        return RecommendReply(query.student_id,
                              tuple(items[:query.top_k]),
                              model=model_name)

    def _recourse_reply(self, engine: InferenceEngine, model_name: str,
                        pending: _PendingRecourse):
        """Run the edit search against the admission-time snapshot.

        The student's warm stream-cache entry — which the baseline probe
        just built if the student was cold — is cloned under the engine
        lock as the search's root timeline, so first-generation practice
        worlds extend it instead of re-encoding the history.  A stale
        entry (window slid, or a record landed since admission) simply
        forfeits the warm start; the search rebuilds worlds in its own
        batched passes either way.
        """
        query = pending.query
        length = len(pending.snapshot[0])
        start = engine._window_start(length)
        root_entry = None
        if engine.stream_caches.enabled:
            with engine._lock:
                entry = engine.stream_caches.peek(query.student_id)
                if entry is not None and entry.anchor == start \
                        and entry.length == length - start:
                    root_entry = entry.clone()
        search = RecourseSearch(engine, model_name, query,
                                pending.snapshot, pending.baseline,
                                root_entry)
        return search.run()

    # ------------------------------------------------------------------
    # Monotonicity diagnostic
    # ------------------------------------------------------------------
    def monotonicity_report(self, student_id,
                            model: str = DEFAULT_MODEL):
        """Count correct-response-lowers-mastery violations for a student.

        The standalone version of the recourse reply's ``lowered_score``
        flag (Counterfactual Monotonic KT, PAPERS.md) — and the answer-
        bias probe of the source paper: for every in-window *incorrect*
        recorded response, compare re-asking that question next on the
        recorded timeline vs the same timeline with the response set
        correct.  A well-behaved model should never predict *lower*
        mastery after the correction; each position where it does counts
        as a violation.  All ``2 × positions`` probes run as one shared
        forward-stream batch.

        Returns a plain dict report — or a taxonomy error value
        (``model_not_loaded`` / ``unknown_student`` / ``empty_history``),
        never an exception, mirroring the query surface.
        """
        engine = self.registry.get(model)
        if engine is None:
            return ModelNotLoaded(
                f"no model named '{model}' is loaded "
                f"(known: {self.registry.names()})",
                details={"model": model,
                         "known": tuple(self.registry.names())})
        with engine._lock:
            history = engine.students.peek(student_id)
            if history is not None:
                snapshot = tuple(a.copy() for a in history.view())
        if history is None:
            return UnknownStudent(
                f"monotonicity report needs a recorded history"
                f"{engine._error_context(student_id)}",
                details={"student_id": str(student_id),
                         "model": engine.name})
        questions, responses, concepts, counts = snapshot
        length = len(questions)
        if length == 0:
            return EmptyHistory(
                f"monotonicity report needs a non-empty history"
                f"{engine._error_context(student_id)}",
                details={"student_id": str(student_id),
                         "model": engine.name})
        start = engine._window_start(length)
        positions = [p for p in range(start, length) if responses[p] == 0]
        rows: List[_ContextRow] = []
        for position in positions:
            probe = (int(questions[position]),
                     tuple(int(c) for c in
                           concepts[position, :counts[position]]))
            recorded = ArrayHistory(student_id, questions, responses,
                                    concepts, counts)
            corrected_responses = responses.copy()
            corrected_responses[position] = 1
            corrected = ArrayHistory(student_id, questions,
                                     corrected_responses, concepts, counts)
            rows.append(_ContextRow(recorded, start, probe))
            rows.append(_ContextRow(corrected, start, probe))
        deltas = []
        if rows:
            scores, _ = engine._score_rows(rows)
            deltas = [float(scores[2 * k + 1] - scores[2 * k])
                      for k in range(len(positions))]
        violations = [positions[k] for k, delta in enumerate(deltas)
                      if delta < 0.0]
        return {
            "student_id": student_id,
            "model": model,
            "history_length": length,
            "window_start": start,
            "positions_checked": len(positions),
            "violations": len(violations),
            "violation_positions": violations,
            "max_drop": float(-min(deltas)) if violations else 0.0,
            "mean_delta": float(np.mean(deltas)) if deltas else 0.0,
        }

    def _explain_reply(self, model_name: str, row: _ReadRow,
                       computation, position: int,
                       attach: bool) -> ExplainReply:
        query = row.query
        start = row.start
        questions, responses, _, _ = row.history.view()
        target = row.length - 1
        correct_deltas = computation.correct_deltas.data[position]
        incorrect_deltas = computation.incorrect_deltas.data[position]
        items = []
        for offset in range(target - start):
            absolute = start + offset
            correct = int(responses[absolute])
            delta = correct_deltas[offset] if correct \
                else incorrect_deltas[offset]
            items.append(InfluenceItem(
                position=absolute,
                question_id=int(questions[absolute]),
                correct=correct,
                influence=float(delta)))
        return ExplainReply(
            query.student_id,
            target_question_id=int(questions[target]),
            target_correct=int(responses[target]),
            score=float(computation.scores[position]),
            influences=tuple(items),
            model=model_name,
            computation=computation if attach else None)
