"""Named model registry: many checkpoints behind one service.

Each registered name owns one :class:`~repro.serve.InferenceEngine` —
model weights *plus* that model's per-student histories and
forward-stream caches, because cached state is a function of the
weights it was computed under and must live and die with them.

Hot swap generalizes ``InferenceEngine.reload_checkpoint``: ``swap``
loads refreshed weights into the *named* engine atomically (histories
survive, stream caches invalidate), and ``register`` rebinds a name to
a brand-new engine in one assignment — an in-flight query that already
resolved the old engine finishes consistently on the old model.

Thread-safe: the registry lock guards the name table only; per-engine
state is guarded by each engine's own lock.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from .engine import InferenceEngine
from .protocol import DEFAULT_MODEL


class ModelRegistry:
    """Name -> :class:`InferenceEngine` table with atomic rebinding."""

    def __init__(self):
        self._engines: Dict[str, InferenceEngine] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._engines)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._engines

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._engines)

    def register(self, name: str, engine: InferenceEngine
                 ) -> InferenceEngine:
        """Bind ``name`` to ``engine`` (replacing any previous binding).

        The engine adopts the name so its validation errors can report
        which model rejected the request — unless the engine is already
        bound to a :class:`~repro.serve.Service` over a *different*
        registry: renaming it then would make its legacy shims address a
        name that facade has never heard of, bricking ``engine.score``
        et al.  In that case the engine keeps its canonical name (and
        its working shims) while this registry serves it under ``name``.
        """
        if not name:
            raise ValueError("model name must be non-empty")
        bound = engine._service
        if bound is None or bound.registry is self:
            engine.name = name
        with self._lock:
            self._engines[name] = engine
        return engine

    def load(self, name: str, path, **engine_kwargs) -> InferenceEngine:
        """Register a fresh engine built from a checkpoint file."""
        engine = InferenceEngine.from_checkpoint(path, **engine_kwargs)
        return self.register(name, engine)

    def get(self, name: str) -> Optional[InferenceEngine]:
        """The engine bound to ``name``, or ``None`` (caller maps the
        miss to a :class:`~repro.serve.protocol.ModelNotLoaded`)."""
        with self._lock:
            return self._engines.get(name)

    def swap(self, name: str, path) -> InferenceEngine:
        """Atomic in-place hot swap: refreshed weights for ``name``.

        Delegates to :meth:`InferenceEngine.reload_checkpoint`, so the
        same guarantees apply — histories survive, stream caches
        invalidate, and a config/id-space mismatch raises ``ValueError``
        without touching the serving state.  Raises ``KeyError`` for an
        unregistered name.
        """
        engine = self.get(name)
        if engine is None:
            raise KeyError(f"no model named '{name}' is registered "
                           f"(known: {self.names()})")
        engine.reload_checkpoint(path)
        return engine

    def unregister(self, name: str) -> Optional[InferenceEngine]:
        """Drop a binding; in-flight queries that resolved the engine
        finish, new queries get ``ModelNotLoaded``."""
        with self._lock:
            return self._engines.pop(name, None)

    def describe(self) -> List[dict]:
        """Per-model metadata (the gateway's ``/v1/models`` body)."""
        with self._lock:
            items = sorted(self._engines.items())
        return [
            {
                "name": name,
                "encoder": engine.model.config.encoder,
                "dim": engine.model.config.dim,
                "num_questions": engine.num_questions,
                "num_concepts": engine.num_concepts,
                "window": engine.window,
                "students": len(engine.students),
            }
            for name, engine in items
        ]


def registry_for(model_or_engine, **engine_kwargs) -> ModelRegistry:
    """One-model registry for the facade's single-model sugar.

    An existing engine keeps the name it already carries (so shims and
    error payloads stay consistent with any external registration); a
    bare model gets :data:`DEFAULT_MODEL`.
    """
    registry = ModelRegistry()
    if isinstance(model_or_engine, InferenceEngine):
        if engine_kwargs:
            raise ValueError("engine_kwargs only apply when constructing "
                             "from a bare model")
        engine = model_or_engine
        name = engine.name or DEFAULT_MODEL
    else:
        engine = InferenceEngine(model_or_engine, **engine_kwargs)
        name = DEFAULT_MODEL
    registry.register(name, engine)
    return registry
