"""The serving engine: one model's compute core behind the typed facade.

The engine owns a checkpointed model plus everything that model's
serving state needs — per-student histories, incremental forward-stream
caches, window anchoring, a persistent worker pool — and exposes the
row-level scheduling primitives (:meth:`InferenceEngine._assemble_rows`,
:meth:`InferenceEngine._score_context`) the
:class:`repro.serve.Service` scheduler drives.  The classic convenience
methods below (``score``/``score_batch``/``influences``/``recommend``)
are thin deprecation shims over that facade: same scheduler, same
numbers, with structured error values translated back into the
``ValueError``s they historically raised.

Request lifecycle (legacy surface)
----------------------------------
1. ``record(student, question, correct, concepts)`` appends one response
   to the student's cached arrays (O(1) amortized — see
   :mod:`repro.serve.history`).
2. ``submit(ScoreRequest(...))`` enqueues a "how would this student do on
   question q next?" probe and returns a :class:`PendingScore` handle.
3. When ``max_batch`` requests are pending — or on an explicit
   ``flush()`` — the engine assembles **one** padded batch across all
   waiting students (histories of arbitrary, ragged lengths share the
   batch thanks to the truncated-mask fast path) and resolves every
   handle from a single stacked counterfactual pass.
4. ``score(...)`` / ``score_batch(...)`` are the synchronous conveniences
   built on the same path.

This replaces the seed's serving idiom (one collated single-row
``predict_scores`` call per probe, as in
:func:`repro.interpret.recommendation.question_value`) with
column-chunked stacked passes: identical scores, several times the
throughput — ``benchmarks/bench_inference.py`` tracks the exact factor.
"""

from __future__ import annotations

import functools
import threading
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import RCKT, RCKTConfig
from repro.core.masking import check_window, window_start
from repro.core.multi_target import (FORWARD_BASES, MultiTargetContext,
                                     column_banded_chunks, map_chunks,
                                     score_batch_targets)
from repro.data import PAD_ID, Batch, KTDataset
from repro.tensor import enable_grad, no_grad
from repro.utils import load_checkpoint, save_checkpoint

from .. import obs
from ..obs import names as metric_names
from .forward_cache import (DEFAULT_STREAM_CACHE_BYTES, StreamCacheStore,
                            base_contents, build_stream_caches,
                            question_vector_for)
from .history import HistoryStore, HistoryWindow, assemble_padded
from .protocol import DEFAULT_MODEL


@dataclass(frozen=True)
class ScoreRequest:
    """Score P(correct) for ``student_id`` answering ``question_id`` next."""

    student_id: object
    question_id: int
    concept_ids: Tuple[int, ...]

    def __post_init__(self):
        object.__setattr__(self, "concept_ids", tuple(self.concept_ids))


@dataclass
class PendingScore:
    """Handle returned by ``submit``; resolved on the next flush."""

    request: ScoreRequest
    _value: Optional[float] = field(default=None, repr=False)

    @property
    def done(self) -> bool:
        return self._value is not None

    @property
    def value(self) -> float:
        if self._value is None:
            raise RuntimeError("request not flushed yet — call "
                               "InferenceEngine.flush()")
        return self._value


def _deprecated_shim(replacement: str):
    """The one adapter every legacy convenience method routes through.

    Emits a single :class:`DeprecationWarning` naming the typed-facade
    replacement and the documented removal schedule
    (``docs/API.md``, "Deprecation schedule"), then calls the original
    method unchanged — behavior stays bit-identical, which the existing
    shim tests pin.  Warnings point at the *caller* (``stacklevel=2``).
    """
    def decorate(method):
        @functools.wraps(method)
        def shim(self, *args, **kwargs):
            warnings.warn(
                f"InferenceEngine.{method.__name__}() is deprecated; use "
                f"{replacement} instead (removal schedule: docs/API.md, "
                f"'Deprecation schedule')",
                DeprecationWarning, stacklevel=2)
            return method(self, *args, **kwargs)
        shim.__deprecated_replacement__ = replacement
        shim.__wrapped_shim__ = method
        return shim
    return decorate


@dataclass
class _ContextRow:
    """One row of a shared scoring context (the scheduler's unit).

    ``history`` is any object with the read interface of
    :class:`~repro.serve.history.StudentHistory` — the stored history,
    or a detached :class:`~repro.serve.history.ArrayHistory` carrying a
    what-if edit.  ``start`` is the window anchor into it.  ``probe``
    appends a virtual next interaction (score/what-if rows); ``None``
    makes the row's *last recorded position* the target (explain rows).
    ``cache_key`` names the stream-cache slot that may serve this row
    (``None`` for detached/edited rows, which are always built
    transiently).
    """

    history: object
    start: int
    probe: Optional[Tuple[int, Tuple[int, ...]]]
    cache_key: object = None


class InferenceEngine:
    """Multi-student counterfactual scoring around one loaded RCKT model.

    Parameters
    ----------
    model:
        A (typically trained) :class:`repro.core.RCKT`.
    max_batch:
        Pending-request count that triggers an automatic flush.
    target_batch:
        Chunk size of the underlying stacked passes (see
        :func:`repro.core.multi_target.score_batch_targets`).
    workers:
        Thread count for the independent column-banded score chunks
        (NumPy's kernels release the GIL; 1 disables pooling).
    stream_cache_bytes:
        LRU byte budget for the per-student incremental forward-stream
        caches (:mod:`repro.serve.forward_cache`).  With a warm cache,
        ``record`` extends the cached encoder state by one step and
        ``score`` skips the forward half of the encoder entirely; 0 or
        ``None`` disables caching and serves every request through the
        batch re-encoding path (the golden reference the parity suite
        compares against).
    window:
        Sliding-window context size: every score uses at most the
        student's last ``window`` recorded responses as history (the
        probe rides on top), so per-request compute and per-student
        cache memory stay bounded no matter how long a history grows.
        ``None`` (default) serves full histories — still unbounded in
        length (positional tables grow on demand) but with compute that
        scales with history length.  Windowed scores are exactly the
        scores a full recompute on the truncated window produces.
    window_hop:
        Re-anchoring stride of the window (default ``max(1,
        window // 8)``): the window start only advances in multiples of
        ``hop``, so the cached encoder state is rebuilt once per ``hop``
        records instead of on every append, at the cost of the context
        length breathing in ``(window - hop, window]``.  See
        :func:`repro.core.masking.window_start` — the anchored start is
        a pure function of the history length, so cached, uncached, and
        offline recompute paths all agree on the same window.

    Raises
    ------
    ValueError
        On non-positive ``max_batch``/``workers`` or an invalid
        ``(window, window_hop)`` pair.
    """

    def __init__(self, model: RCKT, max_batch: int = 64,
                 target_batch: int = 64, workers: int = 1,
                 stream_cache_bytes: Optional[int]
                 = DEFAULT_STREAM_CACHE_BYTES,
                 window: Optional[int] = None,
                 window_hop: Optional[int] = None,
                 name: str = DEFAULT_MODEL):
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if workers <= 0:
            raise ValueError("workers must be positive")
        if window is None:
            if window_hop is not None:
                raise ValueError("window_hop requires a window")
            window_hop = 1
        else:
            if window_hop is None:
                window_hop = max(1, window // 8)
            check_window(window, window_hop)
        self.window = window
        self.window_hop = window_hop
        self.model = model
        self.name = name
        self.max_batch = max_batch
        self.target_batch = target_batch
        self.workers = workers
        self.students = HistoryStore()
        self.stream_caches = StreamCacheStore(stream_cache_bytes)
        self._pending: List[PendingScore] = []
        self._lock = threading.Lock()
        self._service = None
        # One persistent pool per engine, reused across every scoring
        # call (spinning a ThreadPoolExecutor up per call costs more
        # than small serving batches do — the ROADMAP's small-batch
        # latency item).  Threads spawn lazily on first use.
        self._executor = None
        if workers > 1:
            from concurrent.futures import ThreadPoolExecutor
            self._executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="rckt-serve")
        embedder = model.generator.embedder
        self.num_questions = embedder.question_embedding.num_embeddings - 1
        self.num_concepts = embedder.concept_embedding.num_embeddings - 1
        registry = obs.get_registry()
        self._obs_forward_calls = registry.counter(
            metric_names.ENGINE_FORWARD_CALLS_TOTAL)
        self._obs_worker_tasks = registry.counter(
            metric_names.ENGINE_WORKER_TASKS_TOTAL)
        model.eval()

    @property
    def service(self):
        """The typed :class:`repro.serve.Service` facade over this engine.

        Built lazily (one single-model registry under this engine's
        ``name``); the legacy convenience methods below are thin shims
        over it, so in-process callers and wire callers share one code
        path, one scheduler, and one error taxonomy.
        """
        if self._service is None:
            from .service import Service
            self._service = Service(self)
        return self._service

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _window_start(self, history_length: int) -> int:
        """Anchored window start for a history of ``history_length`` steps."""
        return window_start(history_length, self.window, self.window_hop)

    def _error_context(self, student_id=None) -> str:
        if student_id is None:
            return f" (model '{self.name}')"
        return f" (model '{self.name}', student {student_id!r})"

    def _id_error(self, question_id: int, concept_ids: Sequence[int],
                  student_id=None) -> Optional[Tuple[str, str, dict]]:
        """First id-validation failure as ``(kind, message, details)``.

        ``kind`` is ``"question"`` / ``"concept"`` / ``"concept_empty"``;
        the message names the offending id, the valid range, and the
        model/student context so a gateway error payload is actionable
        on its own.  ``None`` when everything is in vocabulary.
        """
        context = self._error_context(student_id)
        if not isinstance(question_id, (int, np.integer)) \
                or isinstance(question_id, bool):
            # Wire payloads can carry any JSON type: reject before a
            # string reaches an ordered comparison, a JSON `true` turns
            # into question 1, or either reaches an embedding gather.
            return ("question",
                    f"question_id must be an integer, got "
                    f"{question_id!r}{context}",
                    {"question_id": question_id, "model": self.name})
        if not 1 <= question_id <= self.num_questions:
            return ("question",
                    f"question_id {question_id} outside the model's "
                    f"vocabulary [1, {self.num_questions}]{context}",
                    {"question_id": question_id,
                     "valid_range": (1, self.num_questions),
                     "model": self.name})
        if not concept_ids:
            # Empty concept sets would divide by a zero concept count
            # deep inside the embedder (Eq. 23 averages over concepts).
            return ("concept_empty",
                    f"concept_ids must be non-empty{context}",
                    {"model": self.name})
        for concept in concept_ids:
            if not isinstance(concept, (int, np.integer)) \
                    or isinstance(concept, bool):
                return ("concept",
                        f"concept id must be an integer, got "
                        f"{concept!r}{context}",
                        {"concept_id": concept, "model": self.name})
            if not 1 <= concept <= self.num_concepts:
                return ("concept",
                        f"concept id {concept} outside the model's "
                        f"vocabulary [1, {self.num_concepts}]{context}",
                        {"concept_id": int(concept),
                         "valid_range": (1, self.num_concepts),
                         "model": self.name})
        return None

    def _validate_ids(self, question_id: int, concept_ids: Sequence[int],
                      student_id=None) -> None:
        error = self._id_error(question_id, concept_ids, student_id)
        if error is not None:
            raise ValueError(error[1])

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist model weights plus the config/id-space metadata needed
        to rebuild the engine without the original constructor call."""
        with self._lock:
            # One capture: metadata and weights must describe the same
            # model even if a reload swaps self.model mid-save.
            model = self.model
        embedder = model.generator.embedder
        metadata = {
            "config": model.config.__dict__,
            # Embedding tables carry a +1 row for the padding id.
            "num_questions": embedder.question_embedding.weight.shape[0] - 1,
            "num_concepts": embedder.concept_embedding.weight.shape[0] - 1,
        }
        save_checkpoint(path, model.state_dict(), metadata)

    @classmethod
    def from_checkpoint(cls, path, max_batch: int = 64,
                        target_batch: int = 64, workers: int = 1,
                        stream_cache_bytes: Optional[int]
                        = DEFAULT_STREAM_CACHE_BYTES,
                        window: Optional[int] = None,
                        window_hop: Optional[int] = None
                        ) -> "InferenceEngine":
        """Rebuild an engine from :meth:`save` output.

        Raises ``ValueError`` when the checkpoint lacks the engine
        metadata (config and id-space sizes) that :meth:`save` embeds.
        """
        state, metadata = load_checkpoint(path)
        try:
            config = RCKTConfig(**metadata["config"])
            num_questions = int(metadata["num_questions"])
            num_concepts = int(metadata["num_concepts"])
        except KeyError as missing:
            raise ValueError(f"checkpoint at {path} lacks engine metadata "
                             f"({missing})") from None
        model = RCKT(num_questions, num_concepts, config)
        model.load_state_dict(state)
        return cls(model, max_batch=max_batch, target_batch=target_batch,
                   workers=workers, stream_cache_bytes=stream_cache_bytes,
                   window=window, window_hop=window_hop)

    def reload_checkpoint(self, path) -> None:
        """Swap in refreshed weights (e.g. a periodic retrain).

        Histories survive — they are ground-truth observations — but
        every cached forward-stream state is invalidated: those arrays
        are functions of the old weights, and serving them against the
        new ones would silently mix models.  The next score per student
        rebuilds the cache through the vectorized warm-up path.

        The swap is atomic: weights load into a *fresh* model object
        which replaces ``self.model`` under the lock, so a concurrent
        score that already captured the old model finishes consistently
        on the old weights instead of reading a half-updated (or mixed
        old/new) parameter set.
        """
        state, metadata = load_checkpoint(path)
        with self._lock:
            # The config is immutable across reloads (validated below),
            # so one captured reference serves both checks and the
            # fresh-model construction.
            current = self.model
        config = metadata.get("config")
        if config is not None:
            # The init seed is not architecture: a retrained checkpoint
            # may legitimately carry a different one.
            theirs = {k: v for k, v in
                      RCKTConfig(**config).__dict__.items() if k != "seed"}
            ours = {k: v for k, v in current.config.__dict__.items()
                    if k != "seed"}
            if theirs != ours:
                raise ValueError(f"checkpoint at {path} was trained with a "
                                 f"different model config; build a fresh "
                                 f"engine via from_checkpoint instead")
        for key in ("num_questions", "num_concepts"):
            if key in metadata and int(metadata[key]) != getattr(self, key):
                raise ValueError(f"checkpoint at {path} has a different "
                                 f"{key} ({metadata[key]} vs "
                                 f"{getattr(self, key)})")
        with enable_grad():
            # Parameter registration must see gradients enabled even if
            # a scoring thread's no_grad scope is ambient here.
            model = RCKT(self.num_questions, self.num_concepts,
                         current.config)
        model.load_state_dict(state)
        model.eval()
        with self._lock:
            self.model = model
            self.stream_caches.invalidate()

    # ------------------------------------------------------------------
    # History management
    # ------------------------------------------------------------------
    def record(self, student_id, question_id: int, correct: int,
               concept_ids: Sequence[int]) -> None:
        """Append one observed response to a student's cached history.

        Rejects ids outside the checkpoint vocabulary (and non-binary
        ``correct``) *before* touching any state — a bad event must
        never poison the cached history or the stream cache.  With a
        warm forward-stream cache, the append also advances the cached
        encoder state by exactly one step (the incremental fast path);
        histories are never length-bounded — beyond the serving window
        (or the initial positional-table size without one) the append
        stays O(1) and scoring windows or grows transparently.

        Raises
        ------
        ValueError
            If ``question_id``/``concept_ids`` fall outside the model's
            vocabulary or ``correct`` is not 0/1.
        """
        self._validate_ids(question_id, concept_ids, student_id)
        if correct not in (0, 1):
            raise ValueError(f"correct must be 0 or 1, got {correct}")
        with self._lock:
            history = self.students.record(student_id, question_id, correct,
                                           concept_ids)
            self._extend_stream_cache(student_id, history, question_id,
                                      correct, concept_ids)

    # invariant: holds-lock
    def _extend_stream_cache(self, student_id, history, question_id: int,
                             correct: int, concept_ids) -> None:
        """Advance a warm cache by the step just recorded (lock held)."""
        if not self.stream_caches.enabled:
            return
        entry = self.stream_caches.peek(student_id)
        if entry is None:
            return  # cold/evicted: next score warm-builds in one pass
        if self._window_start(history.length) != entry.anchor:
            # The serving window slid past the cached anchor: cached
            # states are functions of their window-relative positions,
            # so the entry cannot be extended — the next score rebuilds
            # it from the new window slice in one vectorized pass.
            self.stream_caches.discard(student_id)
            return
        if entry.length != history.length - 1 - entry.anchor:
            # Out of sync (e.g. a bulk load since the last score):
            # stale states must not be extended.
            self.stream_caches.discard(student_id)
            return
        generator = self.model.generator
        question_vector = question_vector_for(generator.embedder,
                                              question_id, concept_ids)
        categories = base_contents(np.asarray(correct),
                                   self.model.config.use_monotonicity)
        try:
            entry.extend(generator.encoder, question_vector, categories,
                         generator.embedder.response_embedding.weight.data)
        except ValueError:
            # Defensive: the cache must never make record() fail where
            # the uncached engine would have accepted the event.
            self.stream_caches.discard(student_id)
            return
        self.stream_caches.note_growth(student_id)

    def load_dataset(self, dataset: KTDataset) -> None:
        """Warm the history store with an offline log.

        Every interaction is validated against the checkpoint vocabulary
        up front (same errors as :meth:`score`) so a corrupt log cannot
        half-load.  Stream caches of touched students are invalidated:
        bulk history changes are cheaper to re-encode once at the next
        score than to replay step-by-step.
        """
        for sequence in dataset:
            for interaction in sequence:
                self._validate_ids(interaction.question_id,
                                   interaction.concept_ids,
                                   sequence.student_id)
        with self._lock:
            for sequence in dataset:
                self.students.load_sequence(sequence)
                self.stream_caches.discard(sequence.student_id)

    def history_length(self, student_id) -> int:
        """Number of responses recorded for ``student_id`` (0 if unknown).

        Always the *full* history: the serving window bounds what a
        score conditions on, never what is stored.
        """
        with self._lock:
            history = self.students.peek(student_id)
            return history.length if history is not None else 0

    def stream_cache_stats(self) -> dict:
        """Occupancy/hit/eviction counters of the forward-stream cache."""
        with self._lock:
            return self.stream_caches.stats()

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    @_deprecated_shim("Service.execute_batch (one BatchEnvelope per flush)")
    def submit(self, request: ScoreRequest) -> PendingScore:
        """Enqueue a request; auto-flushes when ``max_batch`` are waiting.

        Invalid requests are rejected here, synchronously — a bad id must
        never poison a batch other callers are waiting on.
        """
        self._validate_ids(request.question_id, request.concept_ids,
                           request.student_id)
        pending = PendingScore(request)
        with self._lock:
            self._pending.append(pending)
            ready = len(self._pending) >= self.max_batch
        if ready:
            self.flush()
        return pending

    @_deprecated_shim("Service.execute_batch (one BatchEnvelope per flush)")
    def flush(self) -> List[PendingScore]:
        """Resolve all pending requests in one micro-batched pass."""
        with self._lock:
            batch, self._pending = self._pending, []
        if not batch:
            return []
        try:
            scores = self.score_batch([p.request for p in batch])
        except Exception:
            # Don't strand the other callers' handles: put the batch
            # back so a later flush can retry it.
            with self._lock:
                self._pending = batch + self._pending
            raise
        for pending, score in zip(batch, scores):
            pending._value = float(score)
        return batch

    @_deprecated_shim("Service.execute_batch with ScoreQuery values")
    def score_batch(self, requests: Sequence[ScoreRequest]) -> np.ndarray:
        """Scores for many (student, next-question) probes at once.

        Deprecation shim: requests become typed
        :class:`~repro.serve.protocol.ScoreQuery` values executed by the
        :attr:`service` facade's scheduler — the same shared
        forward-stream batches, stream-cache reuse, and window anchoring
        as before, now also reachable over the wire.  Prefer
        ``engine.service.execute_batch`` in new code.

        Returns scores in request order; raises ``ValueError`` on the
        first structured error (e.g. ids outside the checkpoint
        vocabulary), mirroring the pre-facade behavior.
        """
        from .protocol import ScoreQuery, is_error
        if not requests:
            return np.array([])
        # Preserve the pre-facade contract: every id is validated (and
        # the first bad one raised) before any scoring work happens —
        # a permanently-bad request in a re-queued flush batch must not
        # make every retry score-and-discard its valid siblings.
        for request in requests:
            self._validate_ids(request.question_id, request.concept_ids,
                               request.student_id)
        replies = self.service.execute_batch(
            [ScoreQuery(r.student_id, r.question_id, r.concept_ids,
                        model=self.name) for r in requests])
        scores = np.empty(len(replies), dtype=np.float64)
        for index, reply in enumerate(replies):
            if is_error(reply):
                raise ValueError(reply.message)
            scores[index] = reply.score
        return scores

    # invariant: holds-lock
    def _assemble_rows(self, rows: Sequence[_ContextRow],
                       local_entries: Optional[Dict[int, object]] = None,
                       built_out: Optional[Dict[int, object]] = None
                       ) -> Tuple[MultiTargetContext, np.ndarray]:
        """One shared scoring context over heterogeneous rows (lock held).

        The scheduler's core: score probes, what-if replays (edited
        detached histories), and explain targets all become rows of a
        single :class:`MultiTargetContext`.  With stream caching enabled
        the forward half comes from the per-student caches — every
        missing row (cold students, edited histories, off-anchor explain
        targets) is warm-built in **one** stacked
        :func:`~repro.serve.forward_cache.build_stream_caches` pass —
        and only per-target backward streams remain; with caching
        disabled the rows are assembled as a raw batch and the context
        encodes the (up to three) base forward streams itself.  Either
        way a mixed flush issues one shared forward-stream batch.

        ``local_entries`` maps row index -> a caller-owned
        :class:`~repro.serve.forward_cache.StudentStreamCache` already
        covering that row's ``[start, history.length)`` slice — the
        recourse search passes clone-extended per-world entries here so
        a generation of hypothetical timelines costs zero forward
        passes.  ``built_out`` (when given) is filled with row index ->
        the entry that served the row, letting the caller keep
        warm-built timelines for the next generation.  Both are cache-
        path refinements; the raw path ignores them (worlds are
        re-encoded, still as one shared batch).

        Returns the context plus per-row target columns.  The assembled
        arrays are copies, so the backward passes run outside the lock.
        """
        if self.stream_caches.enabled:
            return self._assemble_rows_cached(rows, local_entries,
                                              built_out)
        return self._assemble_rows_raw(rows)

    # invariant: holds-lock
    def _assemble_rows_cached(self, rows: Sequence[_ContextRow],
                              local_entries: Optional[Dict[int, object]]
                              = None,
                              built_out: Optional[Dict[int, object]] = None
                              ) -> Tuple[MultiTargetContext, np.ndarray]:
        store = self.stream_caches
        # Windowed serving: each row's context is the anchored suffix of
        # its history; the cached entry (if any) must sit at the same
        # anchor — a stale anchor means the window slid since the entry
        # was built, so it is rebuilt from the current window slice.
        lengths = [row.history.length - row.start for row in rows]

        entries = {}
        missing = {}
        slot_of: List[object] = []
        for index, (row, length) in enumerate(zip(rows, lengths)):
            if length == 0:
                slot_of.append(None)
                continue
            if local_entries is not None and index in local_entries:
                # Caller-owned pre-built entry (a clone-extended recourse
                # world): private to this row, never touches the store.
                slot = ("local", index)
                slot_of.append(slot)
                entries[slot] = local_entries[index]
                continue
            # Rows with the same cache slot and anchor share one entry;
            # detached rows (edited histories) are always private.
            slot = ((row.cache_key, row.start)
                    if row.cache_key is not None else ("row", index))
            slot_of.append(slot)
            if slot in entries or slot in missing:
                continue
            # Only the canonical serving anchor may touch the store: an
            # explain row whose target-relative anchor trails the
            # serving anchor must neither evict nor overwrite the entry
            # the score path keeps extending.
            canonical = (row.cache_key is not None and row.start
                         == self._window_start(row.history.length))
            entry = store.get(row.cache_key) \
                if row.cache_key is not None else None
            if entry is not None and (entry.anchor != row.start
                                      or entry.length != length):
                if canonical:
                    store.discard(row.cache_key)
                entry = None
            if entry is None:
                missing[slot] = (row.history.suffix(row.start) if row.start
                                 else row.history, row.start,
                                 row.cache_key if canonical else None)
            else:
                entries[slot] = entry
        if missing:
            built = build_stream_caches(
                self.model, [suffix for suffix, _, _ in missing.values()])
            for (slot, (_, start, cache_key)), entry in zip(missing.items(),
                                                            built):
                entry.anchor = start
                # Keep a batch-local reference: the store may evict the
                # entry immediately under a tiny byte budget, but this
                # request still needs it.
                entries[slot] = entry
                if cache_key is not None:
                    store.put(cache_key, entry)
        if built_out is not None:
            for index, slot in enumerate(slot_of):
                if slot is not None:
                    built_out[index] = entries[slot]

        count = len(rows)
        width = max(length + (1 if row.probe is not None else 0)
                    for row, length in zip(rows, lengths))
        dim = self.model.config.dim
        responses = np.zeros((count, width), dtype=np.int64)
        mask = np.zeros((count, width), dtype=bool)
        question_vectors = np.zeros((count, width, dim))
        # Under "-mono" all base streams coincide (single cached row):
        # alias one padded array instead of filling three copies.
        base_names = (FORWARD_BASES if self.model.config.use_monotonicity
                      else FORWARD_BASES[:1])
        streams = {name: np.zeros((count, width, dim))
                   for name in base_names}
        for name in FORWARD_BASES[len(base_names):]:
            streams[name] = streams[FORWARD_BASES[0]]
        cols = np.empty(count, dtype=np.int64)
        embedder = self.model.generator.embedder
        for index, (row, length) in enumerate(zip(rows, lengths)):
            if row.probe is not None:
                mask[index, :length + 1] = True
                question_vectors[index, length] = question_vector_for(
                    embedder, row.probe[0], row.probe[1])
                cols[index] = length
            else:
                # Explain row: the last recorded response is the target.
                mask[index, :length] = True
                cols[index] = length - 1
            if length == 0:
                continue
            responses[index, :length] = \
                row.history.view()[1][row.start:]
            entry = entries[slot_of[index]]
            question_vectors[index, :length] = \
                entry.question_vectors[:length]
            for name in base_names:
                streams[name][index, :length] = entry.stream_for(name)[:length]

        # Questions/concepts are never read once the fused question
        # vectors are injected; placeholder arrays keep the Batch shape.
        base = Batch(
            questions=np.zeros((count, width), dtype=np.int64),
            responses=responses,
            concepts=np.full((count, width, 1), PAD_ID, dtype=np.int64),
            concept_counts=np.ones((count, width), dtype=np.int64),
            mask=mask,
        )
        context = MultiTargetContext(self.model, base,
                                     question_vectors=question_vectors,
                                     forward_streams=streams)
        return context, cols

    # invariant: holds-lock
    def _assemble_rows_raw(self, rows: Sequence[_ContextRow]
                           ) -> Tuple[MultiTargetContext, np.ndarray]:
        """Cache-disabled fallback: raw batch, context-encoded streams.

        The golden-reference mode the parity suite drives against the
        cached path — forward streams are computed by the context from
        the real question/concept ids, still as one shared batch (the
        padding itself is the store-independent
        :func:`repro.serve.history.assemble_padded`).
        """
        histories = [HistoryWindow(row.history, row.start) if row.start
                     else row.history for row in rows]
        base, cols = assemble_padded(histories,
                                     [row.probe for row in rows])
        context = MultiTargetContext(self.model, base)
        return context, cols

    def _score_context(self, context: MultiTargetContext,
                       row_indices: np.ndarray,
                       cols: np.ndarray) -> np.ndarray:
        """Run the per-request backward passes, column-banded and
        optionally threaded on the persistent pool (chunks are
        independent)."""
        rows = np.asarray(row_indices, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        scores = np.empty(len(cols), dtype=np.float64)

        def score_chunk(chunk: np.ndarray) -> None:
            scores[chunk] = context.scores_for(rows[chunk], cols[chunk])

        chunks = column_banded_chunks(cols, self.target_batch)
        self._obs_forward_calls.inc()
        self._obs_worker_tasks.inc(len(chunks))
        map_chunks(score_chunk, chunks, self.workers,
                   executor=self._executor)
        return scores

    def _score_rows(self, rows: Sequence[_ContextRow],
                    local_entries: Optional[Dict[int, object]] = None
                    ) -> Tuple[np.ndarray, Dict[int, object]]:
        """Score heterogeneous rows as **one** shared batch.

        The building block of the recourse search and the monotonicity
        report: assemble under the engine lock (one warm-build pass for
        whatever ``local_entries`` does not already cover), score every
        row's backward pass outside it.  Returns the per-row scores plus
        the row index -> stream-cache entry map of the batch (empty with
        caching disabled, where worlds are raw re-encodes instead).
        """
        built: Dict[int, object] = {}
        with no_grad():
            with self._lock:
                context, cols = self._assemble_rows(
                    rows, local_entries=local_entries, built_out=built)
            scores = self._score_context(context, np.arange(len(rows)),
                                         cols)
        return scores, built

    @_deprecated_shim("Service.execute(ScoreQuery(...))")
    def score(self, student_id, question_id: int,
              concept_ids: Sequence[int]) -> float:
        """Synchronous single score (still served by the batched path).

        Returns P(correct) in (0, 1) for ``student_id`` answering
        ``question_id`` next; raises ``ValueError`` on out-of-vocabulary
        ids.  Unknown students score from an empty context (0.5).
        """
        return float(self.score_batch(
            [ScoreRequest(student_id, question_id, tuple(concept_ids))])[0])

    # ------------------------------------------------------------------
    # Interpretation endpoints
    # ------------------------------------------------------------------
    @_deprecated_shim("Service.execute(ExplainQuery(...))")
    def influences(self, student_id):
        """Response influences of the student's history on their latest
        response (the engine-side view of the paper's Fig. 3 readout).

        Deprecation shim over the facade: executes a typed
        :class:`~repro.serve.protocol.ExplainQuery` and returns the
        reply's full :class:`~repro.core.influence.InfluenceComputation`
        (new code should use ``engine.service.execute`` and consume the
        typed, wire-safe :class:`~repro.serve.protocol.ExplainReply`).
        With a serving window the influences cover the windowed context
        only — positions the window slid past no longer contribute, which
        mirrors exactly what a windowed :meth:`score` conditions on.

        Raises ``ValueError`` when fewer than two responses are recorded.
        """
        from .protocol import ExplainQuery, is_error
        reply = self.service.execute(ExplainQuery(student_id,
                                                  model=self.name))
        if is_error(reply):
            raise ValueError(reply.message)
        return reply.computation

    @_deprecated_shim("Service.execute(RecommendQuery(...))")
    def recommend(self, student_id, candidates: Sequence[ScoreRequest],
                  top_k: int = 5, target_success: float = 0.6,
                  value_weight: float = 1.0, horizon: int = 4):
        """Batched next-question recommendation.

        Deprecation shim over the facade: candidates become a typed
        :class:`~repro.serve.protocol.RecommendQuery` and the reply's
        items convert back to :class:`~repro.interpret.recommendation
        .QuestionRecommendation` objects, best first (at most
        ``top_k``).  Raises ``ValueError`` on invalid candidate ids or
        an empty history.
        """
        from repro.interpret.recommendation import QuestionRecommendation
        from .protocol import CandidateQuestion, RecommendQuery, is_error
        if not candidates:
            return []
        reply = self.service.execute(RecommendQuery(
            student_id,
            tuple(CandidateQuestion(c.question_id, tuple(c.concept_ids))
                  for c in candidates),
            top_k=top_k, target_success=target_success,
            value_weight=value_weight, horizon=horizon, model=self.name))
        if is_error(reply):
            raise ValueError(reply.message)
        return [QuestionRecommendation(
            question_id=item.question_id, concept_ids=item.concept_ids,
            success_probability=item.success_probability,
            value=item.value, score=item.score) for item in reply.items]

    def _snapshot_window(self, history) -> Tuple[np.ndarray, ...]:
        """Copied arrays of the student's anchored window (lock held).

        The recommendation scheduler scores assumed-answer worlds
        *after* the engine lock is released; the copies pin the exact
        context the coalesced success-probability probes were admitted
        against, so a concurrent ``record`` can never tear a
        recommendation across two history states.
        """
        start = self._window_start(history.length)
        return tuple(a[start:].copy() for a in history.view())

    def _recommend_values(self, snapshot: Tuple[np.ndarray, ...],
                          candidates, horizon: int) -> np.ndarray:
        """Counterfactual question values for candidates (Sec. V-C).

        The value half of the recommendation workload: for each
        candidate and each assumed answer (correct/incorrect), re-ask
        the ``horizon`` most recent questions of the snapshotted window
        and measure how far the two assumed worlds pull those re-asked
        scores apart.  All worlds share one stacked pass.  The success
        probabilities are *not* computed here — the facade folds those
        probes into its shared mixed-type read batch — so this builds
        ``2 * horizon`` rows per candidate instead of the legacy
        ``1 + 2 * horizon``.

        Row layout and collation width match the legacy stacked path
        exactly (per-row scores are independent of batch composition),
        so the values are bit-identical to the pre-coalescing ones.
        """
        with self._lock:
            # Pin the model once: a concurrent reload must not mix two
            # weight sets across this method's stacked pass.
            model = self.model
        q_hist, r_hist, c_hist, k_hist = snapshot
        n = len(q_hist)
        history_width = c_hist.shape[1] if n else 1
        recent = list(range(max(0, n - horizon), n))
        num_candidates = len(candidates)
        probes_per_candidate = 2 * len(recent)
        rows = num_candidates * probes_per_candidate
        if rows == 0:
            return np.zeros(num_candidates)
        length = n + 2
        width = max(history_width,
                    max(len(c.concept_ids) for c in candidates))

        questions = np.full((rows, length), PAD_ID, dtype=np.int64)
        responses = np.zeros((rows, length), dtype=np.int64)
        concepts = np.full((rows, length, width), PAD_ID, dtype=np.int64)
        counts = np.ones((rows, length), dtype=np.int64)
        mask = np.zeros((rows, length), dtype=bool)
        cols = np.empty(rows, dtype=np.int64)

        questions[:, :n] = q_hist
        responses[:, :n] = r_hist
        concepts[:, :n, :history_width] = c_hist
        counts[:, :n] = k_hist

        row = 0
        for candidate in candidates:
            ids = candidate.concept_ids
            # Candidate answered correct/incorrect at column n, then
            # each recent question re-asked at column n + 1.
            for assumed in (1, 0):
                for past in recent:
                    questions[row, n] = candidate.question_id
                    responses[row, n] = assumed
                    concepts[row, n, :len(ids)] = ids
                    counts[row, n] = len(ids)
                    questions[row, n + 1] = q_hist[past]
                    past_width = k_hist[past]
                    concepts[row, n + 1, :past_width] = \
                        c_hist[past, :past_width]
                    counts[row, n + 1] = past_width
                    mask[row, :n + 2] = True
                    cols[row] = n + 1
                    row += 1

        batch = Batch(questions, responses, concepts, counts, mask)
        with no_grad():
            scores = score_batch_targets(model, batch, cols,
                                         target_batch=self.target_batch,
                                         workers=self.workers,
                                         executor=self._executor)

        values = np.empty(num_candidates)
        for index in range(num_candidates):
            worlds = scores[index * probes_per_candidate:
                            (index + 1) * probes_per_candidate]
            correct_world = worlds[:len(recent)]
            incorrect_world = worlds[len(recent):]
            values[index] = np.abs(correct_world - incorrect_world).mean()
        return values
