"""The serving engine: checkpointed model + request micro-batching.

Request lifecycle
-----------------
1. ``record(student, question, correct, concepts)`` appends one response
   to the student's cached arrays (O(1) amortized — see
   :mod:`repro.serve.history`).
2. ``submit(ScoreRequest(...))`` enqueues a "how would this student do on
   question q next?" probe and returns a :class:`PendingScore` handle.
3. When ``max_batch`` requests are pending — or on an explicit
   ``flush()`` — the engine assembles **one** padded batch across all
   waiting students (histories of arbitrary, ragged lengths share the
   batch thanks to the truncated-mask fast path) and resolves every
   handle from a single stacked counterfactual pass.
4. ``score(...)`` / ``score_batch(...)`` are the synchronous conveniences
   built on the same path.

This replaces the seed's serving idiom (one collated single-row
``predict_scores`` call per probe, as in
:func:`repro.interpret.recommendation.question_value`) with
column-chunked stacked passes: identical scores, several times the
throughput — ``benchmarks/bench_inference.py`` tracks the exact factor.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core import RCKT, RCKTConfig
from repro.core.masking import check_window, window_start
from repro.core.multi_target import (FORWARD_BASES, MultiTargetContext,
                                     column_banded_chunks, map_chunks,
                                     score_batch_targets)
from repro.data import PAD_ID, Batch, KTDataset
from repro.tensor import enable_grad, no_grad
from repro.utils import load_checkpoint, save_checkpoint

from .forward_cache import (DEFAULT_STREAM_CACHE_BYTES, StreamCacheStore,
                            base_contents, build_stream_caches,
                            question_vector_for)
from .history import HistoryStore


@dataclass(frozen=True)
class ScoreRequest:
    """Score P(correct) for ``student_id`` answering ``question_id`` next."""

    student_id: object
    question_id: int
    concept_ids: Tuple[int, ...]

    def __post_init__(self):
        object.__setattr__(self, "concept_ids", tuple(self.concept_ids))


@dataclass
class PendingScore:
    """Handle returned by ``submit``; resolved on the next flush."""

    request: ScoreRequest
    _value: Optional[float] = field(default=None, repr=False)

    @property
    def done(self) -> bool:
        return self._value is not None

    @property
    def value(self) -> float:
        if self._value is None:
            raise RuntimeError("request not flushed yet — call "
                               "InferenceEngine.flush()")
        return self._value


class InferenceEngine:
    """Multi-student counterfactual scoring around one loaded RCKT model.

    Parameters
    ----------
    model:
        A (typically trained) :class:`repro.core.RCKT`.
    max_batch:
        Pending-request count that triggers an automatic flush.
    target_batch:
        Chunk size of the underlying stacked passes (see
        :func:`repro.core.multi_target.score_batch_targets`).
    workers:
        Thread count for the independent column-banded score chunks
        (NumPy's kernels release the GIL; 1 disables pooling).
    stream_cache_bytes:
        LRU byte budget for the per-student incremental forward-stream
        caches (:mod:`repro.serve.forward_cache`).  With a warm cache,
        ``record`` extends the cached encoder state by one step and
        ``score`` skips the forward half of the encoder entirely; 0 or
        ``None`` disables caching and serves every request through the
        batch re-encoding path (the golden reference the parity suite
        compares against).
    window:
        Sliding-window context size: every score uses at most the
        student's last ``window`` recorded responses as history (the
        probe rides on top), so per-request compute and per-student
        cache memory stay bounded no matter how long a history grows.
        ``None`` (default) serves full histories — still unbounded in
        length (positional tables grow on demand) but with compute that
        scales with history length.  Windowed scores are exactly the
        scores a full recompute on the truncated window produces.
    window_hop:
        Re-anchoring stride of the window (default ``max(1,
        window // 8)``): the window start only advances in multiples of
        ``hop``, so the cached encoder state is rebuilt once per ``hop``
        records instead of on every append, at the cost of the context
        length breathing in ``(window - hop, window]``.  See
        :func:`repro.core.masking.window_start` — the anchored start is
        a pure function of the history length, so cached, uncached, and
        offline recompute paths all agree on the same window.

    Raises
    ------
    ValueError
        On non-positive ``max_batch``/``workers`` or an invalid
        ``(window, window_hop)`` pair.
    """

    def __init__(self, model: RCKT, max_batch: int = 64,
                 target_batch: int = 64, workers: int = 1,
                 stream_cache_bytes: Optional[int]
                 = DEFAULT_STREAM_CACHE_BYTES,
                 window: Optional[int] = None,
                 window_hop: Optional[int] = None):
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if workers <= 0:
            raise ValueError("workers must be positive")
        if window is None:
            if window_hop is not None:
                raise ValueError("window_hop requires a window")
            window_hop = 1
        else:
            if window_hop is None:
                window_hop = max(1, window // 8)
            check_window(window, window_hop)
        self.window = window
        self.window_hop = window_hop
        self.model = model
        self.max_batch = max_batch
        self.target_batch = target_batch
        self.workers = workers
        self.students = HistoryStore()
        self.stream_caches = StreamCacheStore(stream_cache_bytes)
        self._pending: List[PendingScore] = []
        self._lock = threading.Lock()
        embedder = model.generator.embedder
        self.num_questions = embedder.question_embedding.num_embeddings - 1
        self.num_concepts = embedder.concept_embedding.num_embeddings - 1
        model.eval()

    def _window_start(self, history_length: int) -> int:
        """Anchored window start for a history of ``history_length`` steps."""
        return window_start(history_length, self.window, self.window_hop)

    def _validate_ids(self, question_id: int,
                      concept_ids: Sequence[int]) -> None:
        if not 1 <= question_id <= self.num_questions:
            raise ValueError(f"question_id {question_id} outside the "
                             f"model's vocabulary [1, {self.num_questions}]")
        if not concept_ids:
            # Empty concept sets would divide by a zero concept count
            # deep inside the embedder (Eq. 23 averages over concepts).
            raise ValueError("concept_ids must be non-empty")
        for concept in concept_ids:
            if not 1 <= concept <= self.num_concepts:
                raise ValueError(f"concept id {concept} outside the "
                                 f"model's vocabulary "
                                 f"[1, {self.num_concepts}]")

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist model weights plus the config/id-space metadata needed
        to rebuild the engine without the original constructor call."""
        embedder = self.model.generator.embedder
        metadata = {
            "config": self.model.config.__dict__,
            # Embedding tables carry a +1 row for the padding id.
            "num_questions": embedder.question_embedding.weight.shape[0] - 1,
            "num_concepts": embedder.concept_embedding.weight.shape[0] - 1,
        }
        save_checkpoint(path, self.model.state_dict(), metadata)

    @classmethod
    def from_checkpoint(cls, path, max_batch: int = 64,
                        target_batch: int = 64, workers: int = 1,
                        stream_cache_bytes: Optional[int]
                        = DEFAULT_STREAM_CACHE_BYTES,
                        window: Optional[int] = None,
                        window_hop: Optional[int] = None
                        ) -> "InferenceEngine":
        """Rebuild an engine from :meth:`save` output.

        Raises ``ValueError`` when the checkpoint lacks the engine
        metadata (config and id-space sizes) that :meth:`save` embeds.
        """
        state, metadata = load_checkpoint(path)
        try:
            config = RCKTConfig(**metadata["config"])
            num_questions = int(metadata["num_questions"])
            num_concepts = int(metadata["num_concepts"])
        except KeyError as missing:
            raise ValueError(f"checkpoint at {path} lacks engine metadata "
                             f"({missing})") from None
        model = RCKT(num_questions, num_concepts, config)
        model.load_state_dict(state)
        return cls(model, max_batch=max_batch, target_batch=target_batch,
                   workers=workers, stream_cache_bytes=stream_cache_bytes,
                   window=window, window_hop=window_hop)

    def reload_checkpoint(self, path) -> None:
        """Swap in refreshed weights (e.g. a periodic retrain).

        Histories survive — they are ground-truth observations — but
        every cached forward-stream state is invalidated: those arrays
        are functions of the old weights, and serving them against the
        new ones would silently mix models.  The next score per student
        rebuilds the cache through the vectorized warm-up path.

        The swap is atomic: weights load into a *fresh* model object
        which replaces ``self.model`` under the lock, so a concurrent
        score that already captured the old model finishes consistently
        on the old weights instead of reading a half-updated (or mixed
        old/new) parameter set.
        """
        state, metadata = load_checkpoint(path)
        config = metadata.get("config")
        if config is not None:
            # The init seed is not architecture: a retrained checkpoint
            # may legitimately carry a different one.
            theirs = {k: v for k, v in
                      RCKTConfig(**config).__dict__.items() if k != "seed"}
            ours = {k: v for k, v in self.model.config.__dict__.items()
                    if k != "seed"}
            if theirs != ours:
                raise ValueError(f"checkpoint at {path} was trained with a "
                                 f"different model config; build a fresh "
                                 f"engine via from_checkpoint instead")
        for key in ("num_questions", "num_concepts"):
            if key in metadata and int(metadata[key]) != getattr(self, key):
                raise ValueError(f"checkpoint at {path} has a different "
                                 f"{key} ({metadata[key]} vs "
                                 f"{getattr(self, key)})")
        with enable_grad():
            # Parameter registration must see gradients enabled even if
            # a scoring thread's no_grad scope is ambient here.
            model = RCKT(self.num_questions, self.num_concepts,
                         self.model.config)
        model.load_state_dict(state)
        model.eval()
        with self._lock:
            self.model = model
            self.stream_caches.invalidate()

    # ------------------------------------------------------------------
    # History management
    # ------------------------------------------------------------------
    def record(self, student_id, question_id: int, correct: int,
               concept_ids: Sequence[int]) -> None:
        """Append one observed response to a student's cached history.

        Rejects ids outside the checkpoint vocabulary (and non-binary
        ``correct``) *before* touching any state — a bad event must
        never poison the cached history or the stream cache.  With a
        warm forward-stream cache, the append also advances the cached
        encoder state by exactly one step (the incremental fast path);
        histories are never length-bounded — beyond the serving window
        (or the initial positional-table size without one) the append
        stays O(1) and scoring windows or grows transparently.

        Raises
        ------
        ValueError
            If ``question_id``/``concept_ids`` fall outside the model's
            vocabulary or ``correct`` is not 0/1.
        """
        self._validate_ids(question_id, concept_ids)
        if correct not in (0, 1):
            raise ValueError(f"correct must be 0 or 1, got {correct}")
        with self._lock:
            history = self.students.record(student_id, question_id, correct,
                                           concept_ids)
            self._extend_stream_cache(student_id, history, question_id,
                                      correct, concept_ids)

    def _extend_stream_cache(self, student_id, history, question_id: int,
                             correct: int, concept_ids) -> None:
        """Advance a warm cache by the step just recorded (lock held)."""
        if not self.stream_caches.enabled:
            return
        entry = self.stream_caches.peek(student_id)
        if entry is None:
            return  # cold/evicted: next score warm-builds in one pass
        if self._window_start(history.length) != entry.anchor:
            # The serving window slid past the cached anchor: cached
            # states are functions of their window-relative positions,
            # so the entry cannot be extended — the next score rebuilds
            # it from the new window slice in one vectorized pass.
            self.stream_caches.discard(student_id)
            return
        if entry.length != history.length - 1 - entry.anchor:
            # Out of sync (e.g. a bulk load since the last score):
            # stale states must not be extended.
            self.stream_caches.discard(student_id)
            return
        generator = self.model.generator
        question_vector = question_vector_for(generator.embedder,
                                              question_id, concept_ids)
        categories = base_contents(np.asarray(correct),
                                   self.model.config.use_monotonicity)
        try:
            entry.extend(generator.encoder, question_vector, categories,
                         generator.embedder.response_embedding.weight.data)
        except ValueError:
            # Defensive: the cache must never make record() fail where
            # the uncached engine would have accepted the event.
            self.stream_caches.discard(student_id)
            return
        self.stream_caches.note_growth(student_id)

    def load_dataset(self, dataset: KTDataset) -> None:
        """Warm the history store with an offline log.

        Every interaction is validated against the checkpoint vocabulary
        up front (same errors as :meth:`score`) so a corrupt log cannot
        half-load.  Stream caches of touched students are invalidated:
        bulk history changes are cheaper to re-encode once at the next
        score than to replay step-by-step.
        """
        for sequence in dataset:
            for interaction in sequence:
                self._validate_ids(interaction.question_id,
                                   interaction.concept_ids)
        with self._lock:
            for sequence in dataset:
                self.students.load_sequence(sequence)
                self.stream_caches.discard(sequence.student_id)

    def history_length(self, student_id) -> int:
        """Number of responses recorded for ``student_id`` (0 if unknown).

        Always the *full* history: the serving window bounds what a
        score conditions on, never what is stored.
        """
        with self._lock:
            history = self.students.peek(student_id)
            return history.length if history is not None else 0

    def stream_cache_stats(self) -> dict:
        """Occupancy/hit/eviction counters of the forward-stream cache."""
        with self._lock:
            return self.stream_caches.stats()

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def submit(self, request: ScoreRequest) -> PendingScore:
        """Enqueue a request; auto-flushes when ``max_batch`` are waiting.

        Invalid requests are rejected here, synchronously — a bad id must
        never poison a batch other callers are waiting on.
        """
        self._validate_ids(request.question_id, request.concept_ids)
        pending = PendingScore(request)
        with self._lock:
            self._pending.append(pending)
            ready = len(self._pending) >= self.max_batch
        if ready:
            self.flush()
        return pending

    def flush(self) -> List[PendingScore]:
        """Resolve all pending requests in one micro-batched pass."""
        with self._lock:
            batch, self._pending = self._pending, []
        if not batch:
            return []
        try:
            scores = self.score_batch([p.request for p in batch])
        except Exception:
            # Don't strand the other callers' handles: put the batch
            # back so a later flush can retry it.
            with self._lock:
                self._pending = batch + self._pending
            raise
        for pending, score in zip(batch, scores):
            pending._value = float(score)
        return batch

    def score_batch(self, requests: Sequence[ScoreRequest]) -> np.ndarray:
        """Scores for many (student, next-question) probes at once.

        With stream caching enabled (the default) the forward half of
        the encoder work comes from the per-student caches — built in
        one vectorized pass for any cold students in the batch — and
        only the per-request backward streams run; otherwise the batch
        re-encoding path serves the request.  Under a serving ``window``
        each probe conditions on its student's anchored window slice;
        both paths use the same anchoring, so their scores agree to
        roundoff.

        Returns scores in request order; raises ``ValueError`` on ids
        outside the checkpoint vocabulary (before any work is done).
        """
        if not requests:
            return np.array([])
        for request in requests:
            self._validate_ids(request.question_id, request.concept_ids)
        if self.stream_caches.enabled:
            with no_grad():
                with self._lock:
                    context, cols = self._assemble_cached(requests)
                return self._score_context(context, cols)
        with self._lock:
            ids = [r.student_id for r in requests]
            starts = None
            if self.window is not None:
                histories = [self.students.peek(student) for student in ids]
                starts = [self._window_start(h.length if h else 0)
                          for h in histories]
            base, cols = self.students.assemble(
                ids,
                probes=[(r.question_id, r.concept_ids) for r in requests],
                starts=starts)
        with no_grad():
            return score_batch_targets(self.model, base, cols,
                                       target_batch=self.target_batch,
                                       workers=self.workers)

    def _assemble_cached(self, requests: Sequence[ScoreRequest]
                         ) -> Tuple[MultiTargetContext, np.ndarray]:
        """Build a scoring context from the stream caches (lock held).

        Cold students (never scored, LRU-evicted, or bulk-reloaded) are
        warm-built first in one stacked pass; the assembled arrays are
        copies, so the heavy backward passes in :meth:`_score_context`
        run outside the lock.
        """
        store = self.stream_caches
        histories = [self.students.peek(r.student_id) for r in requests]
        full_lengths = [h.length if h is not None else 0 for h in histories]
        # Windowed serving: each row's context is the anchored suffix of
        # its history; the cached entry (if any) must sit at the same
        # anchor — a stale anchor means the window slid since the entry
        # was built, so it is rebuilt from the current window slice.
        starts = [self._window_start(length) for length in full_lengths]
        lengths = [length - start
                   for length, start in zip(full_lengths, starts)]

        entries = {}
        missing = {}
        for request, history, length, start in zip(requests, histories,
                                                   lengths, starts):
            student_id = request.student_id
            if length == 0 or student_id in entries or student_id in missing:
                continue
            entry = store.get(student_id)
            if entry is not None and (entry.anchor != start
                                      or entry.length != length):
                store.discard(student_id)
                entry = None
            if entry is None:
                missing[student_id] = (history.suffix(start) if start
                                       else history, start)
            else:
                entries[student_id] = entry
        if missing:
            built = build_stream_caches(
                self.model, [suffix for suffix, _ in missing.values()])
            for (student_id, (_, start)), entry in zip(missing.items(),
                                                       built):
                entry.anchor = start
                # Keep a batch-local reference: the store may evict the
                # entry immediately under a tiny byte budget, but this
                # request still needs it.
                entries[student_id] = entry
                store.put(student_id, entry)

        rows = len(requests)
        width = max(lengths) + 1
        dim = self.model.config.dim
        responses = np.zeros((rows, width), dtype=np.int64)
        mask = np.zeros((rows, width), dtype=bool)
        question_vectors = np.zeros((rows, width, dim))
        # Under "-mono" all base streams coincide (single cached row):
        # alias one padded array instead of filling three copies.
        base_names = (FORWARD_BASES if self.model.config.use_monotonicity
                      else FORWARD_BASES[:1])
        streams = {name: np.zeros((rows, width, dim))
                   for name in base_names}
        for name in FORWARD_BASES[len(base_names):]:
            streams[name] = streams[FORWARD_BASES[0]]
        cols = np.asarray(lengths, dtype=np.int64)
        embedder = self.model.generator.embedder
        for row, (request, history, length, start) in enumerate(
                zip(requests, histories, lengths, starts)):
            mask[row, :length + 1] = True
            question_vectors[row, length] = question_vector_for(
                embedder, request.question_id, request.concept_ids)
            if length == 0:
                continue
            responses[row, :length] = history.view()[1][start:]
            entry = entries[request.student_id]
            question_vectors[row, :length] = \
                entry.question_vectors[:length]
            for name in base_names:
                streams[name][row, :length] = entry.stream_for(name)

        # Questions/concepts are never read once the fused question
        # vectors are injected; placeholder arrays keep the Batch shape.
        base = Batch(
            questions=np.zeros((rows, width), dtype=np.int64),
            responses=responses,
            concepts=np.full((rows, width, 1), PAD_ID, dtype=np.int64),
            concept_counts=np.ones((rows, width), dtype=np.int64),
            mask=mask,
        )
        context = MultiTargetContext(self.model, base,
                                     question_vectors=question_vectors,
                                     forward_streams=streams)
        return context, cols

    def _score_context(self, context: MultiTargetContext,
                       cols: np.ndarray) -> np.ndarray:
        """Run the per-request backward passes, column-banded and
        optionally threaded (chunks are independent)."""
        scores = np.empty(len(cols), dtype=np.float64)

        def score_chunk(chunk: np.ndarray) -> None:
            scores[chunk] = context.scores_for(chunk, cols[chunk])

        map_chunks(score_chunk,
                    column_banded_chunks(cols, self.target_batch),
                    self.workers)
        return scores

    def score(self, student_id, question_id: int,
              concept_ids: Sequence[int]) -> float:
        """Synchronous single score (still served by the batched path).

        Returns P(correct) in (0, 1) for ``student_id`` answering
        ``question_id`` next; raises ``ValueError`` on out-of-vocabulary
        ids.  Unknown students score from an empty context (0.5).
        """
        return float(self.score_batch(
            [ScoreRequest(student_id, question_id, tuple(concept_ids))])[0])

    # ------------------------------------------------------------------
    # Interpretation endpoints
    # ------------------------------------------------------------------
    def influences(self, student_id):
        """Response influences of the student's history on their latest
        response (the engine-side view of the paper's Fig. 3 readout).

        With a serving window the influences cover the windowed context
        only — positions the window slid past no longer contribute, which
        mirrors exactly what a windowed :meth:`score` conditions on.

        Raises ``ValueError`` when fewer than two responses are recorded.
        """
        with self._lock:
            history = self.students.peek(student_id)
            if history is None or history.length < 2:
                raise ValueError("influences need at least two recorded "
                                 "responses")
            # The target is the last response; the window bounds the
            # history *before* it.
            start = self._window_start(history.length - 1)
            base, cols = self.students.assemble(
                [student_id], starts=[start] if start else None)
        with no_grad():
            return self.model.influences(base, cols)

    def recommend(self, student_id, candidates: Sequence[ScoreRequest],
                  top_k: int = 5, target_success: float = 0.6,
                  value_weight: float = 1.0, horizon: int = 4):
        """Batched next-question recommendation.

        Reimplements :func:`repro.interpret.recommendation
        .recommend_questions` semantics — success probability blended
        with the counterfactual question value — but scores every
        candidate probe and every assumed-answer world in shared stacked
        passes instead of one collated call per probe (the seed idiom
        runs ``1 + 2 * horizon`` single-row passes per candidate).
        Candidates are probed against the student's windowed context
        when a serving window is set.

        Returns at most ``top_k`` :class:`~repro.interpret
        .recommendation.QuestionRecommendation` objects, best first;
        raises ``ValueError`` on invalid candidate ids or an empty
        history.
        """
        from repro.interpret.recommendation import QuestionRecommendation
        if not candidates:
            return []
        for candidate in candidates:
            self._validate_ids(candidate.question_id, candidate.concept_ids)
        with self._lock:
            # Snapshot under the lock: a concurrent record() may widen
            # the concept table mid-read otherwise.
            history = self.students.peek(student_id)
            if history is None or history.length == 0:
                raise ValueError("recommendation needs a non-empty history")
            # Candidates are probed against the same windowed context a
            # score() for this student would use.
            start = self._window_start(history.length)
            n = history.length - start
            q_hist, r_hist, c_hist, k_hist = [a[start:].copy()
                                              for a in history.view()]
            history_width = history.concept_width
        recent = list(range(max(0, n - horizon), n))
        num_candidates = len(candidates)
        probes_per_candidate = 2 * len(recent)
        rows = num_candidates * (1 + probes_per_candidate)
        length = n + 2
        width = max(history_width,
                    max(len(c.concept_ids) for c in candidates))

        questions = np.full((rows, length), PAD_ID, dtype=np.int64)
        responses = np.zeros((rows, length), dtype=np.int64)
        concepts = np.full((rows, length, width), PAD_ID, dtype=np.int64)
        counts = np.ones((rows, length), dtype=np.int64)
        mask = np.zeros((rows, length), dtype=bool)
        cols = np.empty(rows, dtype=np.int64)

        questions[:, :n] = q_hist
        responses[:, :n] = r_hist
        concepts[:, :n, :history_width] = c_hist
        counts[:, :n] = k_hist

        row = 0
        for candidate in candidates:
            ids = candidate.concept_ids
            # Success-probability probe: history + candidate at column n.
            questions[row, n] = candidate.question_id
            concepts[row, n, :len(ids)] = ids
            counts[row, n] = len(ids)
            mask[row, :n + 1] = True
            cols[row] = n
            row += 1
            # Question-value probes: candidate answered correct/incorrect,
            # then each recent question re-asked at column n + 1.
            for assumed in (1, 0):
                for past in recent:
                    questions[row, n] = candidate.question_id
                    responses[row, n] = assumed
                    concepts[row, n, :len(ids)] = ids
                    counts[row, n] = len(ids)
                    questions[row, n + 1] = q_hist[past]
                    past_width = k_hist[past]
                    concepts[row, n + 1, :past_width] = \
                        c_hist[past, :past_width]
                    counts[row, n + 1] = past_width
                    mask[row, :n + 2] = True
                    cols[row] = n + 1
                    row += 1

        batch = Batch(questions, responses, concepts, counts, mask)
        with no_grad():
            scores = score_batch_targets(self.model, batch, cols,
                                         target_batch=self.target_batch)

        recommendations = []
        for index, candidate in enumerate(candidates):
            start = index * (1 + probes_per_candidate)
            probability = float(scores[start])
            worlds = scores[start + 1:start + 1 + probes_per_candidate]
            correct_world = worlds[:len(recent)]
            incorrect_world = worlds[len(recent):]
            value = float(np.abs(correct_world - incorrect_world).mean())
            difficulty_fit = 1.0 - abs(probability - target_success)
            recommendations.append(QuestionRecommendation(
                question_id=candidate.question_id,
                concept_ids=candidate.concept_ids,
                success_probability=probability,
                value=value,
                score=difficulty_fit + value_weight * value,
            ))
        recommendations.sort(key=lambda r: -r.score)
        return recommendations[:top_k]
