"""Per-student incremental forward-stream caches.

Eq. 25 splits the counterfactual scorer's encoder work into a *forward*
stream (strictly causal, target-independent) and a *backward* stream
(consumes the intervened target, necessarily per-request).  The forward
half is therefore a pure function of the student's history — it never
changes between requests except by appending one position per recorded
response.  This module caches exactly that half:

* :class:`StudentStreamCache` — one student's forward-stream outputs,
  fused question vectors, and the encoder's extensible carry state
  (LSTM ``(h, c)`` per layer, or attention key/value prefixes per
  layer), for each of the variant base streams the counterfactual
  scorer needs (factual / correct-masked / incorrect-masked under
  monotonicity; a single shared stream for the "-mono" ablation).
* :func:`build_stream_caches` — vectorized warm-up: one batched
  forward pass builds many cold students' caches at once (first score
  after a cold start or an LRU eviction).
* :class:`StreamCacheStore` — LRU keyed by student id under a byte
  budget, so millions of students cannot exhaust memory; evicted
  students silently fall back to the warm-up path on their next score.

With a warm cache, ``InferenceEngine.record`` advances the state by a
single encoder step and ``score`` runs only the per-request backward
streams — the steady-state serving cost drops by the forward half.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.encoders import ForwardStreamState
from repro.core.masking import MASKED
from repro.core.multi_target import FORWARD_BASES
from repro.data import PAD_ID, Batch
from repro.tensor import Tensor

from .. import obs
from ..obs import names as metric_names

# Default LRU budget: roughly 100k active students at dim=64, history 100.
DEFAULT_STREAM_CACHE_BYTES = 256 * 1024 * 1024


def base_contents(responses: np.ndarray, use_monotonicity: bool
                  ) -> np.ndarray:
    """Variant-base response categories for history positions.

    Returns ``(bases, ...)`` stacked over :data:`FORWARD_BASES` order
    (factual, correct-masked, incorrect-masked) — or a single factual
    row when monotonicity is off, since all three streams then coincide
    (mirrors :class:`repro.core.multi_target.MultiTargetContext`).
    """
    responses = np.asarray(responses)
    if not use_monotonicity:
        return responses[None]
    return np.stack([
        responses,
        np.where(responses == 1, MASKED, responses),
        np.where(responses == 0, MASKED, responses),
    ], axis=0)


class StudentStreamCache:
    """One student's extensible forward-stream state and outputs.

    ``streams`` rows follow :data:`FORWARD_BASES`; with one base row
    (monotonicity off) every base name maps to row 0.  Arrays grow
    geometrically like the raw history log, so a ``record`` append is
    O(1) amortized on top of the encoder step itself.

    ``anchor`` is the history position the cached window starts at
    (0 without windowing): the cache covers history positions
    ``[anchor, anchor + length)``, re-based so the window's first step
    encodes at position 0.  When the serving window slides past the
    anchor, the entry is *discarded* rather than trimmed — cached states
    are functions of their window-relative positions (positional
    encodings, LSTM carries), so the next score rebuilds from the new
    window slice in one vectorized pass.  This is how long students stay
    serveable under a bounded per-student memory footprint.
    """

    __slots__ = ("state", "streams", "question_vectors", "length", "anchor")

    INITIAL_CAPACITY = 8

    def __init__(self, state: ForwardStreamState, streams: np.ndarray,
                 question_vectors: np.ndarray, anchor: int = 0):
        bases, length, dim = streams.shape
        capacity = max(length, self.INITIAL_CAPACITY)
        self.state = state
        self.streams = np.empty((bases, capacity, dim))
        self.streams[:, :length] = streams
        self.question_vectors = np.empty((capacity, dim))
        self.question_vectors[:length] = question_vectors
        self.length = length
        self.anchor = anchor

    @property
    def bases(self) -> int:
        return self.streams.shape[0]

    @property
    def nbytes(self) -> int:
        return (self.streams.nbytes + self.question_vectors.nbytes
                + self.state.nbytes)

    def _grow(self) -> None:
        bases, capacity, dim = self.streams.shape
        if self.length < capacity:
            return
        streams = np.empty((bases, 2 * capacity, dim))
        streams[:, :capacity] = self.streams
        self.streams = streams
        vectors = np.empty((2 * capacity, dim))
        vectors[:capacity] = self.question_vectors
        self.question_vectors = vectors

    def extend(self, encoder, question_vector: np.ndarray,
               response_categories: np.ndarray,
               response_table: np.ndarray) -> None:
        """Append one recorded response.

        ``question_vector`` is the fused Eq. 23 vector of the new
        interaction, ``response_categories`` the ``(bases,)`` variant
        contents from :func:`base_contents`, and ``response_table`` the
        ``(3, dim)`` response embedding.  Advances the encoder state by
        one step per base row.
        """
        interactions = question_vector[None] + \
            response_table[response_categories]
        outputs = encoder.extend_forward_state(self.state, interactions)
        self._grow()
        self.streams[:, self.length] = outputs
        self.question_vectors[self.length] = question_vector
        self.length += 1

    def stream_for(self, name: str) -> np.ndarray:
        """``(length, dim)`` cached stream for a variant base name."""
        if self.bases == 1:
            return self.streams[0, :self.length]
        return self.streams[FORWARD_BASES.index(name), :self.length]

    def clone(self) -> "StudentStreamCache":
        """Independent deep copy of the filled prefix.

        ``extend`` mutates in place, so anything that forks a shared
        entry into a hypothetical timeline — the recourse search
        appending assumed-correct practice items — must clone first.
        The constructor copies the passed arrays into fresh capacity
        arrays; the state clones itself.
        """
        return StudentStreamCache(
            self.state.clone(),
            self.streams[:, :self.length],
            self.question_vectors[:self.length],
            anchor=self.anchor,
        )


def question_vector_for(embedder, question_id: int,
                        concept_ids: Sequence[int]) -> np.ndarray:
    """Fused Eq. 23 vector for one interaction, op-aligned with the
    batched :meth:`~repro.models.InteractionEmbedder.question_vectors`
    (same lookup + sum + reciprocal-scale order, no pad slots)."""
    table = embedder.concept_embedding.weight.data
    concept_sum = table[np.asarray(concept_ids, dtype=np.int64)].sum(axis=0)
    return (embedder.question_embedding.weight.data[question_id]
            + concept_sum * (1.0 / len(concept_ids)))


def build_stream_caches(model, histories) -> List[StudentStreamCache]:
    """Vectorized cold-start warm-up for many students at once.

    ``histories`` yields :class:`repro.serve.history.StudentHistory`
    objects — or :class:`~repro.serve.history.HistoryWindow` suffix
    views, which is how windowed serving warm-builds anchored caches —
    with at least one interaction each.  One stacked forward
    pass (students x variant bases) builds every cache, reusing the
    exact batch kernels the non-cached scorer runs — so a cache built
    here scores identically to the uncached path, and every later
    single-step extension tracks it to roundoff.

    Not thread-safe with respect to the *model*: the key/value capture
    briefly flips ``capture_kv`` on the model's attention layers, so no
    other thread may drive a forward pass through the same model while
    this runs (:class:`repro.serve.InferenceEngine` calls it under its
    lock; standalone callers must provide equivalent exclusion).
    """
    histories = list(histories)
    if not histories:
        return []
    obs.get_registry().counter(
        metric_names.STREAM_CACHE_REBUILDS_TOTAL).inc(len(histories))
    embedder = model.generator.embedder
    encoder = model.generator.encoder
    use_monotonicity = model.config.use_monotonicity
    bases = 3 if use_monotonicity else 1
    count = len(histories)
    lengths = [history.length for history in histories]
    width = max(lengths)
    concept_width = max(history.concept_width for history in histories)

    questions = np.full((count, width), PAD_ID, dtype=np.int64)
    responses = np.zeros((count, width), dtype=np.int64)
    concepts = np.full((count, width, concept_width), PAD_ID, dtype=np.int64)
    counts = np.ones((count, width), dtype=np.int64)
    mask = np.zeros((count, width), dtype=bool)
    for row, history in enumerate(histories):
        q, r, c, k = history.view()
        n = history.length
        questions[row, :n] = q
        responses[row, :n] = r
        concepts[row, :n, :history.concept_width] = c
        counts[row, :n] = k
        mask[row, :n] = True

    batch = Batch(questions, responses, concepts, counts, mask)
    question_vectors = embedder.question_vectors(batch).data
    contents = base_contents(responses, use_monotonicity)
    stacked_contents = contents.reshape(bases * count, width)
    interactions = Tensor(np.tile(question_vectors, (bases, 1, 1))) \
        + embedder.response_embedding(stacked_contents)
    stacked_mask = np.tile(mask, (bases, 1))
    outputs, capture = encoder.forward_stream_with_capture(
        interactions, mask=stacked_mask)

    caches = []
    for row, _history in enumerate(histories):
        n = lengths[row]
        rows_idx = [b * count + row for b in range(bases)]
        state = encoder.state_from_capture(capture, rows_idx, n)
        caches.append(StudentStreamCache(
            state,
            outputs[rows_idx, :n].copy(),
            question_vectors[row, :n].copy(),
        ))
    return caches


class StreamCacheStore:
    """LRU over :class:`StudentStreamCache` under a byte budget.

    Pure bookkeeping — no locking (the engine serializes access) and no
    model knowledge.  ``budget_bytes`` of 0/None disables storage
    entirely, which the engine uses as its "no cache" mode.
    """

    def __init__(self, budget_bytes: Optional[int]):
        self.budget_bytes = budget_bytes or 0
        self._entries: "OrderedDict[object, StudentStreamCache]" = \
            OrderedDict()
        self._sizes: Dict[object, int] = {}
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Obs mirrors of the plain-int stats above (the ints stay: they
        # are per-store, the obs series aggregate across stores in one
        # process).  Handles are captured at construction.
        registry = obs.get_registry()
        self._obs_hits = registry.counter(
            metric_names.STREAM_CACHE_HITS_TOTAL)
        self._obs_misses = registry.counter(
            metric_names.STREAM_CACHE_MISSES_TOTAL)
        self._obs_evictions = registry.counter(
            metric_names.STREAM_CACHE_EVICTIONS_TOTAL)
        self._obs_bytes = registry.gauge(
            metric_names.STREAM_CACHE_RESIDENT_BYTES)
        self._obs_entries = registry.gauge(
            metric_names.STREAM_CACHE_ENTRIES)

    @property
    def enabled(self) -> bool:
        return self.budget_bytes > 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, student_id) -> Optional[StudentStreamCache]:
        entry = self._entries.get(student_id)
        if entry is None:
            self.misses += 1
            self._obs_misses.inc()
            return None
        self._entries.move_to_end(student_id)
        self.hits += 1
        self._obs_hits.inc()
        return entry

    def peek(self, student_id) -> Optional[StudentStreamCache]:
        """LRU-touching lookup that stays out of the hit/miss stats
        (record-path accesses would otherwise drown the score-path
        signal the counters exist for)."""
        entry = self._entries.get(student_id)
        if entry is not None:
            self._entries.move_to_end(student_id)
        return entry

    def hot_keys(self, limit: Optional[int] = None) -> List[object]:
        """Cached student ids, most recently used first.

        The LRU order *is* the serving working set: these are exactly
        the students whose next request would hit a warm cache.  The
        blue/green rollout pre-builds the standby engine's caches for
        this set so the swap does not cold-start the hot traffic.
        """
        keys = list(reversed(self._entries))
        return keys if limit is None else keys[:limit]

    def put(self, student_id, entry: StudentStreamCache) -> None:
        if not self.enabled:
            return
        self.discard(student_id)
        self._entries[student_id] = entry
        self._sizes[student_id] = entry.nbytes
        self.total_bytes += entry.nbytes
        # Gauges move by delta, not set(): several stores (one per
        # engine) share the process-wide series, so deltas aggregate
        # while absolute sets would clobber each other.
        self._obs_bytes.inc(entry.nbytes)
        self._obs_entries.inc()
        self._evict_over_budget()

    def note_growth(self, student_id) -> None:
        """Re-account an entry whose arrays grew (after ``extend``)."""
        entry = self._entries.get(student_id)
        if entry is None:
            return
        self.total_bytes += entry.nbytes - self._sizes[student_id]
        self._obs_bytes.inc(entry.nbytes - self._sizes[student_id])
        self._sizes[student_id] = entry.nbytes
        self._evict_over_budget()

    def discard(self, student_id) -> None:
        if self._entries.pop(student_id, None) is not None:
            size = self._sizes.pop(student_id)
            self.total_bytes -= size
            self._obs_bytes.dec(size)
            self._obs_entries.dec()

    def invalidate(self) -> None:
        """Drop everything (checkpoint reload: states are stale)."""
        self._obs_bytes.dec(self.total_bytes)
        self._obs_entries.dec(len(self._entries))
        self._entries.clear()
        self._sizes.clear()
        self.total_bytes = 0

    def _evict_over_budget(self) -> None:
        while self.total_bytes > self.budget_bytes and self._entries:
            student_id, _ = self._entries.popitem(last=False)
            size = self._sizes.pop(student_id)
            self.total_bytes -= size
            self.evictions += 1
            self._obs_evictions.inc()
            self._obs_bytes.dec(size)
            self._obs_entries.dec()

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "bytes": self.total_bytes,
            "budget_bytes": self.budget_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
