"""HTTP/JSON gateway: the wire transport over the ``Service`` facade.

Pure stdlib (``http.server``) — no framework dependency — with a
thread-per-connection server whose handlers all call into one shared
:class:`~repro.serve.Service`; the facade's scheduler and per-engine
locks provide the concurrency discipline, the gateway only translates.

Routes (all JSON, protocol v2 with v1 still accepted — see
``docs/API.md`` for the wire reference).  The gateway negotiates per
request: replies are stamped with the version the request declared
(:func:`~repro.serve.protocol.negotiated_version`), so a v1 caller gets
v1-stamped replies and never sees a v2-only construct it cannot parse.

==========================  =================================================
``POST /v1/query``          one typed query -> its reply, HTTP status mapped
                            from the error taxonomy (200 on success)
``POST /v1/batch``          a batch envelope -> ``batch_reply`` with one
                            reply per query, always 200 (per-query errors
                            ride inside)
``GET  /v1/health``         liveness + protocol ``capabilities`` + model
                            names
``GET  /v1/models``         per-model metadata (encoder, vocab, window, ...)
``POST /v1/admin/rollout``  warm blue/green checkpoint rollout
                            (``Service.rollout``); admin plane, not a
                            protocol query
==========================  =================================================

:class:`ServiceClient` is the matching typed client (stdlib
``http.client`` over a pool of persistent keep-alive connections), used
by ``examples/serve_http.py``, the gateway tests, and the cluster
router's fan-out; it decodes every response back into the same typed
replies/errors the in-process facade returns, so code written against
the facade ports to the wire by swapping the object.
"""

from __future__ import annotations

import dataclasses
import http.client
import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .. import obs
from ..obs import names as metric_names
from .protocol import (DEFAULT_MODEL, PROTOCOL_VERSION, BatchEnvelope,
                       BatchReply, InternalError, MalformedQuery,
                       ModelNotLoaded, NotFound, capabilities, is_error,
                       negotiated_version, query_from_wire,
                       reply_from_wire, to_wire)
from .service import Service

#: Cap on request bodies: a serving query is bytes, not megabytes; the
#: bound keeps a confused client from buffering unbounded JSON.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Routes that may appear as the ``endpoint`` label on HTTP metrics;
#: anything else is folded into ``other`` so scans cannot explode the
#: label cardinality.
_KNOWN_ENDPOINTS = frozenset({
    "/v1/query", "/v1/batch", "/v1/health", "/v1/models",
    "/v1/metrics", "/v1/admin/rollout",
})


class _GatewayHandler(BaseHTTPRequestHandler):
    """One request per call; the service lives on the server object."""

    server_version = "rckt-serve/1"
    protocol_version = "HTTP/1.1"
    # Keep-alive + small JSON bodies is exactly the traffic pattern
    # where Nagle's algorithm and delayed ACKs conspire into ~40ms
    # stalls per exchange; serving queries are latency-bound, so flush
    # every segment immediately.
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        self._last_status = status
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if getattr(self, "_request_id", None) is not None:
            self.send_header("X-Request-Id", self._request_id)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, body: str) -> None:
        self._last_status = status
        raw = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(raw)))
        self.end_headers()
        self.wfile.write(raw)

    def _send_reply(self, reply, version: int = PROTOCOL_VERSION) -> None:
        status = reply.http_status if is_error(reply) else 200
        self._send_json(status, to_wire(reply, version=version))

    def _read_body(self):
        """Parsed JSON body, or a MalformedQuery error value.

        Error paths that bail before consuming the declared body close
        the connection (``close_connection``): leftover body bytes on a
        kept-alive socket would be parsed as the next request line,
        desyncing every subsequent exchange.
        """
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            self.close_connection = True
            return MalformedQuery("missing or invalid Content-Length")
        if length <= 0:
            self.close_connection = True
            return MalformedQuery("empty request body")
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            return MalformedQuery(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            return MalformedQuery(f"request body is not valid JSON "
                                  f"({error})")

    # ------------------------------------------------------------------
    # Per-endpoint metrics
    # ------------------------------------------------------------------
    def _observe_http(self, path: str, started: float) -> None:
        registry = self.server.obs_registry
        endpoint = path if path in _KNOWN_ENDPOINTS else "other"
        registry.counter(metric_names.HTTP_REQUESTS_TOTAL,
                         endpoint=endpoint).inc()
        if getattr(self, "_last_status", 200) >= 400:
            registry.counter(metric_names.HTTP_ERRORS_TOTAL,
                             endpoint=endpoint).inc()
        registry.histogram(metric_names.HTTP_REQUEST_SECONDS,
                           endpoint=endpoint).observe(
            obs.clock() - started)

    def _serve_metrics(self, query: str) -> None:
        """``GET /v1/metrics``: JSON snapshot, or Prometheus text when
        the query string asks for ``format=prometheus``."""
        registry = self.server.obs_registry
        if "format=prometheus" in query:
            self._send_text(200, registry.render_prometheus())
            return
        snapshot = registry.snapshot()
        snapshot["role"] = self.server.role
        snapshot["spans"] = obs.recent_spans()
        self._send_json(200, snapshot)

    def _health_payload(self, service) -> dict:
        registry = self.server.obs_registry
        stream_caches = {}
        for name in service.registry.names():
            try:
                stream_caches[name] = service.engine(name) \
                    .stream_cache_stats()
            except KeyError:  # pragma: no cover - racing a rollout
                continue
        return {
            "status": "ok",
            "protocol": PROTOCOL_VERSION,
            "capabilities": capabilities(),
            "models": service.registry.names(),
            "uptime_s": obs.clock() - self.server.started,
            "served_requests": registry.counter_total(
                metric_names.HTTP_REQUESTS_TOTAL),
            "stream_caches": stream_caches,
        }

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        started = obs.clock()
        self._request_id = None
        path, _, query = self.path.partition("?")
        self._route_get(path, query)
        self._observe_http(path, started)

    def _route_get(self, path: str, query: str) -> None:
        service = self.server.service
        if path == "/v1/health":
            self._send_json(200, self._health_payload(service))
        elif path == "/v1/models":
            self._send_json(200, {"models": service.describe_models()})
        elif path == "/v1/metrics":
            self._serve_metrics(query)
        else:
            self._send_reply(NotFound(f"no such route: GET {self.path}"))

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        started = obs.clock()
        self._request_id = None
        path, _, _query = self.path.partition("?")
        self._route_post(path)
        self._observe_http(path, started)

    def _route_post(self, path: str) -> None:
        service = self.server.service
        payload = self._read_body()
        if is_error(payload):
            self._send_reply(payload)
            return
        # Negotiate once per request: every reply on this exchange —
        # success, taxonomy error, even the InternalError catch-all —
        # is stamped with the version the caller declared.
        version = negotiated_version(payload)
        try:
            if path == "/v1/query":
                query = query_from_wire(payload)
                self._send_reply(service.execute(query), version=version)
            elif path == "/v1/batch":
                envelope = query_from_wire(payload)
                if is_error(envelope):
                    self._send_reply(envelope, version=version)
                    return
                if not isinstance(envelope, BatchEnvelope):
                    envelope = BatchEnvelope((envelope,))
                # Trace admission: honor a caller-supplied request ID
                # (the router→worker hop), mint one otherwise.  The ID
                # rides back on ``X-Request-Id`` and shows up in this
                # process's span log (docs/OBSERVABILITY.md).
                if envelope.request_id is None:
                    envelope = dataclasses.replace(
                        envelope, request_id=obs.new_request_id())
                self._request_id = envelope.request_id
                span_name = f"{self.server.role}.batch"
                with obs.Span(span_name, envelope.request_id):
                    replies = service.execute_batch(envelope)
                self._send_json(200, to_wire(BatchReply(tuple(replies)),
                                             version=version))
            elif path == "/v1/admin/rollout":
                self._admin_rollout(service, payload)
            else:
                self._send_reply(NotFound(
                    f"no such route: POST {self.path}"), version=version)
        except Exception as error:  # noqa: BLE001 - transport boundary
            # The facade returns errors as values; anything that still
            # escapes is a server bug, reported in-protocol.
            self._send_reply(InternalError(
                f"gateway failure: {type(error).__name__}: {error}"),
                version=version)

    def _admin_rollout(self, service, payload) -> None:
        """Warm blue/green rollout (``Service.rollout``) over the wire.

        Body: ``{"checkpoint": path, "model": name?, "warm_top": n?}``.
        The in-process admin errors map onto the taxonomy: an unknown
        model name answers ``model_not_loaded``, a bad checkpoint or
        id-space mismatch ``malformed_query``.
        """
        if not isinstance(payload, dict) or \
                not isinstance(payload.get("checkpoint"), str):
            self._send_reply(MalformedQuery(
                "rollout needs a JSON object with a 'checkpoint' path"))
            return
        model = payload.get("model", DEFAULT_MODEL)
        warm_top = payload.get("warm_top", 64)
        if not isinstance(warm_top, int) or isinstance(warm_top, bool):
            self._send_reply(MalformedQuery(
                f"warm_top must be an integer, got {warm_top!r}"))
            return
        try:
            summary = service.rollout(payload["checkpoint"], name=model,
                                      warm_top=warm_top)
        except KeyError as error:
            self._send_reply(ModelNotLoaded(str(error).strip("'\"")))
            return
        except (ValueError, OSError) as error:
            self._send_reply(MalformedQuery(
                f"rollout rejected: {error}"))
            return
        if is_error(summary):
            # A gated Service returns the refusal (e.g. rollout_refused
            # from a drift monitor) as a value; forward it in-protocol.
            self._send_reply(summary)
            return
        self._send_json(200, {"status": "ok", **summary})


class ServiceHTTPServer(ThreadingHTTPServer):
    """Thread-per-connection HTTP server bound to one Service.

    ``role`` names this process in spans and ``/v1/metrics`` output
    (``gateway`` for a standalone server, ``worker`` when the cluster
    boots one behind the router); the obs registry is captured at
    construction, so a test swapping the process registry gets an
    isolated server.
    """

    daemon_threads = True

    def __init__(self, address, service: Service, verbose: bool = False,
                 role: str = "gateway"):
        super().__init__(address, _GatewayHandler)
        self.service = service
        self.verbose = verbose
        self.role = role
        self.obs_registry = obs.get_registry()
        self.started = obs.clock()


def serve_http(service: Service, host: str = "127.0.0.1", port: int = 0,
               verbose: bool = False,
               role: str = "gateway") -> ServiceHTTPServer:
    """Bind a gateway (``port=0`` picks an ephemeral port).

    Returns the server without entering its loop — call
    ``serve_forever()`` (the CLI does), or drive it from a thread:

    >>> server = serve_http(service)                    # doctest: +SKIP
    >>> threading.Thread(target=server.serve_forever,
    ...                  daemon=True).start()           # doctest: +SKIP
    """
    return ServiceHTTPServer((host, port), service, verbose=verbose,
                             role=role)


def start_http_thread(service: Service, host: str = "127.0.0.1",
                      port: int = 0, role: str = "gateway"):
    """Gateway on a daemon thread; returns ``(server, thread)``.

    The in-process convenience the example and tests use: the server is
    already accepting connections when this returns (the socket binds in
    the constructor), and ``server.shutdown()`` stops the loop.
    """
    server = serve_http(service, host=host, port=port, role=role)
    thread = threading.Thread(target=server.serve_forever,
                              name="rckt-http-gateway", daemon=True)
    thread.start()
    return server, thread


class ServiceClient:
    """Typed keep-alive client for the gateway (stdlib ``http.client``).

    Every call returns the same typed replies and error values the
    in-process facade produces — errors are returned, not raised, unless
    the *transport itself* fails (unreachable host, non-JSON response),
    which raises ``OSError`` subclasses / ``ValueError``.

    Connections are **persistent**: the gateway speaks HTTP/1.1 with
    ``Content-Length`` framing, so the client keeps a small pool of
    kept-alive sockets and reuses them across requests — this removes
    the per-request TCP handshake that dominated single-query wire
    latency (the PR 4 open item), and it is what the cluster router
    fans out over.  The pool is thread-safe (each in-flight request
    owns one checked-out connection); a request that fails on a
    *reused* socket — the server may close an idle connection at any
    time — is retried once on a fresh one, while a failure on a fresh
    socket propagates (the server is actually unreachable).
    """

    def __init__(self, base_url: str, timeout: float = 30.0,
                 max_idle: int = 4,
                 protocol_version: int = PROTOCOL_VERSION):
        import urllib.parse
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.max_idle = max_idle
        # Stamped on every outgoing envelope; the server echoes it on
        # replies (version negotiation).  Pinning 1 makes the client
        # speak to pre-recourse servers — and makes this client reject
        # v2-only queries locally instead of on the wire.
        self.protocol_version = protocol_version
        parts = urllib.parse.urlsplit(self.base_url)
        if parts.scheme != "http":
            raise ValueError(f"ServiceClient speaks plain http, got "
                             f"'{self.base_url}'")
        self._host = parts.hostname
        self._port = parts.port or 80
        self._prefix = parts.path.rstrip("/")
        self._idle: list = []
        self._lock = threading.Lock()
        #: Sockets opened over this client's lifetime (reuse telemetry:
        #: N requests over one healthy server should leave this at 1).
        self.connections_opened = 0

    # ------------------------------------------------------------------
    # Connection pool
    # ------------------------------------------------------------------
    def _checkout(self):
        """An idle kept-alive connection, or a fresh one.

        Returns ``(connection, reused)`` — ``reused`` drives the
        retry-once policy.
        """
        with self._lock:
            if self._idle:
                return self._idle.pop(), True
        connection = http.client.HTTPConnection(
            self._host, self._port, timeout=self.timeout)
        connection.connect()
        # Without TCP_NODELAY, Nagle + delayed ACKs stall every
        # request-after-response on a reused socket by ~40ms — the
        # keep-alive pool would be slower than fresh connections.
        connection.sock.setsockopt(socket.IPPROTO_TCP,
                                   socket.TCP_NODELAY, 1)
        self.connections_opened += 1
        return connection, False

    def _checkin(self, connection) -> None:
        with self._lock:
            if len(self._idle) < self.max_idle:
                self._idle.append(connection)
                return
        connection.close()

    def close(self) -> None:
        """Close every idle pooled connection (idempotent)."""
        with self._lock:
            idle, self._idle = self._idle, []
        for connection in idle:
            connection.close()

    def _exchange(self, method: str, route: str, body: bytes = None,
                  decode_json: bool = True):
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            connection, reused = self._checkout()
            try:
                connection.request(method, f"{self._prefix}{route}",
                                   body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except TimeoutError:
                # A timeout proves nothing about whether the server
                # processed the request — retrying could apply a
                # non-idempotent RecordEvent twice.  Never retry it.
                connection.close()
                raise
            except (http.client.HTTPException, OSError):
                connection.close()
                if reused and attempt == 0:
                    # Stale keep-alive: the server closed the idle
                    # socket between requests (the reset/EPIPE arrives
                    # on our send or on the first response byte), so
                    # the request was never processed.  One fresh
                    # retry.  Fresh-socket failures propagate — the
                    # server is actually unreachable.
                    continue
                raise
            if response.will_close:
                connection.close()
            else:
                self._checkin(connection)
            return json.loads(raw) if decode_json else raw
        raise ConnectionError(f"unreachable: {self.base_url}{route}")

    # ------------------------------------------------------------------
    # Raw wire
    # ------------------------------------------------------------------
    def _post(self, route: str, payload: dict) -> dict:
        # Taxonomy errors arrive as 4xx/5xx with a protocol body: the
        # body is decoded regardless of status, like the facade
        # returning error values.
        return self._exchange("POST", route,
                              json.dumps(payload).encode("utf-8"))

    def _get(self, route: str) -> dict:
        return self._exchange("GET", route)

    # ------------------------------------------------------------------
    # Typed surface
    # ------------------------------------------------------------------
    def query(self, query):
        """Execute one typed query object over the wire."""
        payload = to_wire(query, version=self.protocol_version)
        return reply_from_wire(self._post("/v1/query", payload))

    def batch(self, queries):
        """Execute many queries as one envelope; replies in order."""
        envelope = queries if isinstance(queries, BatchEnvelope) \
            else BatchEnvelope(tuple(queries))
        payload = to_wire(envelope, version=self.protocol_version)
        reply = reply_from_wire(self._post("/v1/batch", payload))
        return list(reply.replies) if isinstance(reply, BatchReply) \
            else reply

    def health(self) -> dict:
        return self._get("/v1/health")

    def models(self) -> dict:
        return self._get("/v1/models")

    def metrics(self) -> dict:
        """The server's JSON metrics snapshot (``GET /v1/metrics``)."""
        return self._get("/v1/metrics")

    def metrics_text(self) -> str:
        """Prometheus text exposition of the server's metrics."""
        raw = self._exchange("GET", "/v1/metrics?format=prometheus",
                             decode_json=False)
        return raw.decode("utf-8")

    def rollout(self, checkpoint, model: str = None,
                warm_top: int = None):
        """Trigger a warm blue/green rollout on the server.

        Returns the summary dict on success, or the typed taxonomy
        error value the gateway mapped the failure to.
        """
        payload = {"checkpoint": str(checkpoint)}
        if model is not None:
            payload["model"] = model
        if warm_top is not None:
            payload["warm_top"] = warm_top
        reply = self._post("/v1/admin/rollout", payload)
        if isinstance(reply, dict) and reply.get("type") == "error":
            return reply_from_wire(reply)
        return reply
