"""HTTP/JSON gateway: the wire transport over the ``Service`` facade.

Pure stdlib (``http.server``) — no framework dependency — with a
thread-per-connection server whose handlers all call into one shared
:class:`~repro.serve.Service`; the facade's scheduler and per-engine
locks provide the concurrency discipline, the gateway only translates.

Routes (all JSON, protocol v1 — see ``docs/API.md`` for the wire
reference):

==========================  =================================================
``POST /v1/query``          one typed query -> its reply, HTTP status mapped
                            from the error taxonomy (200 on success)
``POST /v1/batch``          a batch envelope -> ``batch_reply`` with one
                            reply per query, always 200 (per-query errors
                            ride inside)
``GET  /v1/health``         liveness + protocol version + model names
``GET  /v1/models``         per-model metadata (encoder, vocab, window, ...)
==========================  =================================================

:class:`ServiceClient` is the matching minimal client (``urllib``), used
by ``examples/serve_http.py`` and the gateway tests; it decodes every
response back into the same typed replies/errors the in-process facade
returns, so code written against the facade ports to the wire by
swapping the object.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .protocol import (PROTOCOL_VERSION, BatchEnvelope, BatchReply,
                       InternalError, MalformedQuery, NotFound, is_error,
                       query_from_wire, reply_from_wire, to_wire)
from .service import Service

#: Cap on request bodies: a serving query is bytes, not megabytes; the
#: bound keeps a confused client from buffering unbounded JSON.
MAX_BODY_BYTES = 8 * 1024 * 1024


class _GatewayHandler(BaseHTTPRequestHandler):
    """One request per call; the service lives on the server object."""

    server_version = "rckt-serve/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_reply(self, reply) -> None:
        status = reply.http_status if is_error(reply) else 200
        self._send_json(status, to_wire(reply))

    def _read_body(self):
        """Parsed JSON body, or a MalformedQuery error value.

        Error paths that bail before consuming the declared body close
        the connection (``close_connection``): leftover body bytes on a
        kept-alive socket would be parsed as the next request line,
        desyncing every subsequent exchange.
        """
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            self.close_connection = True
            return MalformedQuery("missing or invalid Content-Length")
        if length <= 0:
            self.close_connection = True
            return MalformedQuery("empty request body")
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            return MalformedQuery(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            return MalformedQuery(f"request body is not valid JSON "
                                  f"({error})")

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        service = self.server.service
        if self.path == "/v1/health":
            self._send_json(200, {
                "status": "ok",
                "protocol": PROTOCOL_VERSION,
                "models": service.registry.names(),
            })
        elif self.path == "/v1/models":
            self._send_json(200, {"models": service.describe_models()})
        else:
            self._send_reply(NotFound(f"no such route: GET {self.path}"))

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        service = self.server.service
        payload = self._read_body()
        if is_error(payload):
            self._send_reply(payload)
            return
        try:
            if self.path == "/v1/query":
                query = query_from_wire(payload)
                self._send_reply(service.execute(query))
            elif self.path == "/v1/batch":
                envelope = query_from_wire(payload)
                if is_error(envelope):
                    self._send_reply(envelope)
                    return
                if not isinstance(envelope, BatchEnvelope):
                    envelope = BatchEnvelope((envelope,))
                replies = service.execute_batch(envelope)
                self._send_json(200, to_wire(BatchReply(tuple(replies))))
            else:
                self._send_reply(NotFound(
                    f"no such route: POST {self.path}"))
        except Exception as error:  # noqa: BLE001 - transport boundary
            # The facade returns errors as values; anything that still
            # escapes is a server bug, reported in-protocol.
            self._send_reply(InternalError(
                f"gateway failure: {type(error).__name__}: {error}"))


class ServiceHTTPServer(ThreadingHTTPServer):
    """Thread-per-connection HTTP server bound to one Service."""

    daemon_threads = True

    def __init__(self, address, service: Service, verbose: bool = False):
        super().__init__(address, _GatewayHandler)
        self.service = service
        self.verbose = verbose


def serve_http(service: Service, host: str = "127.0.0.1", port: int = 0,
               verbose: bool = False) -> ServiceHTTPServer:
    """Bind a gateway (``port=0`` picks an ephemeral port).

    Returns the server without entering its loop — call
    ``serve_forever()`` (the CLI does), or drive it from a thread:

    >>> server = serve_http(service)                    # doctest: +SKIP
    >>> threading.Thread(target=server.serve_forever,
    ...                  daemon=True).start()           # doctest: +SKIP
    """
    return ServiceHTTPServer((host, port), service, verbose=verbose)


def start_http_thread(service: Service, host: str = "127.0.0.1",
                      port: int = 0):
    """Gateway on a daemon thread; returns ``(server, thread)``.

    The in-process convenience the example and tests use: the server is
    already accepting connections when this returns (the socket binds in
    the constructor), and ``server.shutdown()`` stops the loop.
    """
    server = serve_http(service, host=host, port=port)
    thread = threading.Thread(target=server.serve_forever,
                              name="rckt-http-gateway", daemon=True)
    thread.start()
    return server, thread


class ServiceClient:
    """Minimal typed client for the gateway (stdlib ``urllib``).

    Every call returns the same typed replies and error values the
    in-process facade produces — errors are returned, not raised, unless
    the *transport itself* fails (unreachable host, non-JSON response),
    which raises ``urllib.error.URLError`` / ``ValueError``.
    """

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Raw wire
    # ------------------------------------------------------------------
    def _post(self, route: str, payload: dict) -> dict:
        body = json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            f"{self.base_url}{route}", data=body,
            headers={"Content-Type": "application/json"}, method="POST")
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as error:
            # Taxonomy errors arrive as 4xx/5xx with a protocol body:
            # decode instead of raising, like the facade returns values.
            return json.loads(error.read())

    def _get(self, route: str) -> dict:
        with urllib.request.urlopen(f"{self.base_url}{route}",
                                    timeout=self.timeout) as response:
            return json.loads(response.read())

    # ------------------------------------------------------------------
    # Typed surface
    # ------------------------------------------------------------------
    def query(self, query):
        """Execute one typed query object over the wire."""
        return reply_from_wire(self._post("/v1/query", to_wire(query)))

    def batch(self, queries):
        """Execute many queries as one envelope; replies in order."""
        envelope = queries if isinstance(queries, BatchEnvelope) \
            else BatchEnvelope(tuple(queries))
        reply = reply_from_wire(self._post("/v1/batch", to_wire(envelope)))
        return list(reply.replies) if isinstance(reply, BatchReply) \
            else reply

    def health(self) -> dict:
        return self._get("/v1/health")

    def models(self) -> dict:
        return self._get("/v1/models")
