"""CLI: serve RCKT checkpoints over the HTTP/JSON gateway.

Usage::

    python -m repro.serve --checkpoint rckt.npz
    python -m repro.serve --checkpoint prod=rckt.npz --checkpoint \\
        canary=rckt_new.npz --port 8080 --window 256 --workers 4
    python -m repro.serve --selfcheck

``--checkpoint`` takes ``PATH`` (registered as the default model) or
``NAME=PATH`` and may repeat — every name becomes addressable through
the queries' ``model`` field.  ``--selfcheck`` boots a tiny synthetic
model instead, round-trips a score through a real socket, and exits —
the zero-dependency smoke test CI runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .http_gateway import ServiceClient, serve_http, start_http_thread
from .protocol import (DEFAULT_MODEL, CandidateQuestion, RecourseQuery,
                       ScoreQuery, to_wire)
from .registry import ModelRegistry
from .service import Service


def _parse_checkpoint(spec: str):
    name, sep, path = spec.partition("=")
    if not sep:
        return DEFAULT_MODEL, spec
    if not name or not path:
        raise argparse.ArgumentTypeError(
            f"--checkpoint expects PATH or NAME=PATH, got '{spec}'")
    return name, path


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="HTTP/JSON gateway over the typed RCKT serving API")
    parser.add_argument("--checkpoint", action="append",
                        type=_parse_checkpoint, metavar="[NAME=]PATH",
                        help="engine checkpoint to register (repeatable); "
                             "bare PATH registers as "
                             f"'{DEFAULT_MODEL}'")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="0 picks an ephemeral port")
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--workers", type=int, default=1,
                        help="persistent scoring threads per model")
    parser.add_argument("--window", type=int, default=None,
                        help="sliding-window context size")
    parser.add_argument("--window-hop", type=int, default=None)
    parser.add_argument("--stream-cache-bytes", type=int, default=None,
                        help="LRU budget for forward-stream caches "
                             "(default: engine default)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every request")
    parser.add_argument("--selfcheck", action="store_true",
                        help="boot a tiny synthetic model, round-trip a "
                             "score over a real socket, exit 0 on success")
    return parser


def _engine_kwargs(args) -> dict:
    kwargs = {"workers": args.workers, "window": args.window,
              "window_hop": args.window_hop}
    if args.stream_cache_bytes is not None:
        kwargs["stream_cache_bytes"] = args.stream_cache_bytes
    return kwargs


def _selfcheck(args) -> int:
    from repro.core import RCKT, RCKTConfig
    from repro.serve import InferenceEngine

    model = RCKT(20, 5, RCKTConfig(encoder="dkt", dim=8, layers=1, seed=0))
    engine = InferenceEngine(model, **_engine_kwargs(args))
    service = Service(engine, max_batch=args.max_batch)
    engine.record("probe", 3, 1, (2,))
    server, _ = start_http_thread(service, host=args.host, port=0)
    try:
        client = ServiceClient(f"http://{args.host}:{server.server_port}")
        health = client.health()
        reply = client.query(ScoreQuery("probe", 5, (1,)))
        direct = service.execute(ScoreQuery("probe", 5, (1,)))
        if health.get("status") != "ok":
            print(f"selfcheck: bad health payload {health}")
            return 1
        supported = health.get("capabilities", {}).get("query_types", [])
        if "recourse" not in supported:
            print(f"selfcheck: capabilities missing recourse: {health}")
            return 1
        if not reply.ok or abs(reply.score - direct.score) > 1e-12:
            print(f"selfcheck: wire score {reply} != direct {direct}")
            return 1
        recourse = RecourseQuery(
            "probe", 5, (1,), threshold=0.99, max_edits=2,
            candidates=(CandidateQuestion(7, (2,)),
                        CandidateQuestion(9, (3,))))
        wire = client.query(recourse)
        local = service.execute(recourse)
        if to_wire(wire) != to_wire(local):
            print(f"selfcheck: wire recourse {to_wire(wire)} != "
                  f"direct {to_wire(local)}")
            return 1
        # The traffic above must have populated the core metric series
        # (docs/OBSERVABILITY.md) — the CI smoke lane scrapes the same
        # endpoint again after this run.
        snapshot = client.metrics()
        totals = {}
        for entry in snapshot["counters"]:
            totals[entry["name"]] = totals.get(entry["name"], 0) \
                + entry["value"]
        for entry in snapshot["histograms"]:
            totals[entry["name"]] = totals.get(entry["name"], 0) \
                + entry["data"]["count"]
        missing = [name for name in ("service_requests_total",
                                     "http_requests_total",
                                     "service_batch_seconds",
                                     "http_request_seconds")
                   if totals.get(name, 0) <= 0]
        if missing:
            print(f"selfcheck: /v1/metrics has no live data for "
                  f"{missing}")
            return 1
        if "# TYPE" not in client.metrics_text():
            print("selfcheck: prometheus exposition looks empty")
            return 1
    finally:
        server.shutdown()
        service.close()
    print(f"selfcheck: ok (score {direct.score:.6f} and a recourse "
          f"search round-tripped over "
          f"http://{args.host}:{server.server_port})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.selfcheck:
        return _selfcheck(args)
    if not args.checkpoint:
        build_parser().error("--checkpoint is required (or --selfcheck)")
    registry = ModelRegistry()
    for name, path in args.checkpoint:
        engine = registry.load(name, path, **_engine_kwargs(args))
        print(f"loaded model '{name}' from {path} "
              f"({engine.num_questions} questions, "
              f"{engine.num_concepts} concepts)")
    service = Service(registry=registry, max_batch=args.max_batch)
    server = serve_http(service, host=args.host, port=args.port,
                        verbose=args.verbose)
    print(f"serving {registry.names()} on "
          f"http://{args.host}:{server.server_port} "
          f"(POST /v1/query, /v1/batch; GET /v1/health, /v1/models)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
        service.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
