"""Versioned typed query protocol of the serving API (v2).

Every serving capability — scoring, per-response influence explanation,
counterfactual what-if replay, recommendation, counterfactual recourse
search, event recording — is a typed *query* dataclass that flows
through :class:`repro.serve.Service` and comes back as a typed *reply*
dataclass.  Failures are part of the protocol: structured
:class:`ServiceError` values (one subclass per failure mode) are
**returned, not raised**, so the same taxonomy crosses the in-process
facade and the HTTP gateway unchanged.

Wire format and version negotiation
-----------------------------------
``to_wire`` turns any protocol object into a JSON-ready dict tagged with
``{"v": <version>, "type": <tag>}``; ``query_from_wire`` /
``reply_from_wire`` invert it.  The server speaks every version in
:data:`SUPPORTED_PROTOCOL_VERSIONS`: a v1 envelope still decodes (its
nested batch queries inherit the envelope's version), and replies are
stamped with the *negotiated* version — whatever supported version the
request carried (:func:`negotiated_version`).  A version outside the
supported set decodes to :class:`UnsupportedVersion`; a type tag the
negotiated version does not know (``"recourse"`` under v1, or a tag no
version knows) decodes to :class:`UnknownQueryType` — both are
:class:`MalformedQuery` values, never exceptions, with identical bytes
from the gateway and the cluster router.  :func:`capabilities`
enumerates the supported versions and per-version query types for the
health/selfcheck reply.

Well-shaped queries carrying ill-*typed* values (a string question id,
a fractional ``top_k``) decode structurally and are rejected by the
service's admission validation with the specific taxonomy error —
either way the gateway answers garbage with a structured error, never a
stack trace.  Fields that exist only in-process
(``ExplainReply.computation``) are never serialized.

The full field-by-field reference lives in ``docs/API.md``.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import ClassVar, Optional, Tuple

PROTOCOL_VERSION = 2

#: Every protocol version this build decodes.  v1 payloads (including
#: journaled RecordEvent frames from pre-v2 deployments) stay valid.
SUPPORTED_PROTOCOL_VERSIONS = (1, 2)

#: Registry name queries address when they don't specify one.
DEFAULT_MODEL = "default"

EDIT_OPS = ("flip", "set", "remove")


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ScoreQuery:
    """P(correct) for ``student_id`` answering ``question_id`` next."""

    TYPE: ClassVar[str] = "score"

    student_id: object
    question_id: int
    concept_ids: Tuple[int, ...]
    model: str = DEFAULT_MODEL

    def __post_init__(self):
        object.__setattr__(self, "concept_ids", tuple(self.concept_ids))


@dataclass(frozen=True)
class ExplainQuery:
    """Per-response influences of the history on the latest response."""

    TYPE: ClassVar[str] = "explain"

    student_id: object
    model: str = DEFAULT_MODEL


@dataclass(frozen=True)
class HistoryEdit:
    """One counterfactual edit to a recorded history position.

    ``op`` is one of :data:`EDIT_OPS`: ``"flip"`` toggles the response's
    correctness, ``"set"`` forces it to ``value`` (0/1), ``"remove"``
    deletes the interaction entirely.  ``position`` indexes the
    student's *full* recorded history (0-based, before any edits are
    applied; a batch of edits is applied highest-position-first so the
    indices never shift under each other — which is also why a query
    may edit each position at most once: duplicates are rejected as
    ``invalid_edit``).
    """

    TYPE: ClassVar[str] = "edit"

    position: int
    op: str
    value: Optional[int] = None


@dataclass(frozen=True)
class WhatIfQuery:
    """Counterfactual replay: edit past responses, then re-score a probe.

    Applies ``edits`` to a *copy* of the student's history (the recorded
    history is never mutated) and scores ``question_id`` on the edited
    timeline.  The reply also carries the unedited baseline score of the
    same probe, so the delta is one round-trip.
    """

    TYPE: ClassVar[str] = "what_if"

    student_id: object
    question_id: int
    concept_ids: Tuple[int, ...]
    edits: Tuple[HistoryEdit, ...]
    model: str = DEFAULT_MODEL

    def __post_init__(self):
        object.__setattr__(self, "concept_ids", tuple(self.concept_ids))
        object.__setattr__(self, "edits", tuple(self.edits))


@dataclass(frozen=True)
class CandidateQuestion:
    """One candidate in a :class:`RecommendQuery`."""

    TYPE: ClassVar[str] = "candidate"

    question_id: int
    concept_ids: Tuple[int, ...]

    def __post_init__(self):
        object.__setattr__(self, "concept_ids", tuple(self.concept_ids))


@dataclass(frozen=True)
class RecommendQuery:
    """Rank candidate next questions for a student (Sec. V-C workload)."""

    TYPE: ClassVar[str] = "recommend"

    student_id: object
    candidates: Tuple[CandidateQuestion, ...]
    top_k: int = 5
    target_success: float = 0.6
    value_weight: float = 1.0
    horizon: int = 4
    model: str = DEFAULT_MODEL

    def __post_init__(self):
        object.__setattr__(self, "candidates", tuple(self.candidates))


@dataclass(frozen=True)
class RecourseQuery:
    """Counterfactual recourse search (protocol v2, KTCF-style).

    Given a target question, search for the **minimal** set of edits —
    fixing an in-window incorrect past response to correct
    (``allow_history_edits``) and/or appending candidate practice items
    answered correctly (``candidates``, the same assumed-answer worlds
    RecommendQuery scores) — that lifts the predicted success
    probability of ``question_id`` past ``threshold``.  ``beam_width``
    1 is greedy; wider beams explore more edit paths at the same number
    of search generations (at most ``max_edits``).  Every generation is
    scored as rows of one shared forward-stream batch.
    """

    TYPE: ClassVar[str] = "recourse"

    student_id: object
    question_id: int
    concept_ids: Tuple[int, ...]
    threshold: float = 0.75
    max_edits: int = 3
    beam_width: int = 1
    candidates: Tuple[CandidateQuestion, ...] = ()
    allow_history_edits: bool = True
    model: str = DEFAULT_MODEL

    def __post_init__(self):
        object.__setattr__(self, "concept_ids", tuple(self.concept_ids))
        object.__setattr__(self, "candidates", tuple(self.candidates))


@dataclass(frozen=True)
class RecordEvent:
    """Append one observed response to a student's history."""

    TYPE: ClassVar[str] = "record"

    student_id: object
    question_id: int
    correct: int
    concept_ids: Tuple[int, ...]
    model: str = DEFAULT_MODEL

    def __post_init__(self):
        object.__setattr__(self, "concept_ids", tuple(self.concept_ids))


@dataclass(frozen=True)
class BatchEnvelope:
    """Many queries admitted as one batch.

    Semantics (documented in ``docs/API.md``): all :class:`RecordEvent`
    entries apply first, in envelope order; every read query then
    observes the same post-record snapshot, and read queries for the
    same model are coalesced into shared forward-stream batches.
    Replies come back in envelope order regardless.

    ``request_id`` is the optional trace ID the gateway stamps at
    admission and the router propagates on the router→worker hop
    (``docs/OBSERVABILITY.md``).  It is protocol-v2-only and omitted
    from the wire when absent, so an envelope without one is
    byte-identical between v1 and v2.
    """

    TYPE: ClassVar[str] = "batch"

    queries: Tuple[object, ...]
    request_id: Optional[str] = None

    def __post_init__(self):
        object.__setattr__(self, "queries", tuple(self.queries))


QUERY_TYPES = {cls.TYPE: cls for cls in
               (ScoreQuery, ExplainQuery, WhatIfQuery, RecommendQuery,
                RecourseQuery, RecordEvent)}

#: First protocol version each query type appeared in (default: 1).
#: A v1 envelope carrying a newer type decodes to
#: :class:`UnknownQueryType` — exactly what a genuine v1-only server
#: would have answered.
_QUERY_MIN_VERSION = {RecourseQuery.TYPE: 2}


def query_types_for(version: int) -> Tuple[str, ...]:
    """Sorted query type tags (plus ``"batch"``) ``version`` accepts."""
    tags = [tag for tag in QUERY_TYPES
            if _QUERY_MIN_VERSION.get(tag, 1) <= version]
    return tuple(sorted(tags + [BatchEnvelope.TYPE]))


# ---------------------------------------------------------------------------
# Replies
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Reply:
    """Marker base for success replies (``ok`` discriminates errors)."""

    ok: ClassVar[bool] = True


@dataclass(frozen=True)
class ScoreReply(Reply):
    TYPE: ClassVar[str] = "score_reply"

    student_id: object
    question_id: int
    score: float
    history_length: int
    model: str = DEFAULT_MODEL


@dataclass(frozen=True)
class InfluenceItem:
    """One history position's influence on the explained target.

    ``position`` is absolute in the student's recorded history;
    ``influence`` is the per-position backward delta (Eq. 12): the
    contribution of keeping this response to the target's predicted
    correctness.
    """

    TYPE: ClassVar[str] = "influence_item"

    position: int
    question_id: int
    correct: int
    influence: float


@dataclass(frozen=True)
class ExplainReply(Reply):
    TYPE: ClassVar[str] = "explain_reply"

    student_id: object
    target_question_id: int
    target_correct: int
    score: float
    influences: Tuple[InfluenceItem, ...]
    model: str = DEFAULT_MODEL
    #: In-process only: the full differentiable
    #: :class:`repro.core.influence.InfluenceComputation` behind the
    #: itemized view.  Never serialized; ``None`` across the wire.
    computation: object = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "influences", tuple(self.influences))


@dataclass(frozen=True)
class WhatIfReply(Reply):
    TYPE: ClassVar[str] = "what_if_reply"

    student_id: object
    question_id: int
    score: float                 # probe score on the edited timeline
    baseline_score: float        # same probe on the recorded timeline
    history_length: int          # length of the edited timeline
    model: str = DEFAULT_MODEL

    @property
    def delta(self) -> float:
        return self.score - self.baseline_score


@dataclass(frozen=True)
class RecommendationItem:
    TYPE: ClassVar[str] = "recommendation_item"

    question_id: int
    concept_ids: Tuple[int, ...]
    success_probability: float
    value: float
    score: float

    def __post_init__(self):
        object.__setattr__(self, "concept_ids", tuple(self.concept_ids))


@dataclass(frozen=True)
class RecommendReply(Reply):
    TYPE: ClassVar[str] = "recommend_reply"

    student_id: object
    items: Tuple[RecommendationItem, ...]
    model: str = DEFAULT_MODEL

    def __post_init__(self):
        object.__setattr__(self, "items", tuple(self.items))


@dataclass(frozen=True)
class RecourseStep:
    """One edit along a recourse path, with the score after applying it.

    ``kind`` is ``"fix_history"`` (set the incorrect recorded response
    at ``position`` to correct) or ``"practice"`` (append
    ``question_id`` answered correctly to the timeline).  ``score`` is
    the target question's predicted success probability on the timeline
    *after* this step; ``lowered_score`` flags the monotonicity
    diagnostic — this step added a correct response yet the prediction
    went down.
    """

    TYPE: ClassVar[str] = "recourse_step"

    kind: str
    question_id: int
    score: float
    position: Optional[int] = None
    concept_ids: Tuple[int, ...] = ()
    lowered_score: bool = False

    def __post_init__(self):
        object.__setattr__(self, "concept_ids", tuple(self.concept_ids))


@dataclass(frozen=True)
class RecourseReply(Reply):
    """Result of a recourse search (protocol v2).

    ``steps`` is the chosen edit path in application order (empty when
    the baseline already clears the threshold); when ``achieved`` is
    False it is the best path found within the search budget.
    ``monotonic`` is False when any step's added correct response
    lowered the predicted score; ``generations`` counts search rounds
    (each one coalesced shared forward-stream batch) and
    ``worlds_scored`` the candidate timelines evaluated across them.
    """

    TYPE: ClassVar[str] = "recourse_reply"

    student_id: object
    question_id: int
    achieved: bool
    threshold: float
    baseline_score: float
    final_score: float
    steps: Tuple[RecourseStep, ...]
    monotonic: bool
    generations: int
    worlds_scored: int
    history_length: int
    model: str = DEFAULT_MODEL

    def __post_init__(self):
        object.__setattr__(self, "steps", tuple(self.steps))

    @property
    def trajectory(self) -> Tuple[float, ...]:
        """Per-step score trajectory, baseline first."""
        return (self.baseline_score,) + tuple(s.score for s in self.steps)


@dataclass(frozen=True)
class RecordReply(Reply):
    TYPE: ClassVar[str] = "record_reply"

    student_id: object
    history_length: int
    model: str = DEFAULT_MODEL


@dataclass(frozen=True)
class BatchReply(Reply):
    TYPE: ClassVar[str] = "batch_reply"

    replies: Tuple[object, ...]

    def __post_init__(self):
        object.__setattr__(self, "replies", tuple(self.replies))


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ServiceError:
    """Structured failure value.

    ``code`` is the stable machine-readable discriminator (one per
    subclass), ``message`` the human-readable diagnosis — which names
    the offending ids, the valid ranges, and the model/student context —
    and ``details`` optional structured fields for programmatic
    handling.  ``http_status`` is the status the gateway maps the error
    to; the wire body is the same either way.
    """

    ok: ClassVar[bool] = False
    TYPE: ClassVar[str] = "error"
    code: ClassVar[str] = "internal_error"
    http_status: ClassVar[int] = 500

    message: str
    details: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "details", tuple(
            (str(k), v) for k, v in
            (self.details.items() if isinstance(self.details, dict)
             else self.details)))

    def detail(self, key: str, default=None):
        for k, v in self.details:
            if k == key:
                return v
        return default


@dataclass(frozen=True)
class UnknownStudent(ServiceError):
    """The query requires a recorded history and the student has none."""

    code: ClassVar[str] = "unknown_student"
    http_status: ClassVar[int] = 404


@dataclass(frozen=True)
class InvalidQuestion(ServiceError):
    """``question_id`` outside the model's checkpoint vocabulary."""

    code: ClassVar[str] = "invalid_question"
    http_status: ClassVar[int] = 400


@dataclass(frozen=True)
class InvalidConcept(ServiceError):
    """A concept id outside the vocabulary, or an empty concept set."""

    code: ClassVar[str] = "invalid_concept"
    http_status: ClassVar[int] = 400


@dataclass(frozen=True)
class EmptyHistory(ServiceError):
    """The query needs more recorded history than the student has."""

    code: ClassVar[str] = "empty_history"
    http_status: ClassVar[int] = 409


@dataclass(frozen=True)
class InvalidEdit(ServiceError):
    """A :class:`HistoryEdit` that cannot apply to the recorded history."""

    code: ClassVar[str] = "invalid_edit"
    http_status: ClassVar[int] = 400


@dataclass(frozen=True)
class ModelNotLoaded(ServiceError):
    """The addressed model name is not (or no longer) in the registry."""

    code: ClassVar[str] = "model_not_loaded"
    http_status: ClassVar[int] = 503


@dataclass(frozen=True)
class MalformedQuery(ServiceError):
    """The payload does not decode to a protocol query."""

    code: ClassVar[str] = "malformed_query"
    http_status: ClassVar[int] = 400


@dataclass(frozen=True)
class UnsupportedVersion(MalformedQuery):
    """The envelope's ``v`` is outside the supported version set.

    A :class:`MalformedQuery` subclass so pre-v2 callers matching on
    the base class keep working, with a distinct ``code`` for clients
    that negotiate.
    """

    code: ClassVar[str] = "unsupported_version"
    http_status: ClassVar[int] = 400


@dataclass(frozen=True)
class UnknownQueryType(MalformedQuery):
    """The type tag is not a query type of the negotiated version.

    Covers both tags no version knows and tags that need a newer
    version than the envelope carried (``details["requires"]``).
    """

    code: ClassVar[str] = "unknown_query_type"
    http_status: ClassVar[int] = 400


@dataclass(frozen=True)
class RolloutRefused(ServiceError):
    """A drift gate vetoed a checkpoint rollout (the rollout did not run).

    Produced by :meth:`repro.serve.Service.rollout` when its ``gate``
    callback rejects the candidate (and by the ``repro.online``
    auto-rollout path) — a *refusal*, not a failure: the incumbent keeps
    serving untouched, and the decision details (prequential AUCs,
    threshold) ride in ``details``.  Like every taxonomy member it is
    returned as a value, never raised — CI-gate semantics, exactly how
    ``check_regression.py`` fails a benchmark run without crashing it.
    """

    code: ClassVar[str] = "rollout_refused"
    http_status: ClassVar[int] = 409


@dataclass(frozen=True)
class ShardUnavailable(ServiceError):
    """The shard owning this query's student cannot be reached.

    Only the cluster router produces this: a worker crash, a draining
    shard, or a transport failure mid-fan-out surfaces as one of these
    values *per affected query slot* — sibling queries on healthy shards
    answer normally, and nothing ever raises across the scatter-gather
    boundary.  A supervisor restart (with journal replay) clears it.
    """

    code: ClassVar[str] = "shard_unavailable"
    http_status: ClassVar[int] = 503


@dataclass(frozen=True)
class NotFound(ServiceError):
    """No such gateway route (distinct from a malformed payload)."""

    code: ClassVar[str] = "not_found"
    http_status: ClassVar[int] = 404


@dataclass(frozen=True)
class InternalError(ServiceError):
    """Unexpected server-side failure (the catch-all; never silent)."""

    code: ClassVar[str] = "internal_error"
    http_status: ClassVar[int] = 500


ERROR_TYPES = {cls.code: cls for cls in
               (UnknownStudent, InvalidQuestion, InvalidConcept,
                EmptyHistory, InvalidEdit, ModelNotLoaded, MalformedQuery,
                UnsupportedVersion, UnknownQueryType, RolloutRefused,
                ShardUnavailable, NotFound, InternalError)}

REPLY_TYPES = {cls.TYPE: cls for cls in
               (ScoreReply, ExplainReply, WhatIfReply, RecommendReply,
                RecourseReply, RecordReply, BatchReply)}


def is_error(obj) -> bool:
    """True for any :class:`ServiceError` value."""
    return isinstance(obj, ServiceError)


# ---------------------------------------------------------------------------
# Wire codec
# ---------------------------------------------------------------------------
#: Fields that exist only in-process and never cross the wire.
_LOCAL_FIELDS = {"computation"}

#: Optional fields omitted from the wire when ``None``, so payloads
#: that never set them stay byte-identical to pre-field builds.
_OPTIONAL_WIRE_FIELDS = {"request_id"}


def _jsonable(value):
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _dataclass_wire(value)
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    if hasattr(value, "item") and callable(value.item) \
            and getattr(value, "shape", None) == ():
        return value.item()   # NumPy scalar -> native Python
    return value


def _dataclass_wire(obj) -> dict:
    payload = {"type": obj.TYPE}
    if is_error(obj):
        payload["code"] = obj.code
    for spec in dataclasses.fields(obj):
        if spec.name in _LOCAL_FIELDS:
            continue
        value = getattr(obj, spec.name)
        if spec.name in _OPTIONAL_WIRE_FIELDS and value is None:
            continue
        if spec.name == "details":
            payload[spec.name] = {k: _jsonable(v) for k, v in value}
        else:
            payload[spec.name] = _jsonable(value)
    return payload


def to_wire(obj, version: int = PROTOCOL_VERSION) -> dict:
    """JSON-ready dict for any protocol query, reply, or error.

    ``version`` stamps the envelope — the gateway and router pass the
    *negotiated* version here so a v1 caller gets v1-stamped replies.
    Passing an unsupported version is a server-side programming error
    and raises.
    """
    if version not in SUPPORTED_PROTOCOL_VERSIONS:
        raise ValueError(f"cannot serialize protocol version {version!r} "
                         f"(supported: {SUPPORTED_PROTOCOL_VERSIONS})")
    payload = _dataclass_wire(obj)
    if version < 2:
        # request_id is a v2 addition; a v1 payload never carries it.
        payload.pop("request_id", None)
    payload["v"] = version
    return payload


def negotiated_version(payload) -> int:
    """The protocol version replies to ``payload`` should carry.

    A supported explicit ``v`` is echoed; everything else — missing
    version, unsupported version, garbage payloads — answers at the
    server's own :data:`PROTOCOL_VERSION` (the error value in the body
    says why).
    """
    if isinstance(payload, dict):
        version = payload.get("v", PROTOCOL_VERSION)
        if version in SUPPORTED_PROTOCOL_VERSIONS:
            return version
    return PROTOCOL_VERSION


def capabilities() -> dict:
    """What this build speaks, for the health/selfcheck reply.

    ``query_types`` is the full (current-version) set; the per-version
    breakdown lets a client pick the newest mutually supported version
    without probing.
    """
    return {
        "protocol_version": PROTOCOL_VERSION,
        "protocol_versions": list(SUPPORTED_PROTOCOL_VERSIONS),
        "query_types": list(query_types_for(PROTOCOL_VERSION)),
        "query_types_by_version": {
            str(v): list(query_types_for(v))
            for v in SUPPORTED_PROTOCOL_VERSIONS},
        "error_codes": sorted(ERROR_TYPES),
    }


def _decode_into(cls, payload: dict, nested: dict):
    """Instantiate ``cls`` from wire fields (raises on mismatch)."""
    kwargs = {}
    for spec in dataclasses.fields(cls):
        if spec.name in _LOCAL_FIELDS:
            continue
        if spec.name in payload:
            value = payload[spec.name]
        elif spec.default is not dataclasses.MISSING:
            value = spec.default
        elif spec.default_factory is not dataclasses.MISSING:
            value = spec.default_factory()
        else:
            raise KeyError(f"missing field '{spec.name}'")
        if spec.name in nested and value is not None:
            decoder = nested[spec.name]
            value = tuple(decoder(item) for item in value)
        elif isinstance(value, list):
            value = tuple(value)
        kwargs[spec.name] = value
    return cls(**kwargs)


def _decode_edit(item) -> HistoryEdit:
    return _decode_into(HistoryEdit, dict(item), {})


def _decode_candidate(item) -> CandidateQuestion:
    return _decode_into(CandidateQuestion, dict(item), {})


def _decode_influence_item(item) -> InfluenceItem:
    return _decode_into(InfluenceItem, dict(item), {})


def _decode_recommendation_item(item) -> RecommendationItem:
    return _decode_into(RecommendationItem, dict(item), {})


def _decode_recourse_step(item) -> RecourseStep:
    return _decode_into(RecourseStep, dict(item), {})


_QUERY_NESTED = {
    WhatIfQuery: {"edits": _decode_edit},
    RecommendQuery: {"candidates": _decode_candidate},
    RecourseQuery: {"candidates": _decode_candidate},
}

_REPLY_NESTED = {
    ExplainReply: {"influences": _decode_influence_item},
    RecommendReply: {"items": _decode_recommendation_item},
    RecourseReply: {"steps": _decode_recourse_step},
}


def query_from_wire(payload, default_version: Optional[int] = None) -> object:
    """Decode one wire dict into a query — or a :class:`MalformedQuery`.

    Decoding failures are protocol values, not exceptions: the gateway
    forwards whatever this returns, so a garbage payload produces a
    structured 400 instead of a stack trace.  Versions outside
    :data:`SUPPORTED_PROTOCOL_VERSIONS` decode to
    :class:`UnsupportedVersion`; type tags the negotiated version does
    not know decode to :class:`UnknownQueryType`.  ``default_version``
    is what an envelope with no ``v`` is assumed to speak — the batch
    recursion threads the *outer* envelope's version through it, so a
    v1 batch gates its nested queries at v1.
    """
    if not isinstance(payload, dict):
        return MalformedQuery(f"query payload must be an object, got "
                              f"{type(payload).__name__}")
    if default_version is None:
        default_version = PROTOCOL_VERSION
    version = payload.get("v", default_version)
    if version not in SUPPORTED_PROTOCOL_VERSIONS:
        return UnsupportedVersion(
            f"unsupported protocol version {version!r} (this server "
            f"speaks {', '.join(f'v{v}' for v in SUPPORTED_PROTOCOL_VERSIONS)})",
            details={"version": version,
                     "supported": list(SUPPORTED_PROTOCOL_VERSIONS)})
    tag = payload.get("type")
    if tag == BatchEnvelope.TYPE:
        queries = payload.get("queries")
        if not isinstance(queries, list):
            return MalformedQuery("batch envelope needs a 'queries' list")
        request_id = payload.get("request_id")
        if request_id is not None:
            if version < 2:
                return MalformedQuery(
                    "batch field 'request_id' requires protocol version "
                    f">= 2 (envelope is v{version})",
                    details={"version": version, "requires": 2})
            if not isinstance(request_id, str):
                return MalformedQuery(
                    "batch field 'request_id' must be a string",
                    details={"request_id": request_id})
        return BatchEnvelope(
            tuple(query_from_wire(q, default_version=version)
                  for q in queries),
            request_id=request_id)
    cls = QUERY_TYPES.get(tag)
    if cls is None:
        return UnknownQueryType(
            f"unknown query type {tag!r} (expected one of "
            f"{list(query_types_for(version))})",
            details={"type": tag, "version": version})
    if _QUERY_MIN_VERSION.get(tag, 1) > version:
        return UnknownQueryType(
            f"query type {tag!r} requires protocol version "
            f">= {_QUERY_MIN_VERSION[tag]} (envelope is v{version})",
            details={"type": tag, "version": version,
                     "requires": _QUERY_MIN_VERSION[tag]})
    try:
        return _decode_into(cls, payload, _QUERY_NESTED.get(cls, {}))
    except (KeyError, TypeError, ValueError) as error:
        return MalformedQuery(f"cannot decode {tag!r} query: {error}",
                              details={"type": tag})


def wire_json_bytes(payload) -> bytes:
    """Canonical compact JSON bytes for a wire payload.

    One byte-level codec for everything that persists or checksums wire
    dicts (the cluster's durable record journal frames, CRC-checks, and
    snapshots ride on this): keys sorted, no whitespace, UTF-8, NaN/Inf
    rejected — the same logical payload always serializes to the same
    bytes, so a CRC over them is meaningful across processes.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=False, allow_nan=False).encode("utf-8")


def wire_json_loads(data: bytes):
    """Invert :func:`wire_json_bytes` (raises ``ValueError`` on garbage —
    the caller decides whether that means a torn tail or corruption)."""
    try:
        return json.loads(data.decode("utf-8"))
    except UnicodeDecodeError as error:
        raise ValueError(f"payload bytes are not UTF-8: {error}") from None


def reply_from_wire(payload) -> object:
    """Decode one wire dict into a reply or error value.

    Used by the client side; raises ``ValueError`` when the payload is
    not a recognizable protocol reply (a broken server, not a broken
    request).
    """
    if not isinstance(payload, dict):
        raise ValueError(f"reply payload must be an object, got "
                         f"{type(payload).__name__}")
    tag = payload.get("type")
    if tag == ServiceError.TYPE:
        cls = ERROR_TYPES.get(payload.get("code"), InternalError)
        details = payload.get("details", {})
        return cls(payload.get("message", ""),
                   details=tuple(details.items())
                   if isinstance(details, dict) else tuple(details))
    if tag == BatchReply.TYPE:
        replies = payload.get("replies", [])
        return BatchReply(tuple(reply_from_wire(r) for r in replies))
    cls = REPLY_TYPES.get(tag)
    if cls is None:
        raise ValueError(f"unknown reply type {tag!r}")
    try:
        return _decode_into(cls, payload, _REPLY_NESTED.get(cls, {}))
    except (KeyError, TypeError) as error:
        raise ValueError(f"cannot decode {tag!r} reply: {error}") from None
