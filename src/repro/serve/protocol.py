"""Versioned typed query protocol of the serving API (v1).

Every serving capability — scoring, per-response influence explanation,
counterfactual what-if replay, recommendation, event recording — is a
typed *query* dataclass that flows through :class:`repro.serve.Service`
and comes back as a typed *reply* dataclass.  Failures are part of the
protocol: structured :class:`ServiceError` values (one subclass per
failure mode) are **returned, not raised**, so the same taxonomy crosses
the in-process facade and the HTTP gateway unchanged.

Wire format
-----------
``to_wire`` turns any protocol object into a JSON-ready dict tagged with
``{"v": PROTOCOL_VERSION, "type": <tag>}``; ``query_from_wire`` /
``reply_from_wire`` invert it.  Unknown types, version mismatches, and
missing fields decode to :class:`MalformedQuery` instead of raising;
well-shaped queries carrying ill-*typed* values (a string question id,
a fractional ``top_k``) decode structurally and are rejected by the
service's admission validation with the specific taxonomy error —
either way the gateway answers garbage with a structured error, never a
stack trace.  Fields that exist only in-process
(``ExplainReply.computation``) are never serialized.

The full field-by-field reference lives in ``docs/API.md``.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import ClassVar, Optional, Tuple

PROTOCOL_VERSION = 1

#: Registry name queries address when they don't specify one.
DEFAULT_MODEL = "default"

EDIT_OPS = ("flip", "set", "remove")


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ScoreQuery:
    """P(correct) for ``student_id`` answering ``question_id`` next."""

    TYPE: ClassVar[str] = "score"

    student_id: object
    question_id: int
    concept_ids: Tuple[int, ...]
    model: str = DEFAULT_MODEL

    def __post_init__(self):
        object.__setattr__(self, "concept_ids", tuple(self.concept_ids))


@dataclass(frozen=True)
class ExplainQuery:
    """Per-response influences of the history on the latest response."""

    TYPE: ClassVar[str] = "explain"

    student_id: object
    model: str = DEFAULT_MODEL


@dataclass(frozen=True)
class HistoryEdit:
    """One counterfactual edit to a recorded history position.

    ``op`` is one of :data:`EDIT_OPS`: ``"flip"`` toggles the response's
    correctness, ``"set"`` forces it to ``value`` (0/1), ``"remove"``
    deletes the interaction entirely.  ``position`` indexes the
    student's *full* recorded history (0-based, before any edits are
    applied; a batch of edits is applied highest-position-first so the
    indices never shift under each other — which is also why a query
    may edit each position at most once: duplicates are rejected as
    ``invalid_edit``).
    """

    TYPE: ClassVar[str] = "edit"

    position: int
    op: str
    value: Optional[int] = None


@dataclass(frozen=True)
class WhatIfQuery:
    """Counterfactual replay: edit past responses, then re-score a probe.

    Applies ``edits`` to a *copy* of the student's history (the recorded
    history is never mutated) and scores ``question_id`` on the edited
    timeline.  The reply also carries the unedited baseline score of the
    same probe, so the delta is one round-trip.
    """

    TYPE: ClassVar[str] = "what_if"

    student_id: object
    question_id: int
    concept_ids: Tuple[int, ...]
    edits: Tuple[HistoryEdit, ...]
    model: str = DEFAULT_MODEL

    def __post_init__(self):
        object.__setattr__(self, "concept_ids", tuple(self.concept_ids))
        object.__setattr__(self, "edits", tuple(self.edits))


@dataclass(frozen=True)
class CandidateQuestion:
    """One candidate in a :class:`RecommendQuery`."""

    TYPE: ClassVar[str] = "candidate"

    question_id: int
    concept_ids: Tuple[int, ...]

    def __post_init__(self):
        object.__setattr__(self, "concept_ids", tuple(self.concept_ids))


@dataclass(frozen=True)
class RecommendQuery:
    """Rank candidate next questions for a student (Sec. V-C workload)."""

    TYPE: ClassVar[str] = "recommend"

    student_id: object
    candidates: Tuple[CandidateQuestion, ...]
    top_k: int = 5
    target_success: float = 0.6
    value_weight: float = 1.0
    horizon: int = 4
    model: str = DEFAULT_MODEL

    def __post_init__(self):
        object.__setattr__(self, "candidates", tuple(self.candidates))


@dataclass(frozen=True)
class RecordEvent:
    """Append one observed response to a student's history."""

    TYPE: ClassVar[str] = "record"

    student_id: object
    question_id: int
    correct: int
    concept_ids: Tuple[int, ...]
    model: str = DEFAULT_MODEL

    def __post_init__(self):
        object.__setattr__(self, "concept_ids", tuple(self.concept_ids))


@dataclass(frozen=True)
class BatchEnvelope:
    """Many queries admitted as one batch.

    Semantics (documented in ``docs/API.md``): all :class:`RecordEvent`
    entries apply first, in envelope order; every read query then
    observes the same post-record snapshot, and read queries for the
    same model are coalesced into shared forward-stream batches.
    Replies come back in envelope order regardless.
    """

    TYPE: ClassVar[str] = "batch"

    queries: Tuple[object, ...]

    def __post_init__(self):
        object.__setattr__(self, "queries", tuple(self.queries))


QUERY_TYPES = {cls.TYPE: cls for cls in
               (ScoreQuery, ExplainQuery, WhatIfQuery, RecommendQuery,
                RecordEvent)}


# ---------------------------------------------------------------------------
# Replies
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Reply:
    """Marker base for success replies (``ok`` discriminates errors)."""

    ok: ClassVar[bool] = True


@dataclass(frozen=True)
class ScoreReply(Reply):
    TYPE: ClassVar[str] = "score_reply"

    student_id: object
    question_id: int
    score: float
    history_length: int
    model: str = DEFAULT_MODEL


@dataclass(frozen=True)
class InfluenceItem:
    """One history position's influence on the explained target.

    ``position`` is absolute in the student's recorded history;
    ``influence`` is the per-position backward delta (Eq. 12): the
    contribution of keeping this response to the target's predicted
    correctness.
    """

    TYPE: ClassVar[str] = "influence_item"

    position: int
    question_id: int
    correct: int
    influence: float


@dataclass(frozen=True)
class ExplainReply(Reply):
    TYPE: ClassVar[str] = "explain_reply"

    student_id: object
    target_question_id: int
    target_correct: int
    score: float
    influences: Tuple[InfluenceItem, ...]
    model: str = DEFAULT_MODEL
    #: In-process only: the full differentiable
    #: :class:`repro.core.influence.InfluenceComputation` behind the
    #: itemized view.  Never serialized; ``None`` across the wire.
    computation: object = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "influences", tuple(self.influences))


@dataclass(frozen=True)
class WhatIfReply(Reply):
    TYPE: ClassVar[str] = "what_if_reply"

    student_id: object
    question_id: int
    score: float                 # probe score on the edited timeline
    baseline_score: float        # same probe on the recorded timeline
    history_length: int          # length of the edited timeline
    model: str = DEFAULT_MODEL

    @property
    def delta(self) -> float:
        return self.score - self.baseline_score


@dataclass(frozen=True)
class RecommendationItem:
    TYPE: ClassVar[str] = "recommendation_item"

    question_id: int
    concept_ids: Tuple[int, ...]
    success_probability: float
    value: float
    score: float

    def __post_init__(self):
        object.__setattr__(self, "concept_ids", tuple(self.concept_ids))


@dataclass(frozen=True)
class RecommendReply(Reply):
    TYPE: ClassVar[str] = "recommend_reply"

    student_id: object
    items: Tuple[RecommendationItem, ...]
    model: str = DEFAULT_MODEL

    def __post_init__(self):
        object.__setattr__(self, "items", tuple(self.items))


@dataclass(frozen=True)
class RecordReply(Reply):
    TYPE: ClassVar[str] = "record_reply"

    student_id: object
    history_length: int
    model: str = DEFAULT_MODEL


@dataclass(frozen=True)
class BatchReply(Reply):
    TYPE: ClassVar[str] = "batch_reply"

    replies: Tuple[object, ...]

    def __post_init__(self):
        object.__setattr__(self, "replies", tuple(self.replies))


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ServiceError:
    """Structured failure value.

    ``code`` is the stable machine-readable discriminator (one per
    subclass), ``message`` the human-readable diagnosis — which names
    the offending ids, the valid ranges, and the model/student context —
    and ``details`` optional structured fields for programmatic
    handling.  ``http_status`` is the status the gateway maps the error
    to; the wire body is the same either way.
    """

    ok: ClassVar[bool] = False
    TYPE: ClassVar[str] = "error"
    code: ClassVar[str] = "internal_error"
    http_status: ClassVar[int] = 500

    message: str
    details: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "details", tuple(
            (str(k), v) for k, v in
            (self.details.items() if isinstance(self.details, dict)
             else self.details)))

    def detail(self, key: str, default=None):
        for k, v in self.details:
            if k == key:
                return v
        return default


@dataclass(frozen=True)
class UnknownStudent(ServiceError):
    """The query requires a recorded history and the student has none."""

    code: ClassVar[str] = "unknown_student"
    http_status: ClassVar[int] = 404


@dataclass(frozen=True)
class InvalidQuestion(ServiceError):
    """``question_id`` outside the model's checkpoint vocabulary."""

    code: ClassVar[str] = "invalid_question"
    http_status: ClassVar[int] = 400


@dataclass(frozen=True)
class InvalidConcept(ServiceError):
    """A concept id outside the vocabulary, or an empty concept set."""

    code: ClassVar[str] = "invalid_concept"
    http_status: ClassVar[int] = 400


@dataclass(frozen=True)
class EmptyHistory(ServiceError):
    """The query needs more recorded history than the student has."""

    code: ClassVar[str] = "empty_history"
    http_status: ClassVar[int] = 409


@dataclass(frozen=True)
class InvalidEdit(ServiceError):
    """A :class:`HistoryEdit` that cannot apply to the recorded history."""

    code: ClassVar[str] = "invalid_edit"
    http_status: ClassVar[int] = 400


@dataclass(frozen=True)
class ModelNotLoaded(ServiceError):
    """The addressed model name is not (or no longer) in the registry."""

    code: ClassVar[str] = "model_not_loaded"
    http_status: ClassVar[int] = 503


@dataclass(frozen=True)
class MalformedQuery(ServiceError):
    """The payload does not decode to a protocol query."""

    code: ClassVar[str] = "malformed_query"
    http_status: ClassVar[int] = 400


@dataclass(frozen=True)
class ShardUnavailable(ServiceError):
    """The shard owning this query's student cannot be reached.

    Only the cluster router produces this: a worker crash, a draining
    shard, or a transport failure mid-fan-out surfaces as one of these
    values *per affected query slot* — sibling queries on healthy shards
    answer normally, and nothing ever raises across the scatter-gather
    boundary.  A supervisor restart (with journal replay) clears it.
    """

    code: ClassVar[str] = "shard_unavailable"
    http_status: ClassVar[int] = 503


@dataclass(frozen=True)
class NotFound(ServiceError):
    """No such gateway route (distinct from a malformed payload)."""

    code: ClassVar[str] = "not_found"
    http_status: ClassVar[int] = 404


@dataclass(frozen=True)
class InternalError(ServiceError):
    """Unexpected server-side failure (the catch-all; never silent)."""

    code: ClassVar[str] = "internal_error"
    http_status: ClassVar[int] = 500


ERROR_TYPES = {cls.code: cls for cls in
               (UnknownStudent, InvalidQuestion, InvalidConcept,
                EmptyHistory, InvalidEdit, ModelNotLoaded, MalformedQuery,
                ShardUnavailable, NotFound, InternalError)}

REPLY_TYPES = {cls.TYPE: cls for cls in
               (ScoreReply, ExplainReply, WhatIfReply, RecommendReply,
                RecordReply, BatchReply)}


def is_error(obj) -> bool:
    """True for any :class:`ServiceError` value."""
    return isinstance(obj, ServiceError)


# ---------------------------------------------------------------------------
# Wire codec
# ---------------------------------------------------------------------------
#: Fields that exist only in-process and never cross the wire.
_LOCAL_FIELDS = {"computation"}


def _jsonable(value):
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _dataclass_wire(value)
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    if hasattr(value, "item") and callable(value.item) \
            and getattr(value, "shape", None) == ():
        return value.item()   # NumPy scalar -> native Python
    return value


def _dataclass_wire(obj) -> dict:
    payload = {"type": obj.TYPE}
    if is_error(obj):
        payload["code"] = obj.code
    for spec in dataclasses.fields(obj):
        if spec.name in _LOCAL_FIELDS:
            continue
        value = getattr(obj, spec.name)
        if spec.name == "details":
            payload[spec.name] = {k: _jsonable(v) for k, v in value}
        else:
            payload[spec.name] = _jsonable(value)
    return payload


def to_wire(obj) -> dict:
    """JSON-ready dict for any protocol query, reply, or error."""
    payload = _dataclass_wire(obj)
    payload["v"] = PROTOCOL_VERSION
    return payload


def _decode_into(cls, payload: dict, nested: dict):
    """Instantiate ``cls`` from wire fields (raises on mismatch)."""
    kwargs = {}
    for spec in dataclasses.fields(cls):
        if spec.name in _LOCAL_FIELDS:
            continue
        if spec.name in payload:
            value = payload[spec.name]
        elif spec.default is not dataclasses.MISSING:
            value = spec.default
        elif spec.default_factory is not dataclasses.MISSING:
            value = spec.default_factory()
        else:
            raise KeyError(f"missing field '{spec.name}'")
        if spec.name in nested and value is not None:
            decoder = nested[spec.name]
            value = tuple(decoder(item) for item in value)
        elif isinstance(value, list):
            value = tuple(value)
        kwargs[spec.name] = value
    return cls(**kwargs)


def _decode_edit(item) -> HistoryEdit:
    return _decode_into(HistoryEdit, dict(item), {})


def _decode_candidate(item) -> CandidateQuestion:
    return _decode_into(CandidateQuestion, dict(item), {})


def _decode_influence_item(item) -> InfluenceItem:
    return _decode_into(InfluenceItem, dict(item), {})


def _decode_recommendation_item(item) -> RecommendationItem:
    return _decode_into(RecommendationItem, dict(item), {})


_QUERY_NESTED = {
    WhatIfQuery: {"edits": _decode_edit},
    RecommendQuery: {"candidates": _decode_candidate},
}

_REPLY_NESTED = {
    ExplainReply: {"influences": _decode_influence_item},
    RecommendReply: {"items": _decode_recommendation_item},
}


def query_from_wire(payload) -> object:
    """Decode one wire dict into a query — or a :class:`MalformedQuery`.

    Decoding failures are protocol values, not exceptions: the gateway
    forwards whatever this returns, so a garbage payload produces a
    structured 400 instead of a stack trace.  Version mismatches are
    rejected explicitly (v1 is the only protocol this build speaks).
    """
    if not isinstance(payload, dict):
        return MalformedQuery(f"query payload must be an object, got "
                              f"{type(payload).__name__}")
    version = payload.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        return MalformedQuery(f"unsupported protocol version {version!r} "
                              f"(this server speaks v{PROTOCOL_VERSION})",
                              details={"version": version})
    tag = payload.get("type")
    if tag == BatchEnvelope.TYPE:
        queries = payload.get("queries")
        if not isinstance(queries, list):
            return MalformedQuery("batch envelope needs a 'queries' list")
        return BatchEnvelope(tuple(query_from_wire(q) for q in queries))
    cls = QUERY_TYPES.get(tag)
    if cls is None:
        return MalformedQuery(f"unknown query type {tag!r} (expected one "
                              f"of {sorted(QUERY_TYPES)})",
                              details={"type": tag})
    try:
        return _decode_into(cls, payload, _QUERY_NESTED.get(cls, {}))
    except (KeyError, TypeError, ValueError) as error:
        return MalformedQuery(f"cannot decode {tag!r} query: {error}",
                              details={"type": tag})


def wire_json_bytes(payload) -> bytes:
    """Canonical compact JSON bytes for a wire payload.

    One byte-level codec for everything that persists or checksums wire
    dicts (the cluster's durable record journal frames, CRC-checks, and
    snapshots ride on this): keys sorted, no whitespace, UTF-8, NaN/Inf
    rejected — the same logical payload always serializes to the same
    bytes, so a CRC over them is meaningful across processes.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=False, allow_nan=False).encode("utf-8")


def wire_json_loads(data: bytes):
    """Invert :func:`wire_json_bytes` (raises ``ValueError`` on garbage —
    the caller decides whether that means a torn tail or corruption)."""
    try:
        return json.loads(data.decode("utf-8"))
    except UnicodeDecodeError as error:
        raise ValueError(f"payload bytes are not UTF-8: {error}") from None


def reply_from_wire(payload) -> object:
    """Decode one wire dict into a reply or error value.

    Used by the client side; raises ``ValueError`` when the payload is
    not a recognizable protocol reply (a broken server, not a broken
    request).
    """
    if not isinstance(payload, dict):
        raise ValueError(f"reply payload must be an object, got "
                         f"{type(payload).__name__}")
    tag = payload.get("type")
    if tag == ServiceError.TYPE:
        cls = ERROR_TYPES.get(payload.get("code"), InternalError)
        details = payload.get("details", {})
        return cls(payload.get("message", ""),
                   details=tuple(details.items())
                   if isinstance(details, dict) else tuple(details))
    if tag == BatchReply.TYPE:
        replies = payload.get("replies", [])
        return BatchReply(tuple(reply_from_wire(r) for r in replies))
    cls = REPLY_TYPES.get(tag)
    if cls is None:
        raise ValueError(f"unknown reply type {tag!r}")
    try:
        return _decode_into(cls, payload, _REPLY_NESTED.get(cls, {}))
    except (KeyError, TypeError) as error:
        raise ValueError(f"cannot decode {tag!r} reply: {error}") from None
