"""Per-student interaction caches for the inference engine.

Serving a score request needs the student's full history as dense arrays.
Rebuilding :class:`~repro.data.StudentSequence` objects and re-collating
them per request costs O(history) Python-loop work every time; instead the
store keeps each student's log as geometrically-grown NumPy arrays, so

* appending one new response is an O(1) amortized array write, and
* assembling a request batch is one row-slice memcpy per student — no
  per-interaction Python loops anywhere on the request path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.data import Batch, PAD_ID, StudentSequence


class StudentHistory:
    """One student's growable interaction log."""

    __slots__ = ("student_id", "length", "_questions", "_responses",
                 "_concepts", "_concept_counts")

    INITIAL_CAPACITY = 8

    def __init__(self, student_id):
        self.student_id = student_id
        self.length = 0
        capacity = self.INITIAL_CAPACITY
        self._questions = np.zeros(capacity, dtype=np.int64)
        self._responses = np.zeros(capacity, dtype=np.int64)
        self._concepts = np.full((capacity, 1), PAD_ID, dtype=np.int64)
        self._concept_counts = np.ones(capacity, dtype=np.int64)

    @property
    def concept_width(self) -> int:
        return self._concepts.shape[1]

    def _grow(self, min_capacity: int, min_width: int) -> None:
        capacity = len(self._questions)
        new_capacity = max(capacity, min_capacity)
        if min_capacity > capacity:
            new_capacity = max(2 * capacity, min_capacity)
        width = self.concept_width
        new_width = max(width, min_width)
        if new_capacity == capacity and new_width == width:
            return
        for name in ("_questions", "_responses", "_concept_counts"):
            old = getattr(self, name)
            fresh = np.zeros(new_capacity, dtype=np.int64)
            if name == "_concept_counts":
                fresh[:] = 1
            fresh[:self.length] = old[:self.length]
            setattr(self, name, fresh)
        fresh = np.full((new_capacity, new_width), PAD_ID, dtype=np.int64)
        fresh[:self.length, :width] = self._concepts[:self.length]
        self._concepts = fresh

    def append(self, question_id: int, correct: int,
               concept_ids: Sequence[int]) -> None:
        if question_id <= PAD_ID:
            raise ValueError(f"question_id must be positive, got {question_id}")
        if correct not in (0, 1):
            raise ValueError(f"correct must be 0 or 1, got {correct}")
        concept_ids = tuple(concept_ids)
        if not concept_ids or any(c <= PAD_ID for c in concept_ids):
            raise ValueError("concept ids must be a non-empty positive tuple")
        self._grow(self.length + 1, len(concept_ids))
        row = self.length
        self._questions[row] = question_id
        self._responses[row] = correct
        self._concepts[row, :len(concept_ids)] = concept_ids
        self._concept_counts[row] = len(concept_ids)
        self.length += 1

    def view(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(questions, responses, concepts, concept_counts) live views."""
        n = self.length
        return (self._questions[:n], self._responses[:n],
                self._concepts[:n], self._concept_counts[:n])

    def suffix(self, start: int) -> "HistoryWindow":
        """Read-only view of the interactions from position ``start`` on.

        The sliding-window serving mode scores students over the suffix
        that fits their window; a view (not a copy) keeps window
        assembly O(window) memcpy work with no per-step loops.
        """
        if not 0 <= start <= self.length:
            raise ValueError(f"suffix start {start} outside history of "
                             f"length {self.length}")
        return HistoryWindow(self, start)

    def to_sequence(self) -> StudentSequence:
        """Materialize as a :class:`StudentSequence` (interop/debugging)."""
        from repro.data import Interaction
        sequence = StudentSequence(self.student_id)
        for i in range(self.length):
            ids = tuple(int(c) for c in
                        self._concepts[i, :self._concept_counts[i]])
            sequence.append(Interaction(int(self._questions[i]),
                                        int(self._responses[i]), ids, i + 1))
        return sequence


class HistoryWindow:
    """Suffix view over a :class:`StudentHistory` (same read interface).

    Duck-types the subset of :class:`StudentHistory` that batch assembly
    and the stream-cache warm-up consume (``length``, ``concept_width``,
    ``view()``), so windowed serving can pass truncated histories through
    the exact code paths full histories take.
    """

    __slots__ = ("student_id", "start", "length", "_history")

    def __init__(self, history: StudentHistory, start: int):
        self.student_id = history.student_id
        self.start = start
        self.length = history.length - start
        self._history = history

    @property
    def concept_width(self) -> int:
        return self._history.concept_width

    def view(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Live array views over the suffix (no copies)."""
        questions, responses, concepts, counts = self._history.view()
        start = self.start
        return (questions[start:], responses[start:], concepts[start:],
                counts[start:])


class ArrayHistory:
    """A detached history snapshot over explicit arrays.

    The what-if replay path edits a *copy* of a student's recorded
    arrays (flip/set/remove a past response) and scores the edited
    timeline without ever touching the stored history.  Duck-types the
    same read interface as :class:`StudentHistory` (``length``,
    ``concept_width``, ``view()``, ``suffix()``), so edited timelines
    flow through batch assembly and stream-cache warm-up unchanged.
    """

    __slots__ = ("student_id", "length", "_questions", "_responses",
                 "_concepts", "_concept_counts")

    def __init__(self, student_id, questions: np.ndarray,
                 responses: np.ndarray, concepts: np.ndarray,
                 concept_counts: np.ndarray):
        lengths = {len(questions), len(responses), len(concepts),
                   len(concept_counts)}
        if len(lengths) != 1:
            raise ValueError("history arrays must share one length")
        self.student_id = student_id
        self.length = len(questions)
        self._questions = np.asarray(questions, dtype=np.int64)
        self._responses = np.asarray(responses, dtype=np.int64)
        self._concepts = np.asarray(concepts, dtype=np.int64)
        self._concept_counts = np.asarray(concept_counts, dtype=np.int64)

    @property
    def concept_width(self) -> int:
        return self._concepts.shape[1] if self.length else 1

    def view(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        return (self._questions, self._responses, self._concepts,
                self._concept_counts)

    def suffix(self, start: int) -> HistoryWindow:
        if not 0 <= start <= self.length:
            raise ValueError(f"suffix start {start} outside history of "
                             f"length {self.length}")
        return HistoryWindow(self, start)


def assemble_padded(histories: Sequence,
                    probes: Sequence[Optional[Tuple[int, Sequence[int]]]]
                    ) -> Tuple[Batch, np.ndarray]:
    """Pad history objects (plus optional probes) into one batch.

    The single padded-batch assembler behind every raw (non-stream-cache)
    scoring path: ``histories`` is one history-reading object per output
    row — :class:`StudentHistory`, :class:`HistoryWindow`, or a detached
    :class:`ArrayHistory` — and ``probes[k]``, when given, appends a
    virtual ``(question_id, concept_ids)`` interaction to row ``k``.
    Returns the batch plus per-row target columns: the probe position,
    or the last real position when no probe is given (explain rows).

    Raises ``ValueError`` on empty inputs, a probe-count mismatch, or a
    row left with no history and no probe.
    """
    histories = list(histories)
    if not histories:
        raise ValueError("assemble needs at least one history")
    if len(probes) != len(histories):
        raise ValueError("one probe slot per history required")
    lengths = np.array([h.length + (1 if probe is not None else 0)
                        for h, probe in zip(histories, probes)],
                       dtype=np.int64)
    if np.any(lengths == 0):
        raise ValueError("cannot score a student with no history and "
                         "no probe")
    width = max(max(h.concept_width for h in histories),
                max((len(p[1]) for p in probes if p is not None),
                    default=1))
    rows = len(histories)
    length = int(lengths.max())
    questions = np.full((rows, length), PAD_ID, dtype=np.int64)
    responses = np.zeros((rows, length), dtype=np.int64)
    concepts = np.full((rows, length, width), PAD_ID, dtype=np.int64)
    counts = np.ones((rows, length), dtype=np.int64)
    mask = np.zeros((rows, length), dtype=bool)
    for row, (history, probe) in enumerate(zip(histories, probes)):
        q, r, c, k = history.view()
        n = history.length
        questions[row, :n] = q
        responses[row, :n] = r
        concepts[row, :n, :history.concept_width] = c
        counts[row, :n] = k
        mask[row, :lengths[row]] = True
        if probe is not None:
            probe_q, probe_concepts = probe
            probe_concepts = tuple(probe_concepts)
            questions[row, n] = probe_q
            concepts[row, n, :len(probe_concepts)] = probe_concepts
            counts[row, n] = len(probe_concepts)
    batch = Batch(questions, responses, concepts, counts, mask)
    return batch, lengths - 1


class HistoryStore:
    """All students' caches plus vectorized request-batch assembly."""

    def __init__(self):
        self._students: Dict[object, StudentHistory] = {}

    def __len__(self) -> int:
        return len(self._students)

    def __contains__(self, student_id) -> bool:
        return student_id in self._students

    def peek(self, student_id) -> Optional[StudentHistory]:
        """Non-creating lookup: None for unknown students."""
        return self._students.get(student_id)

    def get(self, student_id) -> StudentHistory:
        """Lookup that registers an empty history for unknown students.

        Write paths only — read/score paths use :meth:`peek` (plus a
        transient empty history) so probing a misspelled id doesn't
        pollute the store.
        """
        history = self._students.get(student_id)
        if history is None:
            history = StudentHistory(student_id)
            self._students[student_id] = history
        return history

    def record(self, student_id, question_id: int, correct: int,
               concept_ids: Sequence[int]) -> StudentHistory:
        history = self.get(student_id)
        history.append(question_id, correct, concept_ids)
        return history

    def load_sequence(self, sequence: StudentSequence,
                      student_id=None) -> StudentHistory:
        """Bulk-load an existing sequence (e.g. an offline training log)."""
        history = self.get(sequence.student_id if student_id is None
                           else student_id)
        for interaction in sequence:
            history.append(interaction.question_id, interaction.correct,
                           interaction.concept_ids)
        return history

    def assemble(self, student_ids: Iterable,
                 probes: Optional[List[Optional[Tuple[int, Sequence[int]]]]]
                 = None,
                 starts: Optional[Sequence[int]] = None
                 ) -> Tuple[Batch, np.ndarray]:
        """Build a padded batch of the named students' histories.

        Parameters
        ----------
        student_ids:
            One student per output row (repeats allowed).
        probes:
            ``probes[k]`` — an optional ``(question_id, concept_ids)``
            pair — appends a *virtual* next interaction to row ``k``
            (its response value is irrelevant: the counterfactual
            variants overwrite the target response).
        starts:
            Optional per-row history start positions (sliding-window
            serving): row ``k`` uses only interactions from
            ``starts[k]`` on, re-based to column 0 — identical to
            assembling a history truncated to that suffix.

        Returns
        -------
        (Batch, np.ndarray)
            The padded batch and per-row target columns — the probe
            position, or the last real position when no probe is given.

        Raises
        ------
        ValueError
            On empty ``student_ids``, probe/start count mismatches, or a
            row left with no history and no probe.
        """
        ids = list(student_ids)
        if not ids:
            raise ValueError("assemble needs at least one student")
        if probes is None:
            probes = [None] * len(ids)
        if len(probes) != len(ids):
            raise ValueError("one probe slot per student required")
        # Unknown students get a transient empty history: scoring a
        # cold-start probe is legitimate, but reading must not register
        # junk entries in the store.
        histories = [self.peek(student_id) or StudentHistory(student_id)
                     for student_id in ids]
        if starts is not None:
            if len(starts) != len(ids):
                raise ValueError("one window start per student required")
            histories = [history if start == 0 else history.suffix(start)
                         for history, start in zip(histories, starts)]
        return assemble_padded(histories, probes)
