"""Optimizers for the NumPy substrate (the paper tunes with Adam)."""

from .adam import Adam
from .clip import clip_grad_norm
from .optimizer import Optimizer
from .sgd import SGD

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]
