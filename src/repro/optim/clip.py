"""Global-norm gradient clipping (stabilizes LSTM training)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.tensor import Tensor


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging divergence).
    """
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad *= scale
    return total
