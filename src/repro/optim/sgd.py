"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.tensor import Tensor

from .optimizer import Optimizer


class SGD(Optimizer):
    def __init__(self, params: Iterable[Tensor], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr, weight_decay)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad
