"""Adam optimizer (Kingma & Ba, 2014) — the paper's optimizer of record."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.tensor import Tensor

from .optimizer import Optimizer


class Adam(Optimizer):
    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr, weight_decay)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step += 1
        correction1 = 1.0 - self.beta1 ** self._step
        correction2 = 1.0 - self.beta2 ** self._step
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / correction1
            v_hat = v / correction2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
