"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable, List

from repro.tensor import Tensor


class Optimizer:
    """Holds a parameter list and applies gradient updates.

    ``weight_decay`` implements the paper's "l2 normalization in the loss
    function" as decoupled L2 on the gradients (equivalent for SGD; the
    conventional coupled form for Adam, matching common KT codebases).
    """

    def __init__(self, params: Iterable[Tensor], lr: float,
                 weight_decay: float = 0.0):
        self.params: List[Tensor] = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError
