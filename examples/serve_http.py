"""Serving RCKT over HTTP: the typed API v1 end to end.

Boots the full wire stack in one process and drives it like an external
caller would:

1. Train a small RCKT-DKT and build a :class:`repro.serve.Service`.
2. Start the HTTP/JSON gateway on an ephemeral port (the same stack
   ``python -m repro.serve --checkpoint ...`` runs standalone).
3. Round-trip typed queries through :class:`repro.serve.ServiceClient`:
   record events, score a probe, explain the latest response, and replay
   a counterfactual what-if (flip an early answer) — then verify every
   wire score against the in-process engine.

Exits non-zero if any round-trip fails or drifts, which is exactly what
the CI gateway-smoke lane checks.

Usage::

    python examples/serve_http.py
"""

import sys

from repro.core import RCKT, RCKTConfig, fit_rckt
from repro.data import make_assist09, train_test_split
from repro.serve import (BatchEnvelope, ExplainQuery, HistoryEdit,
                         InferenceEngine, RecordEvent, ScoreQuery, Service,
                         ServiceClient, WhatIfQuery, start_http_thread)

PARITY = 1e-10


def main() -> int:
    print("1) training a small RCKT-DKT ...")
    dataset = make_assist09(scale=0.1, seed=7)
    fold = train_test_split(dataset, seed=0)
    config = RCKTConfig(encoder="dkt", dim=16, layers=1, epochs=2,
                        batch_size=32, lr=2e-3, seed=0)
    model = RCKT(dataset.num_questions, dataset.num_concepts, config)
    fit_rckt(model, fold.train, fold.validation, eval_stride=4)

    print("2) starting the HTTP gateway ...")
    engine = InferenceEngine(model)
    engine.load_dataset(fold.test)
    service = Service(engine)
    server, _ = start_http_thread(service)
    client = ServiceClient(f"http://127.0.0.1:{server.server_port}")
    health = client.health()
    print(f"   http://127.0.0.1:{server.server_port} -> {health}")
    failures = 0

    try:
        student = sorted({s.student_id for s in fold.test})[0]
        question, concepts = 17, (3,)

        print("3) score + record round-trip ...")
        replies = client.batch(BatchEnvelope((
            RecordEvent(student, question, 1, concepts),
            ScoreQuery(student, question, concepts),
        )))
        wire_score = replies[1].score
        direct = engine.score(student, question, concepts)
        drift = abs(wire_score - direct)
        print(f"   wire {wire_score:.6f} vs in-process {direct:.6f} "
              f"(|diff| {drift:.2e})")
        failures += drift > PARITY

        print("4) explain round-trip (per-response influences) ...")
        explain = client.query(ExplainQuery(student))
        if explain.ok:
            top = max(explain.influences,
                      key=lambda item: abs(item.influence))
            print(f"   target q{explain.target_question_id} "
                  f"(score {explain.score:.4f}); most influential: "
                  f"position {top.position} q{top.question_id} "
                  f"({'correct' if top.correct else 'incorrect'}, "
                  f"Δ {top.influence:+.4f})")
        else:
            print(f"   FAILED: {explain}")
            failures += 1

        print("5) what-if round-trip (flip the first response) ...")
        what_if = client.query(WhatIfQuery(student, question, concepts,
                                           (HistoryEdit(0, "flip"),)))
        if what_if.ok:
            print(f"   baseline {what_if.baseline_score:.4f} -> edited "
                  f"{what_if.score:.4f} (Δ {what_if.delta:+.4f})")
        else:
            print(f"   FAILED: {what_if}")
            failures += 1

        print("6) structured errors are values, with HTTP statuses ...")
        error = client.query(ScoreQuery(student, 10 ** 6, concepts))
        print(f"   {error.code} (HTTP {error.http_status}): "
              f"{error.message}")
        failures += error.code != "invalid_question"
    finally:
        server.shutdown()
        service.close()

    if failures:
        print(f"serve_http: {failures} round-trip failure(s)")
        return 1
    print("serve_http: all round-trips verified")
    return 0


if __name__ == "__main__":
    sys.exit(main())
