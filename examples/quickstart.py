"""Quickstart: train RCKT on a synthetic ASSIST09-style dataset.

Runs in about a minute on a laptop CPU:

1. Generate an ASSISTments-like corpus with the IRT student simulator.
2. Train RCKT with the bidirectional DKT (BiLSTM) encoder.
3. Evaluate AUC/ACC on held-out students.
4. Print a counterfactual explanation for one prediction.

Usage::

    python examples/quickstart.py
"""

from repro.core import RCKT, RCKTConfig, evaluate_rckt, fit_rckt
from repro.data import make_assist09, train_test_split
from repro.interpret import explain_prediction


def main() -> None:
    print("1) generating a synthetic ASSIST09-style dataset ...")
    dataset = make_assist09(scale=0.2, seed=7)
    fold = train_test_split(dataset, seed=0)
    print(f"   {len(dataset)} subsequences, {dataset.num_responses} responses, "
          f"{dataset.correct_rate:.0%} correct")

    print("2) training RCKT-DKT ...")
    config = RCKTConfig(encoder="dkt", dim=16, layers=1, epochs=6,
                        batch_size=32, lr=2e-3, lambda_balance=0.1, seed=0)
    model = RCKT(dataset.num_questions, dataset.num_concepts, config)
    result = fit_rckt(model, fold.train, fold.validation, eval_stride=3)
    print(f"   best validation AUC {result.best_val_auc:.4f} "
          f"(epoch {result.best_epoch})")

    print("3) evaluating on held-out students ...")
    metrics = evaluate_rckt(model, fold.test, stride=2)
    print(f"   test AUC {metrics['auc']:.4f}  ACC {metrics['acc']:.4f}")

    print("4) explaining one prediction via response influences ...")
    sequence = next(s for s in fold.test if len(s) >= 8)
    explanation = explain_prediction(model, sequence[:8])
    print(explanation.render())


if __name__ == "__main__":
    main()
