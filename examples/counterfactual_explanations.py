"""Counterfactual "what-if" analysis of student responses.

The scenario the paper's introduction motivates (Fig. 1): a tutor wants to
know *which past answers* drive the prediction that a student will miss the
next question.  This example:

1. Trains RCKT on an Eedi-style multiple-choice math corpus.
2. Picks a student and shows the per-response influence decomposition.
3. Cross-checks the fast approximated influences against the exact
   forward counterfactuals (flip each past response, re-predict) —
   Sec. IV-C4's equivalence in action.
4. Shows how the prediction flips as influential responses accumulate.

Usage::

    python examples/counterfactual_explanations.py
"""

import numpy as np

from repro.core import RCKT, RCKTConfig, fit_rckt
from repro.data import make_eedi, train_test_split
from repro.interpret import explain_prediction, influence_bars


def main() -> None:
    print("training RCKT-AKT on an Eedi-style corpus ...")
    dataset = make_eedi(scale=0.2, seed=11)
    fold = train_test_split(dataset, seed=0)
    config = RCKTConfig(encoder="akt", dim=16, layers=1, epochs=6,
                        batch_size=32, lr=1e-3, lambda_balance=0.1, seed=0)
    model = RCKT(dataset.num_questions, dataset.num_concepts, config)
    fit_rckt(model, fold.train, fold.validation, eval_stride=3)

    student = next(s for s in fold.test if len(s) >= 10)
    window = student[:10]

    print("\n--- approximated response influences (deployed path) ---")
    explanation = explain_prediction(model, window)
    print(explanation.render())

    print("\n--- exact forward counterfactuals (pre-approximation path) ---")
    exact = model.exact_influences(window)
    history = len(window) - 1
    print(influence_bars(exact.deltas[:history],
                         [i.correct for i in window[:history]],
                         title="delta per flipped response"))
    print(f"exact totals: Δ+ {exact.delta_plus:.3f}  Δ- {exact.delta_minus:.3f}"
          f"  -> {'correct' if exact.decision() else 'incorrect'}")

    approx_rank = np.argsort([-abs(r.influence) for r in explanation.rows])
    exact_rank = np.argsort(-np.abs(exact.deltas[:history]))
    overlap = len(set(approx_rank[:3]) & set(exact_rank[:3]))
    print(f"\ntop-3 most influential responses agree on {overlap}/3 positions "
          f"between the exact and approximated paths")

    print("\n--- prediction as evidence accumulates ---")
    for steps in range(2, len(window) + 1):
        partial = explain_prediction(model, window[:steps])
        verdict = "correct" if partial.prediction else "incorrect"
        print(f"after {steps - 1:2d} responses: score {partial.score:.3f} "
              f"-> {verdict}")


if __name__ == "__main__":
    main()
