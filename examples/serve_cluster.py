"""Sharded serving end to end: 2 worker processes, one router, no drift.

Boots the full ``repro.cluster`` stack the way an operator would and
drives it like an external caller, asserting the cluster's core
contract at every step — replies **bit-identical** to a single
in-process :class:`repro.serve.Service`:

1. Train a small RCKT-DKT and save it as the *blue* checkpoint.
2. Boot a 2-shard cluster: a :class:`repro.cluster.Supervisor` spawns
   two worker processes (each the stock HTTP serving gateway), and a
   :class:`repro.cluster.ScatterGatherRouter` becomes the single
   public endpoint.
3. Stream records and a mixed batch envelope (score + explain +
   what-if) through the router's HTTP face and verify wire replies
   against the in-process reference.
4. Hard-kill worker 0; the supervisor restarts it on the same port and
   replays the record journal — identity must survive the crash.
5. Train one more epoch (the *green* checkpoint) and roll it out warm
   (blue/green with pre-built stream caches); identity must survive
   the swap, on the new weights.

Exits non-zero on any mismatching reply, which is what the CI
cluster-smoke lane checks.

Usage::

    python examples/serve_cluster.py
"""

import sys
import tempfile
from pathlib import Path

from repro.core import RCKT, RCKTConfig, fit_rckt
from repro.cluster import (RecordJournal, ScatterGatherRouter, Supervisor,
                           WorkerSpec, free_port, start_router_thread)
from repro.data import make_assist09, train_test_split
from repro.serve import (DEFAULT_MODEL, ExplainQuery, HistoryEdit,
                         InferenceEngine, RecordEvent, ScoreQuery, Service,
                         ServiceClient, WhatIfQuery, to_wire)


def check(label, cluster_replies, local_replies) -> int:
    mismatches = sum(to_wire(a) != to_wire(b)
                     for a, b in zip(cluster_replies, local_replies))
    print(f"   {label}: {len(cluster_replies)} replies, "
          f"{mismatches} mismatches vs in-process Service")
    return mismatches


def main() -> int:
    print("1) training a small RCKT-DKT (blue checkpoint) ...")
    dataset = make_assist09(scale=0.2, seed=11)
    fold = train_test_split(dataset, seed=0)
    config = RCKTConfig(encoder="dkt", dim=16, layers=1, epochs=1,
                        batch_size=32, lr=2e-3, seed=0)
    model = RCKT(dataset.num_questions, dataset.num_concepts, config)
    fit_rckt(model, fold.train, fold.validation, eval_stride=4)

    failures = 0
    with tempfile.TemporaryDirectory(prefix="rckt-cluster-demo-") as tmp:
        blue = Path(tmp) / "blue.npz"
        InferenceEngine(model).save(blue)

        print("2) booting a 2-shard cluster ...")
        specs = [WorkerSpec(shard_id=shard, port=free_port(),
                            checkpoints=[(DEFAULT_MODEL, str(blue))],
                            log_path=f"{tmp}/worker{shard}.log")
                 for shard in range(2)]
        journal = RecordJournal()
        supervisor = Supervisor(specs, journal=journal)
        supervisor.start()
        router = ScatterGatherRouter([spec.base_url for spec in specs],
                                     journal=journal)
        supervisor.attach_router(router)
        server, _ = start_router_thread(router)
        client = ServiceClient(f"http://127.0.0.1:{server.server_port}")
        local = Service.from_checkpoint(blue)
        print(f"   router on http://127.0.0.1:{server.server_port} -> "
              f"{client.health()['status']}")

        try:
            students = sorted({s.student_id for s in fold.test})[:8]
            records = [RecordEvent(student, 1 + (3 * k) % 20, k % 2,
                                   (1 + k % 5,))
                       for k in range(4) for student in students]
            mixed = []
            for k, student in enumerate(students):
                question = 1 + (7 * k) % 20
                mixed.append(ScoreQuery(student, question, (1 + k % 5,)))
                mixed.append(ExplainQuery(student))
                mixed.append(WhatIfQuery(student, question, (1 + k % 5,),
                                         (HistoryEdit(0, "flip"),)))

            print("3) records + mixed envelope over the wire ...")
            failures += check("records", client.batch(records),
                              local.execute_batch(records))
            failures += check("mixed envelope", client.batch(mixed),
                              local.execute_batch(mixed))

            print("4) hard-killing worker 0 (restart + journal replay)")
            supervisor.workers[0].process.kill()
            supervisor.workers[0].process.wait()
            supervisor.check_once()
            failures += check("post-crash envelope", client.batch(mixed),
                              local.execute_batch(mixed))

            print("5) warm blue/green rollout (one more training epoch)")
            fit_rckt(model, fold.train, fold.validation, eval_stride=4)
            green = Path(tmp) / "green.npz"
            InferenceEngine(model).save(green)
            results = client.rollout(green, warm_top=16)
            if not isinstance(results, dict) \
                    or results.get("status") != "ok":
                print(f"   rollout failed: {results}")
                failures += 1
            local.rollout(green, warm_top=16)
            failures += check("post-rollout envelope",
                              client.batch(mixed),
                              local.execute_batch(mixed))
        finally:
            client.close()
            server.shutdown()
            server.server_close()
            supervisor.stop()
            router.close()
            local.close()

    if failures:
        print(f"FAILED: {failures} mismatching replies")
        return 1
    print("ok: 2-shard cluster served bit-identically through a crash "
          "and a warm rollout")
    return 0


if __name__ == "__main__":
    sys.exit(main())
