"""Concept proficiency tracing — the paper's Fig. 5 scenario.

An instructor wants a per-concept learning curve for a student, with each
point *explained* by the responses that produced it.  RCKT probes a
"virtual question" per concept (the average embedding of that concept's
questions, Eq. 30) and decomposes every probe into response influences.

Usage::

    python examples/proficiency_tracing.py
"""

from collections import Counter

from repro.core import RCKT, RCKTConfig, fit_rckt
from repro.data import make_assist12, train_test_split
from repro.interpret import (influence_bars, line_chart, related_questions,
                             trace_proficiency)


def main() -> None:
    print("training RCKT-DKT on an ASSIST12-style corpus ...")
    dataset = make_assist12(scale=0.2, seed=3)
    fold = train_test_split(dataset, seed=0)
    config = RCKTConfig(encoder="dkt", dim=16, layers=1, epochs=6,
                        batch_size=32, lr=1e-3, lambda_balance=0.1, seed=0)
    model = RCKT(dataset.num_questions, dataset.num_concepts, config)
    fit_rckt(model, fold.train, fold.validation, eval_stride=3)

    student = max(fold.test, key=len)[:16]
    concept_counts = Counter(cid for i in student for cid in i.concept_ids)
    concepts = [cid for cid, _ in concept_counts.most_common(3)]
    print(f"\nstudent {student.student_id}: {len(student)} responses, "
          f"tracing concepts {concepts}")

    series = {}
    traces = {}
    for cid in concepts:
        pool = related_questions(dataset, cid)
        trace = trace_proficiency(model, student, cid, pool)
        traces[cid] = trace
        series[f"concept {cid}"] = trace.proficiencies
        print(f"  concept {cid}: start {trace.proficiencies[0]:.3f} "
              f"-> final {trace.final_proficiency:.3f} "
              f"({concept_counts[cid]} practiced)")

    print("\n" + line_chart(series, height=10,
                            title="proficiency after each response"))

    best = concepts[0]
    print("\nresponse influences on the final proficiency of "
          f"concept {best} (Fig. 5 bottom panel):")
    print(influence_bars(traces[best].final_influences,
                         [i.correct for i in student]))
    print("\nreading guide: [+] rows are correct responses (push proficiency "
          "up), [-] rows incorrect; bar length = counterfactual influence.")


if __name__ == "__main__":
    main()
