"""Question recommendation — the teaching application the paper motivates.

"These insights can aid educators in improving their teaching activities,
such as question recommendation and question bank construction" (Sec. I).
This example trains RCKT, then ranks a pool of candidate next questions for
one student by (a) predicted success probability near a productive-struggle
target and (b) counterfactual *question value*: how much the answer to the
candidate would tell us about the student.

Usage::

    python examples/question_recommendation.py
"""

from collections import Counter

from repro.core import RCKT, RCKTConfig, fit_rckt
from repro.data import Interaction, make_assist09, train_test_split
from repro.interpret import recommend_questions


def main() -> None:
    print("training RCKT-DKT on an ASSIST09-style corpus ...")
    dataset = make_assist09(scale=0.2, seed=5)
    fold = train_test_split(dataset, seed=0)
    config = RCKTConfig(encoder="dkt", dim=16, layers=1, epochs=5,
                        batch_size=32, lr=2e-3, seed=0)
    model = RCKT(dataset.num_questions, dataset.num_concepts, config)
    fit_rckt(model, fold.train, fold.validation, eval_stride=3)

    student = next(s for s in fold.test if len(s) >= 10)[:10]
    seen = {i.question_id for i in student}
    print(f"\nstudent {student.student_id}: {len(student)} responses, "
          f"{sum(student.responses)} correct")

    # Candidate pool: unseen questions covering the student's concepts.
    concept_counts = Counter(c for i in student for c in i.concept_ids)
    candidates = []
    for sequence in fold.train:
        for interaction in sequence:
            if interaction.question_id in seen:
                continue
            if not (set(interaction.concept_ids) & set(concept_counts)):
                continue
            seen.add(interaction.question_id)
            candidates.append(Interaction(interaction.question_id, 1,
                                          interaction.concept_ids))
            if len(candidates) >= 12:
                break
        if len(candidates) >= 12:
            break

    print(f"ranking {len(candidates)} candidate questions ...\n")
    recommendations = recommend_questions(model, student, candidates,
                                          top_k=5)
    print("top recommendations (productive difficulty + information value):")
    for rank, rec in enumerate(recommendations, start=1):
        print(f"  {rank}. {rec.describe()}  concepts={rec.concept_ids}")

    print("\ninterpretation: p(correct) near 0.6 = productive struggle; "
          "value = how far the two counterfactual futures (answered right "
          "vs wrong) diverge on re-probes of recent material.")


if __name__ == "__main__":
    main()
