"""Serving RCKT: the multi-student inference engine.

Walks the full ``repro.serve`` lifecycle on a synthetic corpus:

1. Train a small RCKT model.
2. Build an :class:`~repro.serve.InferenceEngine`, warm its per-student
   history caches, and checkpoint it.
3. Serve a mixed batch of "how would this student do on question q?"
   probes three ways — synchronous, micro-batched via submit/flush, and
   after recording fresh responses (incremental re-scoring).
4. Rank candidate next questions with the batched recommender.

Usage::

    python examples/serving_engine.py
"""

import tempfile
from pathlib import Path

from repro.core import RCKT, RCKTConfig, fit_rckt
from repro.data import make_assist09, train_test_split
from repro.serve import InferenceEngine, ScoreRequest


def main() -> None:
    print("1) training a small RCKT-DKT ...")
    dataset = make_assist09(scale=0.15, seed=7)
    fold = train_test_split(dataset, seed=0)
    config = RCKTConfig(encoder="dkt", dim=16, layers=1, epochs=4,
                        batch_size=32, lr=2e-3, seed=0)
    model = RCKT(dataset.num_questions, dataset.num_concepts, config)
    fit_rckt(model, fold.train, fold.validation, eval_stride=4)

    print("2) building the serving engine + checkpoint round-trip ...")
    engine = InferenceEngine(model, max_batch=16)
    engine.load_dataset(fold.test)
    path = Path(tempfile.mkdtemp()) / "rckt-engine.npz"
    engine.save(path)
    engine = InferenceEngine.from_checkpoint(path, max_batch=16)
    engine.load_dataset(fold.test)
    print(f"   checkpoint: {path.name}, "
          f"{len(engine.students)} students cached")

    students = sorted({s.student_id for s in fold.test})[:6]
    question = 17
    concepts = (3,)

    print("3) serving scores ...")
    sync = engine.score(students[0], question, concepts)
    print(f"   synchronous: student {students[0]} on q{question} "
          f"-> {sync:.4f}")

    handles = [engine.submit(ScoreRequest(s, question, concepts))
               for s in students]
    engine.flush()
    print("   micro-batched: " +
          ", ".join(f"{h.request.student_id}:{h.value:.4f}"
                    for h in handles))

    engine.record(students[0], question, 1, concepts)
    engine.record(students[0], question, 1, concepts)
    updated = engine.score(students[0], question, concepts)
    print(f"   after two correct answers on q{question}: "
          f"{sync:.4f} -> {updated:.4f}")

    print("4) batched next-question recommendation ...")
    candidates = [ScoreRequest(students[0], q, (1 + q % 10,))
                  for q in (5, 12, 23, 31, 44)]
    for rec in engine.recommend(students[0], candidates, top_k=3):
        print("   " + rec.describe())

    print("5) incremental forward-stream cache ...")
    stats = engine.stream_cache_stats()
    print(f"   {stats['entries']} students cached "
          f"({stats['bytes'] / 1024:.1f} KiB of "
          f"{stats['budget_bytes'] // 2**20} MiB budget), "
          f"{stats['hits']} hits / {stats['misses']} misses, "
          f"{stats['evictions']} evictions")
    print("   record() extends each cached encoder state by one step; "
          "score() only runs the per-request backward streams")


if __name__ == "__main__":
    main()
