"""Head-to-head comparison of every KT model on one dataset.

A miniature of the paper's Table IV: all six baselines plus the three RCKT
variants on a single synthetic corpus, sorted by AUC.  Add ``--dataset``
and ``--scale`` to try other profiles.

Usage::

    python examples/compare_baselines.py [--dataset assist09] [--scale 0.2]
"""

import argparse

from repro.experiments import (BASELINES, Budget, RCKT_VARIANTS,
                               cached_dataset, run_baseline, run_rckt,
                               single_fold)
from repro.interpret import comparison_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="assist09",
                        choices=["assist09", "assist12", "slepemapy", "eedi"])
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--epochs", type=int, default=6)
    args = parser.parse_args()

    dataset = cached_dataset(args.dataset, scale=args.scale)
    fold = single_fold(dataset)
    budget = Budget(epochs=args.epochs)
    print(f"dataset {args.dataset}: {len(dataset)} sequences "
          f"({len(fold.train)} train / {len(fold.test)} test)\n")

    rows = []
    for name in BASELINES:
        print(f"training {name} ...")
        metrics = run_baseline(name, fold, budget)
        rows.append([name, metrics["auc"], metrics["acc"]])
    for name in RCKT_VARIANTS:
        print(f"training {name} ...")
        encoder = name.split("-", 1)[1].lower()
        metrics = run_rckt(args.dataset, encoder, fold, budget)
        rows.append([name, metrics["auc"], metrics["acc"]])

    rows.sort(key=lambda r: -r[1])
    print()
    print(comparison_table(["model", "AUC", "ACC"], rows,
                           title=f"models on {args.dataset} (sorted by AUC)"))


if __name__ == "__main__":
    main()
