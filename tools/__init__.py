"""Repo tooling: documentation checker and the invariant lint suite."""
