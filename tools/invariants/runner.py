"""Invariant-suite runner: scoping, suppressions, baseline, output.

Usage::

    python -m tools.invariants [--root PATH] [--format text|json]
                               [--rules INV001,INV003]
                               [--baseline PATH] [--write-baseline]

Exit status: 0 when every finding is suppressed or baselined, 1 when
new findings exist, 2 on usage errors.  The baseline file (committed,
``tools/invariants/baseline.json``) grandfathers known findings by
line-number-free fingerprint; the intended workflow is *fix, don't
baseline* — see ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Sequence

from . import determinism, durability, locks, raises, timeimports
from .common import (Finding, Module, apply_suppressions, load_module,
                     suppression_findings)

#: Rule code -> source-scope globs relative to the repository root.
#: ``repro.obs`` joins the lock-discipline scope (its registry and
#: instruments are shared serving state) but is deliberately *outside*
#: the INV005 scope — it is the one sanctioned ``time`` importer.
RULE_SCOPES: Dict[str, Sequence[str]] = {
    locks.CODE: ("src/repro/serve/*.py", "src/repro/cluster/*.py",
                 "src/repro/obs/*.py"),
    raises.CODE: ("src/repro/serve/*.py", "src/repro/cluster/*.py"),
    determinism.CODE: ("src/repro/core/*.py", "src/repro/online/*.py",
                       "src/repro/cluster/wal.py",
                       "src/repro/cluster/snapshot.py"),
    durability.CODE: ("src/repro/cluster/wal.py",
                      "src/repro/cluster/snapshot.py",
                      "src/repro/cluster/journal.py"),
    timeimports.CODE: ("src/repro/serve/*.py", "src/repro/cluster/*.py"),
}

ALL_RULES = tuple(sorted(RULE_SCOPES))

PROTOCOL_PATH = "src/repro/serve/protocol.py"
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def _scope_files(root: Path, patterns: Sequence[str]) -> List[Path]:
    files: List[Path] = []
    for pattern in patterns:
        files.extend(sorted(root.glob(pattern)))
    return files


def collect_findings(root: Path,
                     rules: Sequence[str] = ALL_RULES) -> dict:
    """Run the selected rules over ``root``.

    Returns ``{"findings": [...], "suppressed": [...]}`` with inline
    suppressions already applied (malformed suppressions surface as
    INV000 findings).  Baseline handling is the caller's.
    """
    modules: Dict[Path, Module] = {}

    def module_for(path: Path) -> Module:
        if path not in modules:
            loaded = load_module(path, root)
            if loaded is None:
                raise SystemExit(f"invariants: cannot parse {path}")
            modules[path] = loaded
        return modules[path]

    taxonomy = raises.taxonomy_from(root / PROTOCOL_PATH)
    raw: Dict[Path, List[Finding]] = {}
    for code in rules:
        for path in _scope_files(root, RULE_SCOPES[code]):
            module = module_for(path)
            if code == locks.CODE:
                found = locks.check_module(module)
            elif code == raises.CODE:
                found = raises.check_module(module, taxonomy)
            elif code == determinism.CODE:
                found = determinism.check_module(module)
            elif code == timeimports.CODE:
                found = timeimports.check_module(module)
            else:
                found = durability.check_module(module)
            raw.setdefault(path, []).extend(found)

    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for path, module in modules.items():
        found = raw.get(path, [])
        found.extend(suppression_findings(module))
        path_kept, path_suppressed = apply_suppressions(module, found)
        kept.extend(path_kept)
        suppressed.extend(path_suppressed)
    kept.sort(key=lambda f: (f.path, f.line, f.code))
    suppressed.sort(key=lambda f: (f.path, f.line, f.code))
    return {"findings": kept, "suppressed": suppressed}


def load_baseline(path: Path) -> List[dict]:
    if not path.is_file():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, list):
        raise SystemExit(f"invariants: baseline {path} must be a JSON "
                         f"list of finding fingerprints")
    return data


def split_baselined(findings: Sequence[Finding],
                    baseline: Sequence[dict]) -> tuple:
    keys = {json.dumps(entry, sort_keys=True) for entry in baseline}
    fresh, grandfathered = [], []
    for finding in findings:
        key = json.dumps(finding.fingerprint(), sort_keys=True)
        (grandfathered if key in keys else fresh).append(finding)
    return fresh, grandfathered


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.invariants", description=__doc__)
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parents[2],
                        help="repository root (default: this checkout)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--rules", default=",".join(ALL_RULES),
                        help="comma-separated rule codes to run")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"baseline file (default: {DEFAULT_BASELINE}"
                             f" when it exists)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings as the new baseline "
                             "and exit 0")
    args = parser.parse_args(argv)

    rules = tuple(code.strip() for code in args.rules.split(",")
                  if code.strip())
    unknown = [code for code in rules if code not in RULE_SCOPES]
    if unknown:
        print(f"invariants: unknown rule code(s): {', '.join(unknown)} "
              f"(known: {', '.join(ALL_RULES)})", file=sys.stderr)
        return 2

    root = args.root.resolve()
    result = collect_findings(root, rules)
    findings: List[Finding] = result["findings"]
    suppressed: List[Finding] = result["suppressed"]

    baseline_path = args.baseline if args.baseline is not None \
        else DEFAULT_BASELINE
    if args.write_baseline:
        payload = [f.fingerprint() for f in findings]
        baseline_path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        print(f"invariants: wrote {len(payload)} baseline entr"
              f"{'y' if len(payload) == 1 else 'ies'} to "
              f"{baseline_path}")
        return 0

    baseline = load_baseline(baseline_path)
    fresh, grandfathered = split_baselined(findings, baseline)

    if args.format == "json":
        print(json.dumps({
            "rules": list(rules),
            "findings": [dict(f.fingerprint(), line=f.line)
                         for f in fresh],
            "baselined": len(grandfathered),
            "suppressed": len(suppressed),
        }, indent=2, sort_keys=True))
    else:
        for finding in fresh:
            print(finding.render())
        print(f"invariants: {len(fresh)} finding(s), "
              f"{len(grandfathered)} baselined, "
              f"{len(suppressed)} suppressed "
              f"({', '.join(rules)})")
    return 1 if fresh else 0
