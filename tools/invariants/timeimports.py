"""INV005 — the obs facade is the only serving clock.

``repro.obs`` centralizes every clock read behind an injectable
``clock()`` (``time.perf_counter`` underneath) plus a ``sleep()``
wrapper, so replayed traffic traces deterministically and tests can pin
a fake clock.  That only holds while no other serve/cluster module
reaches for ``time`` itself — a direct ``time.perf_counter()`` in the
router would silently escape clock injection, and a ``time.time()``
would leak wall clock into the serving path (INV003's concern, but
INV003's scope is the training/replay layer).

This rule bans, inside the serving scope (``serve/``, ``cluster/``):

* ``import time`` (any alias) and ``from time import ...``;
* ``import datetime`` / ``from datetime import ...`` — wall-clock by
  construction, nothing in the serving path needs calendars.

``repro.obs`` itself lives outside the scope — it is the one sanctioned
importer.  A deliberate exception takes an inline
``# invariants: disable=INV005 -- reason`` suppression.
"""

from __future__ import annotations

import ast
from typing import List

from .common import Finding, Module

CODE = "INV005"

_BANNED_MODULES = ("time", "datetime")


def _symbol_of(tree: ast.AST, target: ast.AST) -> str:
    symbol = ""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            for child in ast.walk(node):
                if child is target:
                    symbol = node.name
    return symbol


def check_module(module: Module) -> List[Finding]:
    tree = module.tree
    findings: List[Finding] = []

    def flag(node: ast.AST, name: str) -> None:
        findings.append(Finding(
            CODE, module.rel, node.lineno, _symbol_of(tree, node),
            f"imports '{name}' directly (serve/cluster modules read "
            f"the injectable obs clock: repro.obs.clock / .sleep / "
            f"Timer / Span)"))

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".", 1)[0]
                if root in _BANNED_MODULES:
                    flag(node, alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module is not None \
                    and node.module.split(".", 1)[0] in _BANNED_MODULES:
                flag(node, node.module)
    return findings
