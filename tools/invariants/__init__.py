"""Repo-specific invariant lint suite (``python -m tools.invariants``).

Four AST-based rules guard the contracts the serving stack is built
on (see ``docs/ANALYSIS.md``):

* **INV001** (:mod:`.locks`) — lock-guarded attributes are only
  touched under ``with self._lock:`` or in a
  ``# invariant: holds-lock`` helper.
* **INV002** (:mod:`.raises`) — taxonomy errors
  (``ServiceError`` subclasses) are returned as values, never raised.
* **INV003** (:mod:`.determinism`) — no wall clock or global RNG in
  the byte-deterministic training/replay paths.
* **INV004** (:mod:`.durability`) — WAL/snapshot writes keep the
  fsync-before-rename / write-then-fsync / durable-delete patterns.

INV000 is the meta-rule: a ``# invariants: disable=...`` suppression
without a reason is itself a finding.
"""

from .common import Finding, Module, load_module  # noqa: F401
from .runner import (ALL_RULES, RULE_SCOPES, collect_findings,  # noqa: F401
                     main)
