"""Shared plumbing for the invariant checkers.

Everything here is rule-agnostic: the :class:`Finding` record, the
per-file :class:`Module` bundle (source, AST, comment map), the
``# invariants: disable=INVxxx -- reason`` suppression syntax, and the
``# invariant: holds-lock`` helper annotation.  Rules consume a
:class:`Module` and yield :class:`Finding`\\ s; the runner applies
suppressions and the baseline afterwards, so rules never need to know
about either.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set

#: Suppression comment: ``# invariants: disable=INV001[,INV004] -- why``.
#: The reason after ``--`` is mandatory; a bare disable is itself a
#: finding (INV000) so grandfathered noise cannot accumulate silently.
SUPPRESS_RE = re.compile(
    r"#\s*invariants:\s*disable=([A-Z0-9,\s]+?)\s*(?:--\s*(.*))?$")

#: Lock-holding helper annotation, placed on the ``def`` line or the
#: line directly above it: ``# invariant: holds-lock``.
HOLDS_LOCK_RE = re.compile(r"#\s*invariant:\s*holds-lock\b")

#: Meta-code for misuse of the suppression syntax itself.
META_CODE = "INV000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str      # INV001..INV004 (INV000 for suppression misuse)
    path: str      # repo-relative posix path
    line: int
    symbol: str    # enclosing "Class.method" / "function" ("" at module level)
    message: str   # stable text: no line numbers, safe as a baseline key

    def fingerprint(self) -> dict:
        """Line-number-free identity used by the baseline file, so a
        grandfathered finding survives unrelated edits above it."""
        return {"code": self.code, "path": self.path,
                "symbol": self.symbol, "message": self.message}

    def render(self) -> str:
        where = f" [{self.symbol}]" if self.symbol else ""
        return f"{self.path}:{self.line}: {self.code}{where} {self.message}"


@dataclass(frozen=True)
class Suppression:
    line: int
    codes: Set[str]
    reason: str


@dataclass
class Module:
    """One parsed source file plus its comment-derived metadata."""

    path: Path            # absolute
    rel: str              # repo-relative posix path (finding identity)
    text: str
    tree: ast.AST
    comments: Dict[int, str] = field(default_factory=dict)

    @property
    def suppressions(self) -> Dict[int, Suppression]:
        cached = getattr(self, "_suppressions", None)
        if cached is None:
            cached = {}
            for line, comment in self.comments.items():
                match = SUPPRESS_RE.search(comment)
                if match is None:
                    continue
                codes = {c.strip() for c in match.group(1).split(",")
                         if c.strip()}
                reason = (match.group(2) or "").strip()
                cached[line] = Suppression(line, codes, reason)
            self._suppressions = cached
        return cached

    def holds_lock_lines(self) -> Set[int]:
        """Lines carrying the ``# invariant: holds-lock`` annotation."""
        return {line for line, comment in self.comments.items()
                if HOLDS_LOCK_RE.search(comment)}

    def is_holds_lock(self, node: ast.AST) -> bool:
        """True when ``node`` (a function def) is annotated as a
        lock-holding helper — comment on the def line or directly
        above it."""
        lines = self.holds_lock_lines()
        return node.lineno in lines or node.lineno - 1 in lines


def comment_map(text: str) -> Dict[int, str]:
    """Line -> comment text, via the tokenizer (immune to ``#`` inside
    string literals, which a regex scan is not)."""
    comments: Dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


def load_module(path: Path, root: Path) -> Optional[Module]:
    """Parse one file into a :class:`Module`; None when unparseable
    (a syntactically broken file is the test suite's problem, not the
    invariant layer's)."""
    try:
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text)
    except (OSError, SyntaxError, ValueError):
        return None
    rel = path.resolve().relative_to(root.resolve()).as_posix()
    return Module(path=path, rel=rel, text=text, tree=tree,
                  comments=comment_map(text))


def suppression_findings(module: Module) -> List[Finding]:
    """INV000 findings for malformed suppression comments."""
    findings = []
    for suppression in module.suppressions.values():
        if not suppression.codes:
            findings.append(Finding(
                META_CODE, module.rel, suppression.line, "",
                "suppression names no rule codes "
                "(use: # invariants: disable=INVxxx -- reason)"))
        elif not suppression.reason:
            findings.append(Finding(
                META_CODE, module.rel, suppression.line, "",
                "suppression must carry a reason "
                "(# invariants: disable=INVxxx -- reason)"))
    return findings


def apply_suppressions(module: Module,
                       findings: List[Finding]) -> tuple:
    """Split findings into (kept, suppressed) per inline disables.

    A suppression applies to findings on its own line only, and never
    to INV000 (the meta-rule about suppressions themselves).
    """
    kept, suppressed = [], []
    table = module.suppressions
    for finding in findings:
        suppression = table.get(finding.line)
        if (suppression is not None and suppression.reason
                and finding.code != META_CODE
                and finding.code in suppression.codes):
            suppressed.append(finding)
        else:
            kept.append(finding)
    return kept, suppressed


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def self_attribute(node: ast.AST) -> Optional[str]:
    """``X`` when ``node`` is exactly ``self.X``, else None."""
    if isinstance(node, ast.Attribute) \
            and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return node.attr
    return None
