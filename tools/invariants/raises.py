"""INV002 — taxonomy errors are values, never exceptions.

The serving protocol's contract (PR 4, ``docs/API.md``): a
:class:`~repro.serve.protocol.ServiceError` travels back to the caller
as a *returned value* with a ``code`` and an HTTP status — raising one
would tear a batch apart and bypass the per-query error placement the
scatter-gather router depends on.  This rule resolves the taxonomy
class hierarchy from ``serve/protocol.py`` (transitive subclasses of
``ServiceError``, by name) and flags every ``raise`` of a taxonomy
type anywhere in the serving and cluster request paths.

Plain exceptions (``ValueError`` for programmer errors, I/O errors,
``SegmentCorruption``) remain legitimate raises: they signal broken
invariants, not per-query outcomes.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Optional, Set

from .common import Finding, Module

CODE = "INV002"

#: Root of the errors-as-values hierarchy.
TAXONOMY_ROOT = "ServiceError"


def taxonomy_from(protocol_path: Path) -> Set[str]:
    """Transitive subclasses of ``ServiceError`` (root included),
    resolved by base-class *name* so no import is needed."""
    try:
        tree = ast.parse(protocol_path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError, ValueError):
        return set()
    bases = {}
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            bases[node.name] = {b.id for b in node.bases
                                if isinstance(b, ast.Name)}
    taxonomy = {TAXONOMY_ROOT} if TAXONOMY_ROOT in bases else set()
    changed = True
    while changed:
        changed = False
        for name, parents in bases.items():
            if name not in taxonomy and parents & taxonomy:
                taxonomy.add(name)
                changed = True
    return taxonomy


def _raised_name(node: ast.Raise) -> Optional[str]:
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return None


def _enclosing_symbols(tree: ast.AST):
    """Yield (raise_node, "Class.method"-style symbol)."""
    def walk(node, scope):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                inner = f"{scope}.{child.name}" if scope else child.name
                yield from walk(child, inner)
            else:
                if isinstance(child, ast.Raise):
                    yield child, scope
                yield from walk(child, scope)
    yield from walk(tree, "")


def check_module(module: Module, taxonomy: Set[str]) -> List[Finding]:
    if not taxonomy:
        return []
    findings: List[Finding] = []
    for node, symbol in _enclosing_symbols(module.tree):
        name = _raised_name(node)
        if name in taxonomy:
            findings.append(Finding(
                CODE, module.rel, node.lineno, symbol,
                f"raises taxonomy error '{name}' — taxonomy errors are "
                f"returned as values, never raised"))
    return findings
