"""INV001 — lock discipline for classes that own a ``self._lock``.

The serving stack's concurrency contract is conventional, not
structural: state shared across request threads is only touched inside
``with self._lock:`` (or from a helper the locked caller invokes — see
the ``# invariant: holds-lock`` annotation).  This rule learns the
contract per class instead of hardcoding attribute lists:

1. A class participates iff its ``__init__`` binds an attribute to
   ``threading.Lock()`` / ``threading.RLock()``.
2. An attribute is **guarded** iff it is accessed at least once inside
   a ``with self.<lock>:`` body *and* mutated somewhere in the class
   outside ``__init__`` (reads of immutable-after-init configuration
   therefore never count, which keeps the rule quiet on real code).
3. Every access — read or write — to a guarded attribute outside a
   lock scope is a finding, unless the enclosing method is annotated
   ``# invariant: holds-lock`` (callers own the locking; the docstring
   convention "(lock held)" becomes machine-checked) or is ``__init__``
   (construction is single-threaded by definition).

Mutation means: assignment / augmented assignment / deletion through
``self.X`` (including ``self.X[k] = v`` and ``self.X.attr = v``), or a
call of a known mutator method (``self.X.append(...)`` etc.).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .common import Finding, Module, dotted_name, self_attribute

CODE = "INV001"

#: Method names whose invocation mutates the receiver.  Extend as the
#: codebase grows mutator vocabulary; a miss only costs sensitivity
#: (the attribute stays unguarded), never a false positive.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "remove", "pop", "popitem",
    "clear", "update", "discard", "setdefault", "move_to_end", "put",
    "record", "load_sequence", "invalidate", "note_growth",
})

_LOCK_FACTORIES = frozenset({"Lock", "RLock"})


def _chain_base_self_attr(node: ast.AST) -> Optional[str]:
    """``X`` when the Attribute/Subscript chain bottoms out at
    ``self.X`` (e.g. ``self.X[k]``, ``self.X.y.z``), else None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        base = self_attribute(node)
        if base is not None:
            return base
        node = node.value
    return None


def _lock_names(cls: ast.ClassDef) -> Set[str]:
    """Attributes ``__init__`` binds to a threading lock."""
    names: Set[str] = set()
    for item in cls.body:
        if not (isinstance(item, ast.FunctionDef)
                and item.name == "__init__"):
            continue
        for node in ast.walk(item):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            called = dotted_name(value.func)
            if called is None \
                    or called.rsplit(".", 1)[-1] not in _LOCK_FACTORIES:
                continue
            for target in node.targets:
                attr = self_attribute(target)
                if attr is not None:
                    names.add(attr)
    return names


class _Access:
    __slots__ = ("attr", "line", "write", "locked", "method")

    def __init__(self, attr, line, write, locked, method):
        self.attr = attr
        self.line = line
        self.write = write
        self.locked = locked
        self.method = method


def _is_lock_item(item: ast.withitem, locks: Set[str]) -> bool:
    attr = self_attribute(item.context_expr)
    return attr is not None and attr in locks


def _collect(method: ast.AST, locks: Set[str],
             accesses: List[_Access]) -> None:
    name = method.name

    def record(attr: str, line: int, write: bool, locked: bool) -> None:
        if attr in locks:
            return
        accesses.append(_Access(attr, line, write, locked, name))

    def visit(node: ast.AST, locked: bool) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = locked or any(_is_lock_item(item, locks)
                                  for item in node.items)
            for item in node.items:
                visit(item.context_expr, locked)
                if item.optional_vars is not None:
                    visit(item.optional_vars, locked)
            for child in node.body:
                visit(child, inner)
            return
        if isinstance(node, ast.Attribute):
            attr = self_attribute(node)
            if attr is not None:
                record(attr, node.lineno,
                       isinstance(node.ctx, (ast.Store, ast.Del)), locked)
            elif isinstance(node.ctx, (ast.Store, ast.Del)):
                # self.X.y = v mutates the object behind self.X
                base = _chain_base_self_attr(node.value)
                if base is not None:
                    record(base, node.lineno, True, locked)
        elif isinstance(node, ast.Subscript) \
                and isinstance(node.ctx, (ast.Store, ast.Del)):
            base = _chain_base_self_attr(node.value)
            if base is not None:
                record(base, node.lineno, True, locked)
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in MUTATOR_METHODS:
            base = _chain_base_self_attr(node.func.value)
            if base is not None:
                record(base, node.lineno, True, locked)
        for child in ast.iter_child_nodes(node):
            visit(child, locked)

    for child in method.body:
        visit(child, False)


def _check_class(module: Module, cls: ast.ClassDef) -> List[Finding]:
    locks = _lock_names(cls)
    if not locks:
        return []
    methods = [item for item in cls.body
               if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))]
    annotated = {m.name for m in methods if module.is_holds_lock(m)}

    accesses: List[_Access] = []
    for method in methods:
        _collect(method, locks, accesses)

    locked_attrs = {a.attr for a in accesses if a.locked}
    mutated = {a.attr for a in accesses
               if a.write and a.method != "__init__"}
    guarded = locked_attrs & mutated

    lock_label = sorted(locks)[0]
    findings: List[Finding] = []
    seen: Set[Tuple[str, int, str]] = set()
    for access in accesses:
        if access.locked or access.attr not in guarded:
            continue
        if access.method == "__init__" or access.method in annotated:
            continue
        key = (access.method, access.line, access.attr)
        if key in seen:
            continue
        seen.add(key)
        verb = "writes" if access.write else "reads"
        findings.append(Finding(
            CODE, module.rel, access.line, f"{cls.name}.{access.method}",
            f"{verb} lock-guarded attribute '{access.attr}' outside "
            f"'with self.{lock_label}' (annotate the helper with "
            f"'# invariant: holds-lock' if a locked caller owns it)"))
    return findings


def check_module(module: Module) -> List[Finding]:
    findings: List[Finding] = []
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef):
            findings.extend(_check_class(module, node))
    return findings


def guarded_attributes(module: Module) -> Dict[str, Set[str]]:
    """Class name -> guarded attribute set (introspection/debugging)."""
    result: Dict[str, Set[str]] = {}
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        locks = _lock_names(node)
        if not locks:
            continue
        accesses: List[_Access] = []
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _collect(item, locks, accesses)
        locked_attrs = {a.attr for a in accesses if a.locked}
        mutated = {a.attr for a in accesses
                   if a.write and a.method != "__init__"}
        result[node.name] = locked_attrs & mutated
    return result
