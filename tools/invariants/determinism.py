"""INV003 — replay/training paths stay byte-deterministic.

The continual loop's contract (PR 8, ``docs/ONLINE.md``): rerunning a
training round over the same journal produces byte-identical weights,
which only holds while every random stream derives from
``repro.utils.seeding.derive_rng`` and nothing reads wall-clock state.
This rule bans, inside the deterministic scope (``core/``, ``online/``,
``cluster/wal.py``, ``cluster/snapshot.py``):

* the stdlib ``random`` module (import or use) — process-global,
  seed-order-dependent state;
* ``time.time()`` / ``time.time_ns()`` and argless
  ``datetime.now()`` / ``utcnow()`` / ``today()`` — wall clock leaking
  into results;
* global NumPy RNG state: any ``numpy.random`` attribute that is not a
  generator *constructor* (``default_rng``, ``Generator``,
  ``SeedSequence``, bit generators), plus ``default_rng()`` called
  without a seed.

``np.random.default_rng(seed)`` with an explicit seed is allowed — it
is how the trainer's golden RNG streams are anchored; converting those
call sites to ``derive_rng`` would change the streams and break the
golden tests.  A deliberate exception (e.g. jitter in a benchmark
helper) takes an inline
``# invariants: disable=INV003 -- reason`` suppression.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from .common import Finding, Module, dotted_name

CODE = "INV003"

#: numpy.random attributes that construct explicit generators (fine)
#: rather than touching the hidden global RandomState (not fine).
_NP_RANDOM_OK = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

_WALL_CLOCK = frozenset({"time.time", "time.time_ns"})
_DATETIME_NOW = frozenset({"now", "utcnow", "today"})


def _numpy_aliases(tree: ast.AST) -> Set[str]:
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


def _symbol_of(tree: ast.AST, target: ast.AST) -> str:
    symbol = ""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            for child in ast.walk(node):
                if child is target:
                    symbol = node.name
    return symbol


def check_module(module: Module) -> List[Finding]:
    tree = module.tree
    findings: List[Finding] = []
    numpy_names = _numpy_aliases(tree)

    def flag(node: ast.AST, message: str) -> None:
        findings.append(Finding(CODE, module.rel, node.lineno,
                                _symbol_of(tree, node), message))

    def np_random_attr(dotted: Optional[str]) -> Optional[str]:
        """The trailing attribute of ``<np alias>.random.X``, if any."""
        if dotted is None:
            return None
        parts = dotted.split(".")
        if len(parts) >= 3 and parts[0] in numpy_names \
                and parts[1] == "random":
            return parts[2]
        return None

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or \
                        alias.name.startswith("random."):
                    flag(node, "imports stdlib 'random' (process-global "
                               "RNG; derive streams via derive_rng)")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                flag(node, "imports from stdlib 'random' "
                           "(process-global RNG; use derive_rng)")
            elif node.module == "numpy.random":
                banned = [alias.name for alias in node.names
                          if alias.name not in _NP_RANDOM_OK]
                if banned:
                    flag(node, f"imports global numpy.random state "
                               f"({', '.join(banned)}); construct an "
                               f"explicit Generator instead")
        elif isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted in _WALL_CLOCK:
                flag(node, f"calls {dotted}() (wall clock in a "
                           f"deterministic path)")
                continue
            attr = np_random_attr(dotted)
            if attr is not None:
                if attr not in _NP_RANDOM_OK:
                    flag(node, f"uses global numpy RNG state "
                               f"'{dotted}' (pass an explicit "
                               f"np.random.Generator)")
                elif attr == "default_rng" and not node.args \
                        and not node.keywords:
                    flag(node, "calls default_rng() without a seed "
                               "(nondeterministic entropy; derive the "
                               "seed via derive_rng/stable_hash)")
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _DATETIME_NOW \
                    and not node.args and not node.keywords:
                base = dotted_name(node.func.value) or ""
                tail = base.rsplit(".", 1)[-1]
                if tail in ("datetime", "date"):
                    flag(node, f"calls {base}.{node.func.attr}() "
                               f"(wall clock in a deterministic path)")
        elif isinstance(node, ast.Attribute):
            # Bare global-RNG attribute use outside a call, e.g.
            # handing np.random.shuffle around as a callable.
            attr = np_random_attr(dotted_name(node))
            if attr is not None and attr not in _NP_RANDOM_OK \
                    and not isinstance(node.ctx, ast.Store):
                parent_calls = {id(n.func) for n in ast.walk(tree)
                                if isinstance(n, ast.Call)}
                if id(node) not in parent_calls:
                    flag(node, f"references global numpy RNG state "
                               f"'{dotted_name(node)}'")
    return findings
