"""INV004 — WAL/snapshot writes follow the durability protocol.

The journal's crash-safety story (PR 6, ``docs/CLUSTER.md``) rests on
three file-system patterns that are easy to break in a refactor and
invisible to tests that never lose power:

* **write-then-fsync** — any function that writes file bytes
  (``.write`` / ``.writelines`` / ``.truncate`` / ``Path.write_bytes``
  / ``Path.write_text``) must also call ``os.fsync`` (the fsync may be
  policy-gated — lexical presence is the contract; semantics live in
  the journal tests);
* **fsync-before-rename** — a function calling ``os.replace`` /
  ``os.rename`` must fsync the file *before* the rename (tmp-file
  protocol) and fsync the directory entry afterwards
  (``fsync_directory``);
* **durable deletes** — a function unlinking files must fsync the
  directory entry, or the delete can un-happen across power loss.

Flush-without-fsync is flagged too (seal paths: ``flush`` alone only
reaches the OS page cache).  Scope: ``cluster/wal.py``,
``cluster/snapshot.py``, ``cluster/journal.py``.
"""

from __future__ import annotations

import ast
from typing import List

from .common import Finding, Module, dotted_name

CODE = "INV004"

_WRITE_METHODS = frozenset({
    "write", "writelines", "truncate", "write_bytes", "write_text",
})
_RENAME_CALLS = frozenset({"os.replace", "os.rename"})
_DIR_FSYNC = frozenset({"fsync_directory"})


class _FunctionFacts:
    def __init__(self, name: str, symbol: str, lineno: int):
        self.name = name
        self.symbol = symbol
        self.lineno = lineno
        self.write_lines: List[int] = []
        self.rename_lines: List[int] = []
        self.flush_lines: List[int] = []
        self.unlink_lines: List[int] = []
        self.fsync_lines: List[int] = []
        self.dir_fsync_lines: List[int] = []


def _classify(node: ast.Call, facts: _FunctionFacts) -> None:
    dotted = dotted_name(node.func)
    line = node.lineno
    if dotted in _RENAME_CALLS:
        facts.rename_lines.append(line)
    elif dotted == "os.fsync":
        facts.fsync_lines.append(line)
    elif dotted is not None \
            and dotted.rsplit(".", 1)[-1] in _DIR_FSYNC:
        facts.dir_fsync_lines.append(line)
    elif isinstance(node.func, ast.Attribute):
        attr = node.func.attr
        if attr in _WRITE_METHODS:
            facts.write_lines.append(line)
        elif attr == "flush":
            facts.flush_lines.append(line)
        elif attr == "unlink":
            facts.unlink_lines.append(line)


def _collect(func: ast.AST, symbol: str) -> _FunctionFacts:
    facts = _FunctionFacts(func.name, symbol, func.lineno)

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue   # nested defs get their own facts
            if isinstance(child, ast.Call):
                _classify(child, facts)
            visit(child)

    visit(func)
    return facts


def _functions(tree: ast.AST):
    def walk(node, scope):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from walk(child, child.name)
            elif isinstance(child, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                symbol = f"{scope}.{child.name}" if scope else child.name
                yield child, symbol
                yield from walk(child, symbol)
            else:
                yield from walk(child, scope)
    yield from walk(tree, "")


def check_module(module: Module) -> List[Finding]:
    findings: List[Finding] = []

    def flag(line: int, symbol: str, message: str) -> None:
        findings.append(Finding(CODE, module.rel, line, symbol, message))

    for func, symbol in _functions(module.tree):
        facts = _collect(func, symbol)
        if facts.write_lines and not facts.fsync_lines:
            flag(facts.write_lines[0], symbol,
                 "writes file bytes without any os.fsync on the "
                 "handle (durability: write-then-fsync)")
        elif facts.flush_lines and not facts.fsync_lines:
            flag(facts.flush_lines[0], symbol,
                 "flushes without os.fsync (flush alone only reaches "
                 "the OS page cache)")
        for rename_line in facts.rename_lines:
            if not any(line < rename_line
                       for line in facts.fsync_lines):
                flag(rename_line, symbol,
                     "renames without fsyncing the file first "
                     "(fsync-before-rename)")
            if not facts.dir_fsync_lines:
                flag(rename_line, symbol,
                     "renames without fsyncing the directory entry "
                     "(fsync_directory after os.replace)")
        if facts.unlink_lines and not facts.dir_fsync_lines:
            flag(facts.unlink_lines[0], symbol,
                 "unlinks without fsyncing the directory entry "
                 "(the delete can un-happen across power loss)")
    return findings
