"""Documentation link & symbol checker (the CI docs lane).

Docs rot silently: a refactor renames a function and the
equation-to-code table in ``docs/ARCHITECTURE.md`` quietly points at
nothing.  This checker makes that a CI failure.  Over ``README.md`` and
every ``docs/*.md`` it verifies:

* **Code references** — every backticked ``path/to/file.py:symbol``
  span resolves: the file exists and the symbol is a module-level
  function/class/constant or a ``Class.method`` in that file (checked
  via AST, no imports — works without PYTHONPATH).
* **Relative links** — every ``[text](target)`` / image link that
  resolves inside the repository points at an existing file.  External
  URLs, anchors, and paths escaping the repo (e.g. GitHub badge
  routes) are skipped.
* **Required equations** — ``docs/ARCHITECTURE.md`` exists and its
  table still covers the paper's load-bearing equations (Eq. 12, 13,
  23, 25), each with at least one code reference on the same line.
* **Protocol surface** — the query/reply registries and the error
  taxonomy extracted from ``src/repro/serve/protocol.py`` (via AST)
  must match ``docs/API.md``: every registered query/reply class is
  mentioned, every taxonomy error has a table row whose ``code`` and
  HTTP status match the class, and the table documents no class the
  protocol does not define.  Skipped for trees without the protocol
  module (the synthetic fixtures in the test suite).
* **Metric catalogue** — the ``COUNTERS`` / ``GAUGES`` / ``HISTOGRAMS``
  kind registries extracted from ``src/repro/obs/names.py`` (via AST)
  must match the catalogue table in ``docs/OBSERVABILITY.md``: every
  registered metric has a row with the matching kind, and the table
  documents no series the registry does not define.  Skipped for trees
  without the names module.

Usage::

    python tools/check_docs.py [--root PATH]

Exits non-zero on any failure; prints every failure first.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path

CODE_REF = re.compile(r"`([A-Za-z0-9_\-./]+\.py):([A-Za-z_][A-Za-z0-9_.]*)`")
MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

# The acceptance-critical rows of the ARCHITECTURE.md equation table.
REQUIRED_EQUATIONS = ("Eq. 12", "Eq. 13", "Eq. 23", "Eq. 25")

# Wire-protocol module + the doc that tabulates its surface.
PROTOCOL_REL = Path("src") / "repro" / "serve" / "protocol.py"
API_DOC_REL = Path("docs") / "API.md"

# Error-taxonomy table row: | `Class` | `code` | HTTP | ...
ERROR_ROW = re.compile(r"^\|\s*`(\w+)`\s*\|\s*`(\w+)`\s*\|\s*(\d+)\s*\|")

# Metric-name module + the doc that tabulates its catalogue.
METRICS_REL = Path("src") / "repro" / "obs" / "names.py"
OBS_DOC_REL = Path("docs") / "OBSERVABILITY.md"

# Metric-catalogue table row: | `metric_name` | kind | ...
METRIC_ROW = re.compile(r"^\|\s*`([a-z0-9_]+)`\s*\|\s*"
                        r"(counter|gauge|histogram)\s*\|")


def module_symbols(path: Path) -> set:
    """Module-level defs/classes/constants plus ``Class.method`` names."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    names = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
        elif isinstance(node, ast.ClassDef):
            names.add(node.name)
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    names.add(f"{node.name}.{sub.name}")
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def check_code_refs(doc: Path, root: Path, failures: list) -> int:
    checked = 0
    for match in CODE_REF.finditer(doc.read_text(encoding="utf-8")):
        rel_path, symbol = match.groups()
        checked += 1
        target = root / rel_path
        if not target.is_file():
            failures.append(f"{doc.relative_to(root)}: referenced file "
                            f"{rel_path} does not exist")
            continue
        if symbol not in module_symbols(target):
            failures.append(f"{doc.relative_to(root)}: {rel_path} has no "
                            f"symbol '{symbol}'")
    return checked


def check_links(doc: Path, root: Path, failures: list) -> int:
    checked = 0
    for match in MD_LINK.finditer(doc.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (doc.parent / path).resolve()
        try:
            resolved.relative_to(root.resolve())
        except ValueError:
            # Outside the repo (e.g. the CI badge's web route): not a
            # file this checker can vouch for either way.
            continue
        checked += 1
        if not resolved.exists():
            failures.append(f"{doc.relative_to(root)}: broken link "
                            f"{target}")
    return checked


def _registry_class_names(value: ast.AST) -> list:
    """Class names referenced by a ``{cls.TYPE: cls for cls in (...)}``
    registry assignment (robust to literal-dict forms too)."""
    return sorted({node.id for node in ast.walk(value)
                   if isinstance(node, ast.Name)
                   and node.id[:1].isupper()})


def protocol_surface(path: Path) -> dict:
    """Query/reply class names and the error taxonomy, extracted from
    the protocol module without importing it.

    Returns ``{"queries": [...], "replies": [...], "errors": {name:
    (code, http_status)}}``.  Error ``code``/``http_status`` resolve
    through the (single-inheritance) base chain, mirroring ClassVar
    inheritance at runtime.
    """
    tree = ast.parse(path.read_text(encoding="utf-8"))
    classes = {}
    registries = {}
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            classes[node.name] = node
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id in (
                        "QUERY_TYPES", "REPLY_TYPES", "ERROR_TYPES"):
                    registries[target.id] = \
                        _registry_class_names(node.value)

    def class_var(name: str, attr: str):
        seen = set()
        while name in classes and name not in seen:
            seen.add(name)
            node = classes[name]
            for item in node.body:
                target = None
                if isinstance(item, ast.AnnAssign):
                    target = item.target
                elif isinstance(item, ast.Assign) and item.targets:
                    target = item.targets[0]
                if isinstance(target, ast.Name) and target.id == attr \
                        and isinstance(item.value, ast.Constant):
                    return item.value.value
            bases = [b.id for b in node.bases if isinstance(b, ast.Name)]
            name = bases[0] if bases else None
        return None

    queries = list(registries.get("QUERY_TYPES", []))
    if "BatchEnvelope" in classes and "BatchEnvelope" not in queries:
        queries.append("BatchEnvelope")   # rides outside the registry
    errors = {name: (class_var(name, "code"),
                     class_var(name, "http_status"))
              for name in registries.get("ERROR_TYPES", [])}
    return {"queries": sorted(queries),
            "replies": list(registries.get("REPLY_TYPES", [])),
            "errors": errors}


def check_protocol_surface(root: Path, failures: list) -> int:
    """docs/API.md must track the protocol module's typed surface."""
    protocol = root / PROTOCOL_REL
    if not protocol.is_file():
        return 0   # synthetic fixture trees have no protocol module
    api_doc = root / API_DOC_REL
    if not api_doc.is_file():
        failures.append(f"{API_DOC_REL}: missing, but the protocol "
                        f"module {PROTOCOL_REL} exists")
        return 0
    surface = protocol_surface(protocol)
    text = api_doc.read_text(encoding="utf-8")
    checked = 0

    for kind in ("queries", "replies"):
        for name in surface[kind]:
            checked += 1
            if f"`{name}`" not in text:
                failures.append(f"{API_DOC_REL}: protocol "
                                f"{kind[:-1]} type `{name}` is not "
                                f"documented")

    documented = {}
    for line in text.splitlines():
        match = ERROR_ROW.match(line.strip())
        if match:
            documented[match.group(1)] = (match.group(2),
                                          int(match.group(3)))
    for name, (code, status) in sorted(surface["errors"].items()):
        checked += 1
        if name not in documented:
            failures.append(f"{API_DOC_REL}: error taxonomy table has "
                            f"no row for `{name}`")
            continue
        doc_code, doc_status = documented[name]
        if doc_code != code:
            failures.append(f"{API_DOC_REL}: `{name}` documents code "
                            f"`{doc_code}` but the protocol says "
                            f"`{code}`")
        if doc_status != status:
            failures.append(f"{API_DOC_REL}: `{name}` documents HTTP "
                            f"{doc_status} but the protocol says "
                            f"{status}")
    for name in sorted(set(documented) - set(surface["errors"])):
        failures.append(f"{API_DOC_REL}: error taxonomy table "
                        f"documents `{name}`, which the protocol does "
                        f"not register")
    return checked


def metric_catalogue(path: Path) -> dict:
    """``{metric_name: kind}`` extracted from the names module's
    ``COUNTERS`` / ``GAUGES`` / ``HISTOGRAMS`` registries (via AST:
    constants resolve through the module-level string assignments)."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    constants = {}
    registries = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            if isinstance(node.value, ast.Constant) \
                    and isinstance(node.value.value, str):
                constants[target.id] = node.value.value
            elif target.id in ("COUNTERS", "GAUGES", "HISTOGRAMS") \
                    and isinstance(node.value, (ast.Tuple, ast.List)):
                registries[target.id] = [
                    constants.get(el.id) if isinstance(el, ast.Name)
                    else el.value if isinstance(el, ast.Constant)
                    else None
                    for el in node.value.elts]
    catalogue = {}
    for registry, kind in (("COUNTERS", "counter"), ("GAUGES", "gauge"),
                           ("HISTOGRAMS", "histogram")):
        for name in registries.get(registry, []):
            if name is not None:
                catalogue[name] = kind
    return catalogue


def check_metric_catalogue(root: Path, failures: list) -> int:
    """docs/OBSERVABILITY.md must track the registered metric names."""
    names_module = root / METRICS_REL
    if not names_module.is_file():
        return 0   # synthetic fixture trees have no obs package
    obs_doc = root / OBS_DOC_REL
    if not obs_doc.is_file():
        failures.append(f"{OBS_DOC_REL}: missing, but the metric-name "
                        f"module {METRICS_REL} exists")
        return 0
    catalogue = metric_catalogue(names_module)
    documented = {}
    for line in obs_doc.read_text(encoding="utf-8").splitlines():
        match = METRIC_ROW.match(line.strip())
        if match:
            documented[match.group(1)] = match.group(2)
    checked = 0
    for name, kind in sorted(catalogue.items()):
        checked += 1
        if name not in documented:
            failures.append(f"{OBS_DOC_REL}: metric catalogue has no "
                            f"row for `{name}`")
        elif documented[name] != kind:
            failures.append(f"{OBS_DOC_REL}: `{name}` documents kind "
                            f"'{documented[name]}' but {METRICS_REL} "
                            f"registers it as a {kind}")
    for name in sorted(set(documented) - set(catalogue)):
        failures.append(f"{OBS_DOC_REL}: metric catalogue documents "
                        f"`{name}`, which {METRICS_REL} does not "
                        f"register")
    return checked


def check_required_equations(root: Path, failures: list) -> None:
    architecture = root / "docs" / "ARCHITECTURE.md"
    if not architecture.is_file():
        failures.append("docs/ARCHITECTURE.md is missing")
        return
    lines = architecture.read_text(encoding="utf-8").splitlines()
    for equation in REQUIRED_EQUATIONS:
        rows = [line for line in lines
                if equation in line and CODE_REF.search(line)]
        if not rows:
            failures.append(f"docs/ARCHITECTURE.md: no equation-table row "
                            f"maps '{equation}' to a code reference")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: this checkout)")
    args = parser.parse_args()
    root = args.root.resolve()

    docs = sorted((root / "docs").glob("*.md"))
    readme = root / "README.md"
    if readme.is_file():
        docs.insert(0, readme)
    if not docs:
        print(f"check_docs: no documentation found under {root}")
        return 1

    failures: list = []
    refs = links = 0
    for doc in docs:
        refs += check_code_refs(doc, root, failures)
        links += check_links(doc, root, failures)
    check_required_equations(root, failures)
    protocol = check_protocol_surface(root, failures)
    metrics = check_metric_catalogue(root, failures)

    if failures:
        print(f"check_docs: {len(failures)} failure(s)")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print(f"check_docs: ok ({len(docs)} files, {refs} code references, "
          f"{links} relative links, {protocol} protocol surface checks, "
          f"{metrics} metric catalogue checks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
