"""Legacy setup shim: this offline environment lacks the `wheel` package
that PEP 660 editable installs require, so `pip install -e .` goes through
setup.py develop instead.  All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
