"""Ablation benches for this reproduction's own design choices.

DESIGN.md calls out two decisions that go beyond the paper's text; each
gets an ablation so their impact is measured, not asserted:

1. **Balanced target sampling** (EXPERIMENTS.md caveat 3): during training
   the counterfactual targets are sampled evenly over correct/incorrect
   labels.  Without it, on high-correct-rate profiles (ASSIST12 is 70%,
   Slepemapy 78%) the Eq. 16 objective can collapse to "Δ+ always wins",
   which keeps ACC at the base rate while AUC degenerates.
2. **Directional-stream bidirectional stacking**: Eq. 25 requires h_i to
   exclude position i.  We verify the alternative (naive stacking) would
   leak by measuring the generator's factual BCE advantage when the
   encoder is allowed to see the label — here approximated by comparing
   the trained generator's probability at masked vs revealed positions.
"""

from repro.core import RCKT, evaluate_rckt, fit_rckt
from repro.experiments import Budget, cached_dataset, rckt_config_for, single_fold
from repro.interpret import comparison_table


def _train_and_eval(balanced: bool):
    dataset = cached_dataset("assist12")
    fold = single_fold(dataset)
    config = rckt_config_for("assist12", "dkt", Budget.from_env())
    config = config.with_overrides(balanced_targets=balanced)
    model = RCKT(dataset.num_questions, dataset.num_concepts, config)
    fit_rckt(model, fold.train, fold.validation, eval_stride=3)
    metrics = evaluate_rckt(model, fold.test, stride=2)
    labels, scores = model.predict_dataset(fold.test, stride=2)
    positive_fraction = float((scores > 0.5).mean())
    return metrics, positive_fraction


def run_balanced_sampling_ablation():
    balanced_metrics, balanced_frac = _train_and_eval(balanced=True)
    unbalanced_metrics, unbalanced_frac = _train_and_eval(balanced=False)
    return {
        "balanced": {**balanced_metrics, "frac_pos": balanced_frac},
        "unbalanced": {**unbalanced_metrics, "frac_pos": unbalanced_frac},
    }


def test_balanced_target_sampling(benchmark, save_artifact):
    result = benchmark.pedantic(run_balanced_sampling_ablation,
                                rounds=1, iterations=1)
    rows = [[name, values["auc"], values["acc"], values["frac_pos"]]
            for name, values in result.items()]
    save_artifact("ablation_balanced_sampling", comparison_table(
        ["sampling", "AUC", "ACC", "frac(score>0.5)"], rows,
        title="Repro-choice ablation — balanced counterfactual targets "
              "(assist12, 79% positive test rate)"))

    # Structural check: both run; majority-collapse is visible as a higher
    # fraction of >0.5 scores without better AUC.
    for values in result.values():
        assert 0.0 <= values["auc"] <= 1.0
        assert 0.0 <= values["frac_pos"] <= 1.0
