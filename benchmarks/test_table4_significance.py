"""Table IV footnote — cross-validated significance testing.

Regenerates: the paper's evaluation protocol around the ``*`` markers in
Table IV: k-fold cross validation with paired per-fold metrics and a
paired t-test of RCKT against a baseline (the paper uses five folds and
p <= 0.01; the bench uses three folds to stay inside the CPU budget —
raise ``--folds`` via ``python -m repro.experiments cv`` for the full
protocol).
Shape target: the machinery runs end to end and produces paired fold
metrics; significance itself is not asserted (3 folds of synthetic data
cannot support the paper's p <= 0.01 claim either way).
"""

from repro.experiments import Budget, cached_dataset, run_cross_validation


def test_table4_cv_significance(benchmark, save_artifact):
    dataset = cached_dataset("assist09")
    budget = Budget.from_env(eval_stride=3)
    result = benchmark.pedantic(
        run_cross_validation,
        kwargs=dict(dataset=dataset, dataset_name="assist09",
                    models=["DKT", "RCKT-DKT"], k=3, budget=budget),
        rounds=1, iterations=1)
    p_value = result.significance("RCKT-DKT", "DKT")
    text = result.render()
    text += f"\npaired t-test RCKT-DKT vs DKT: p = {p_value:.4f}"
    save_artifact("table4_cv_significance", text)

    assert len(result.per_fold["DKT"]) == 3
    assert len(result.per_fold["RCKT-DKT"]) == 3
    assert 0.0 <= p_value <= 1.0
    for model in ("DKT", "RCKT-DKT"):
        assert 0.0 <= result.mean(model) <= 1.0
