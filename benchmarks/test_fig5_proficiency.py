"""Fig. 5 — interpretable knowledge proficiency tracking.

Regenerates: one student's per-concept proficiency curves (Eq. 30 probing)
plus the per-response influence decomposition, on the ASSIST12 profile.
Shape target: proficiencies live in (0, 1); each probed step's influence
row covers exactly the responses so far; rendering produces the chart and
bars the paper's figure shows.
"""

import numpy as np

from repro.experiments import run_proficiency_figure


def test_fig5_proficiency(benchmark, save_artifact):
    figure = benchmark.pedantic(
        run_proficiency_figure,
        kwargs=dict(dataset_name="assist12", max_steps=18, num_concepts=3),
        rounds=1, iterations=1)
    save_artifact("fig5_proficiency", figure.render())

    assert len(figure.traces) >= 1
    steps = len(figure.student)
    for _concept_id, trace in figure.traces.items():
        assert trace.proficiencies.shape == (steps,)
        assert np.all((trace.proficiencies >= 0.0)
                      & (trace.proficiencies <= 1.0))
        # Influence rows grow with the prefix: after k responses there are
        # exactly k influences.
        for k, row in enumerate(trace.influence_rows, start=1):
            assert len(row) == k
