"""Benchmark regression gate for CI.

Compares a fresh ``bench_inference.py --quick`` result against the
committed ``BENCH_inference.json`` baseline and fails (exit 1) when:

* **score drift** — any section of the fresh run reports a
  ``max_abs_score_diff`` above roundoff (``--drift-threshold``,
  default 1e-9).  Every benchmark workload doubles as a parity check
  between an optimized path and its golden reference, so drift here
  means a numerics regression, not noise.
* **throughput regression** — a (section, encoder) pair present in
  both files lost more than ``--max-regression`` (default 25%) of its
  baseline *speedup*.  Speedups are ratios of two arms measured on the
  same machine in the same process, so they transfer across hardware
  the way absolute requests/sec never could; a collapsing ratio means
  the optimized path itself got slower relative to its reference.
* **observability overhead** — the ``obs`` section's ``overhead_pct``
  (wall-time cost of the enabled metrics registry vs a disabled one on
  interleaved identical batches) exceeds ``--max-obs-overhead``
  (default 2%, the budget ``docs/OBSERVABILITY.md`` commits to).  Like
  the speedups this is a same-machine ratio, so it travels across
  hardware; unlike them it is gated absolutely, not against the
  baseline — creeping instrumentation cost is a regression even if the
  baseline already paid it.

Usage (what ``.github/workflows/ci.yml`` runs after the smoke step)::

    PYTHONPATH=src python benchmarks/bench_inference.py --quick \\
        --output BENCH_fresh.json
    python benchmarks/check_regression.py BENCH_fresh.json \\
        --baseline BENCH_inference_quick.json

Two baselines are committed: ``BENCH_inference.json`` (full run, the
showcase numbers) and ``BENCH_inference_quick.json`` (quick mode, the
CI gate reference — like-for-like with what CI regenerates).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SECTIONS = (
    "eval_sweep",
    "serving",
    "serving_incremental",
    "sweep_workers",
    "long_context",
    "service_layer",
    "cluster",
    "journal",
    "recourse",
    "online",
    "obs",
)

# sweep_workers measures hardware parallelism, not an algorithmic win:
# on a single-core runner its honest speedup is ~1x and the noise floor
# of tiny quick-mode timings dominates.  Gate it only on score drift.
# The cluster section is the same story one level up — worker
# *processes* instead of threads — so its 2-shard-vs-1 ratio is also
# hardware-bound (~1x on single-core runners, ~2x on multi-core hosts)
# and only its drift entry is gated, which is the strictest check in
# the file: routed replies must be *bit-identical* to a single
# in-process Service, so any non-zero diff is a routing bug.
# (long_context's speedup, by contrast, is an algorithmic ratio — full
# history vs window — and its drift entry compares windowed scores to a
# from-scratch recompute on the window, so both checks apply.
# service_layer's speedup is likewise algorithmic — one coalesced
# mixed-type batch vs per-query execution on the same machine — and its
# drift entry spans batched-vs-single, facade-vs-engine, and
# wire-vs-in-process scores.)
# The journal section's speedup (cold boot from snapshot vs from the
# full segment log) is algorithmic, but quick-mode boots are a few
# milliseconds and filesystem-cache noise swamps the ratio, so only
# its drift entry is gated: 0.0 means the full-log, snapshot, and
# in-memory replay streams were identical (ordering + dedup held
# across every storage boundary); anything else is a journal bug.
# The recourse section has no speedup ratio at all — its timed quantity
# (worlds per second through a beam search) depends on how many edits
# each random probe needs, so a throughput gate would be gating the
# search *inputs*.  Its drift entry is the contract: every returned
# path's final score must match a from-scratch rescore of the edited
# timeline; worlds_per_forward_call is reported for eyeballing the
# coalescing ratio (the exact batching contract is pinned by tests).
# The online section (the serve->train continual loop) likewise emits
# no speedup — there is no legacy arm to race, only absolute replay /
# prequential throughput that would gate the runner's hardware — so
# only its drift entry is gated.  That entry is the loop's bit-exactness
# contract twice over: journal-replayed training batches identical to
# batches built from the original sequences (1.0 when broken), and the
# drift-gate-approved rolled-out service scoring exactly like a fresh
# service booted from the refreshed checkpoint.
# The obs section has no speedup either — its headline is
# ``overhead_pct``, the wall-time cost of the enabled metrics registry
# over a disabled one on interleaved identical batches, which gets its
# own absolute gate below (``--max-obs-overhead``, default 2%: the
# budget docs/OBSERVABILITY.md commits to).  Its drift entry is gated
# like the rest at literal-zero tolerance in spirit: telemetry must
# never perturb scores, so both arms are compared bit-for-bit.
THROUGHPUT_GATED = ("eval_sweep", "serving", "serving_incremental",
                    "long_context", "service_layer")


def load(path: str) -> dict:
    try:
        return json.loads(Path(path).read_text())
    except FileNotFoundError:
        sys.exit(f"check_regression: {path} not found")
    except json.JSONDecodeError as error:
        sys.exit(f"check_regression: {path} is not valid JSON ({error})")


def iter_entries(results: dict, section: str):
    for encoder, entry in sorted(results.get(section, {}).items()):
        yield encoder, entry


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly generated benchmark JSON")
    parser.add_argument("--baseline", default="BENCH_inference.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="maximum tolerated relative speedup loss (0.25 = 25%%)",
    )
    parser.add_argument(
        "--drift-threshold",
        type=float,
        default=1e-9,
        help="maximum tolerated max_abs_score_diff in the fresh run",
    )
    parser.add_argument(
        "--max-obs-overhead",
        type=float,
        default=2.0,
        help="maximum tolerated obs-section overhead_pct (metrics "
             "registry wall-time cost over a disabled registry)",
    )
    args = parser.parse_args()

    fresh = load(args.fresh)
    baseline = load(args.baseline)
    failures = []
    checked = 0

    if fresh.get("quick") != baseline.get("quick"):
        # Quick and full runs measure different corpora/strides, which
        # systematically biases the speedups being compared — enough to
        # eat much of the regression allowance.  CI gates a --quick run
        # against the committed quick-mode baseline for this reason.
        print(
            f"warning: comparing quick={fresh.get('quick')} run against "
            f"quick={baseline.get('quick')} baseline; speedups are not "
            f"like-for-like"
        )

    for section in SECTIONS:
        for encoder, entry in iter_entries(fresh, section):
            drift = entry.get("max_abs_score_diff")
            if drift is not None and drift > args.drift_threshold:
                failures.append(
                    f"{section}/{encoder}: score drift {drift:.3e} exceeds "
                    f"{args.drift_threshold:.1e}"
                )
            checked += 1

    for section in THROUGHPUT_GATED:
        baseline_entries = dict(iter_entries(baseline, section))
        for encoder, entry in iter_entries(fresh, section):
            reference = baseline_entries.get(encoder)
            if reference is None:
                continue
            if "speedup" not in entry or "speedup" not in reference:
                continue
            floor = (1.0 - args.max_regression) * reference["speedup"]
            status = "ok" if entry["speedup"] >= floor else "REGRESSION"
            print(
                f"{section}/{encoder}: speedup {entry['speedup']:.2f}x "
                f"(baseline {reference['speedup']:.2f}x, floor "
                f"{floor:.2f}x) {status}"
            )
            if status != "ok":
                failures.append(
                    f"{section}/{encoder}: speedup {entry['speedup']:.2f}x "
                    f"fell below {floor:.2f}x "
                    f"(baseline {reference['speedup']:.2f}x "
                    f"- {args.max_regression:.0%})"
                )

    for encoder, entry in iter_entries(fresh, "obs"):
        overhead = entry.get("overhead_pct")
        if overhead is None:
            continue
        status = "ok" if overhead <= args.max_obs_overhead else "REGRESSION"
        print(
            f"obs/{encoder}: instrumentation overhead {overhead:.2f}% "
            f"(budget {args.max_obs_overhead:.1f}%) {status}"
        )
        if status != "ok":
            failures.append(
                f"obs/{encoder}: instrumentation overhead {overhead:.2f}% "
                f"exceeds the {args.max_obs_overhead:.1f}% budget"
            )

    if failures:
        print(f"\ncheck_regression: {len(failures)} failure(s)")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print(f"\ncheck_regression: ok ({checked} section entries checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
