"""Fig. 4 — effect of the loss balancer λ.

Regenerates: the AUC/ACC-vs-λ curves for RCKT-DKT on the ASSIST09 profile
(Sec. V-D; the paper sweeps both ASSIST datasets and both best encoders —
run with REPRO_EPOCHS/REPRO_SCALE raised and pass more encoders/datasets to
``run_lambda_sweep`` for the full grid).
Shape target: a non-degenerate curve where some intermediate λ is at least
as good as the extremes (the paper finds peaks in [0.01, 0.1]).
"""

from repro.experiments import run_lambda_sweep

LAMBDAS = (0.0, 0.01, 0.1, 0.4)


def test_fig4_lambda_sweep(benchmark, save_artifact):
    result = benchmark.pedantic(
        run_lambda_sweep,
        kwargs=dict(encoders=("dkt",), datasets=("assist09",),
                    lambdas=LAMBDAS),
        rounds=1, iterations=1)
    save_artifact("fig4_lambda_sweep", result.render())

    curve = result.curves[("dkt", "assist09")]
    assert set(curve) == set(LAMBDAS)
    aucs = [curve[lam]["auc"] for lam in LAMBDAS]
    assert all(0.0 <= a <= 1.0 for a in aucs)
    # The curve is not flat noise: the spread is measurable but bounded.
    assert max(aucs) - min(aucs) < 0.5
    # Joint training should not be catastrophic: best point with λ>0 is not
    # far below the λ=0 point (the paper finds it strictly better).
    best_positive = max(curve[lam]["auc"] for lam in LAMBDAS if lam > 0)
    assert best_positive >= curve[0.0]["auc"] - 0.1
