"""Table II — dataset statistics of the four synthetic profiles.

Regenerates: the statistics table (Sec. V-A1, Table II).
Shape targets: per-profile correct rates ordered as in the paper
(slepemapy > assist12 > eedi ≈ assist09) and ASSIST09's >1 concepts per
question.
"""

from repro.experiments import run_table2


def test_table2_dataset_stats(benchmark, save_artifact):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    save_artifact("table2_dataset_stats", result.render())

    stats = result.stats
    # Correct-rate ordering matches Table II.
    assert stats["slepemapy"].correct_rate > stats["assist12"].correct_rate
    assert stats["assist12"].correct_rate > stats["assist09"].correct_rate
    # ASSIST09 is the multi-concept corpus (1.22 concepts/question).
    assert stats["assist09"].concepts_per_question > 1.05
    for single in ("assist12", "slepemapy"):
        assert abs(stats[single].concepts_per_question - 1.0) < 1e-9
    # Preprocessing bounds hold everywhere (Sec. V-A1).
    for name in stats:
        assert stats[name].num_sequences > 0
        assert stats[name].num_responses >= 5 * stats[name].num_sequences
