"""Table VI — response influence approximation analysis.

Regenerates: RCKT inference before (one counterfactual per past response)
vs after (two counterfactual sequences total) the approximation, on the
ASSIST09 profile with DKT and AKT encoders (Sec. V-G).
Shape target: the approximated path is substantially faster at comparable
quality.  The paper reports ~20x on a GPU where the 'before' path runs t
separate sequences; our 'before' path batches the t counterfactual rows in
one pass, so the measured speedup reflects the FLOP ratio instead of the
pass-count ratio — still clearly > 1 and growing with history length.
"""

import numpy as np

from repro.experiments import Budget, run_approximation


def test_table6_approximation(benchmark, save_artifact):
    budget = Budget.from_env(dim=32)
    result = benchmark.pedantic(
        run_approximation,
        kwargs=dict(encoders=("dkt", "akt"), budget=budget,
                    max_eval_sequences=16),
        rounds=1, iterations=1)
    text = result.render()
    for encoder in ("dkt", "akt"):
        text += f"\nspeedup {encoder}: x{result.speedup(encoder):.1f}"
    save_artifact("table6_approximation", text)

    for encoder in ("dkt", "akt"):
        modes = result.metrics[encoder]
        # Speedup direction matches the paper.
        assert result.speedup(encoder) > 1.2, \
            f"approximation gave no speedup for {encoder}"
        # Quality comparable at bench scale.  The eval slice is ~12
        # positive/negative pairs, so AUC moves in steps of 1/12: the
        # threshold must sit above a few rank swaps of granularity or it
        # turns into a noise test (the Eq. 23 pad-masking fix legitimately
        # shifted these tiny-corpus AUCs by exactly one such step).
        if np.isfinite(modes["before"]["auc"]) and \
                np.isfinite(modes["after"]["auc"]):
            assert abs(modes["before"]["auc"] - modes["after"]["auc"]) < 0.4
