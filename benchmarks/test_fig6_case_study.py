"""Fig. 6 — case study: RCKT response influences vs SAKT+ attention.

Regenerates: the side-by-side Inf./Att. table for one Eedi-profile student
with 9 historical responses (Sec. V-F).
Shape target: SAKT+ attention rows are a normalized distribution while
RCKT influences are per-response counterfactual effects (not constrained to
sum to 1) — the structural difference the paper uses to argue attention is
not an influence measure.
"""

import numpy as np

from repro.experiments import run_case_study


def test_fig6_case_study(benchmark, save_artifact):
    figure = benchmark.pedantic(
        run_case_study,
        kwargs=dict(dataset_name="eedi", history_length=9),
        rounds=1, iterations=1)
    save_artifact("fig6_case_study", figure.render())

    case = figure.case
    assert len(case.rows) == 9
    # Attention is a distribution over the 9 past responses.
    attention_sum = sum(row.attention for row in case.rows)
    assert np.isclose(attention_sum, 1.0, atol=1e-4)
    # Influences are free-scale counterfactual effects.
    influences = np.array([row.influence for row in case.rows])
    assert influences.shape == (9,)
    # Both models commit to a binary decision on the same target.
    assert case.rckt_prediction in (0, 1)
    assert case.sakt_prediction in (0, 1)
    assert 0.0 <= case.rckt_score <= 1.0
