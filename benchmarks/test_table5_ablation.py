"""Table V — ablation study of RCKT's components.

Regenerates: full vs -joint / -mono / -con for the paper's two best
encoders (DKT, AKT) on the ASSIST09 profile (Sec. V-C).
Shape target: the full model is the best or near-best variant; the paper
reports -mono as the largest degradation.  At bench scale run-to-run noise
is nontrivial, so assertions are structural plus a lenient ordering check.
"""

from repro.experiments import ABLATIONS, run_ablation


def test_table5_ablation(benchmark, save_artifact):
    result = benchmark.pedantic(
        run_ablation,
        kwargs=dict(encoders=("dkt", "akt"), datasets=("assist09",)),
        rounds=1, iterations=1)
    save_artifact("table5_ablation", result.render())

    assert set(result.metrics) == set(ABLATIONS)
    for _variant, cells in result.metrics.items():
        assert set(cells) == {("dkt", "assist09"), ("akt", "assist09")}
        for metrics in cells.values():
            assert 0.0 <= metrics["auc"] <= 1.0

    # Lenient shape check: the full model should not be dominated by every
    # ablated variant on both encoders simultaneously.
    dominated = 0
    for encoder in ("dkt", "akt"):
        full = result.metrics["full"][(encoder, "assist09")]["auc"]
        if all(result.metrics[v][(encoder, "assist09")]["auc"] > full + 0.02
               for v in ("-joint", "-mono", "-con")):
            dominated += 1
    assert dominated < 2, "ablations beat the full model everywhere"
