"""Benchmark session setup.

Every benchmark regenerates one paper table/figure at a CPU-friendly scale
(see ``repro.experiments.common``) and writes its rendered artifact to
``benchmarks/results/<name>.txt`` so the paper-vs-measured comparison
survives the run.

Tune with environment variables:

* ``REPRO_SCALE``  (default 0.25) — dataset size multiplier
* ``REPRO_EPOCHS`` (default 6)   — training epochs per model
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_artifact():
    """Write a rendered experiment artifact and echo it to stdout."""
    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[artifact saved to {path}]")
    return _save
