"""Inference throughput: old per-prefix path vs the multi-target engine.

Two workloads, both scored identically by construction (the golden-parity
suite in ``tests/core/test_multi_target_parity.py`` pins the score
equality this benchmark asserts as a by-product):

* **evaluation sweep** — score every position of every sequence, the
  Table IV protocol.  Old path: ``predict_dataset(legacy=True)``, one
  re-collated prefix batch per target bucket.  New path: the shared
  forward-stream engine of :mod:`repro.core.multi_target`.
* **serving** — one "how would this student do on question q next?"
  probe per student, the production workload ``repro.serve`` exists for.
  Old path: the seed's serving idiom (one collated single-row
  ``predict_scores`` call per probe, exactly as
  ``repro.interpret.recommendation`` scores candidates).  New path:
  :class:`repro.serve.InferenceEngine` micro-batching all probes over
  its cached student histories.

Emits ``BENCH_inference.json`` (top-level ``speedup`` = serving-workload
throughput ratio for the default encoder) to start the perf trajectory::

    PYTHONPATH=src python benchmarks/bench_inference.py --quick
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core import RCKT, RCKTConfig
from repro.data import (SimulationConfig, StudentSimulator, build_dataset,
                        collate)
from repro.serve import InferenceEngine, ScoreRequest


def build_corpus(num_students: int, seed: int = 11):
    config = SimulationConfig(num_students=num_students, num_questions=200,
                              num_concepts=20, sequence_length=(8, 50))
    simulator = StudentSimulator(config, seed=seed)
    return build_dataset("bench", simulator.simulate(seed=seed + 1),
                         config.num_questions, config.num_concepts)


def build_model(dataset, encoder: str, dim: int, layers: int) -> RCKT:
    return RCKT(dataset.num_questions, dataset.num_concepts,
                RCKTConfig(encoder=encoder, dim=dim, layers=layers, seed=1))


def bench_eval_sweep(model: RCKT, dataset, stride: int) -> dict:
    start = time.perf_counter()
    _, legacy_scores = model.predict_dataset(dataset, stride=stride,
                                             legacy=True)
    legacy_seconds = time.perf_counter() - start
    start = time.perf_counter()
    _, fast_scores = model.predict_dataset(dataset, stride=stride)
    fast_seconds = time.perf_counter() - start
    # Path outputs are ordered differently (length buckets vs sorted
    # groups); sorting compares the score multisets, which the
    # target-aligned parity tests pin down exactly.
    max_diff = float(np.max(np.abs(np.sort(legacy_scores)
                                   - np.sort(fast_scores))))
    targets = len(legacy_scores)
    return {
        "targets": targets,
        "legacy_seconds": round(legacy_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "legacy_targets_per_sec": round(targets / legacy_seconds, 1),
        "fast_targets_per_sec": round(targets / fast_seconds, 1),
        "speedup": round(legacy_seconds / fast_seconds, 2),
        "max_abs_score_diff": max_diff,
    }


def bench_serving(model: RCKT, dataset, rounds: int) -> dict:
    sequences = list(dataset)
    rng = np.random.default_rng(7)
    probe_questions = rng.integers(1, dataset.num_questions + 1,
                                   size=(rounds, len(sequences)))

    # Old path: the seed idiom — collate one probe row per request
    # (repro.interpret.recommendation._target_score).
    from repro.data import Interaction, StudentSequence
    start = time.perf_counter()
    old_scores = []
    for round_index in range(rounds):
        for k, sequence in enumerate(sequences):
            question = int(probe_questions[round_index, k])
            probe = Interaction(question, 1, (1 + question % 20,))
            extended = StudentSequence(sequence.student_id,
                                       list(sequence.interactions) + [probe])
            batch = collate([extended])
            old_scores.append(model.predict_scores(
                batch, np.array([len(extended) - 1]))[0])
    old_seconds = time.perf_counter() - start
    old_scores = np.array(old_scores)

    # New path: the serving engine, warm per-student history cache.
    engine = InferenceEngine(model)
    engine.load_dataset(dataset)
    start = time.perf_counter()
    new_scores = []
    for round_index in range(rounds):
        requests = [
            ScoreRequest(sequence.student_id,
                         int(probe_questions[round_index, k]),
                         (1 + int(probe_questions[round_index, k]) % 20,))
            for k, sequence in enumerate(sequences)
        ]
        new_scores.append(engine.score_batch(requests))
    new_seconds = time.perf_counter() - start
    new_scores = np.concatenate(new_scores)

    requests_total = rounds * len(sequences)
    return {
        "requests": requests_total,
        "legacy_seconds": round(old_seconds, 4),
        "fast_seconds": round(new_seconds, 4),
        "legacy_targets_per_sec": round(requests_total / old_seconds, 1),
        "fast_targets_per_sec": round(requests_total / new_seconds, 1),
        "speedup": round(old_seconds / new_seconds, 2),
        "max_abs_score_diff": float(np.max(np.abs(old_scores - new_scores))),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small corpus, default encoder only (CI smoke)")
    parser.add_argument("--students", type=int, default=None)
    parser.add_argument("--stride", type=int, default=None)
    parser.add_argument("--rounds", type=int, default=2,
                        help="serving rounds (requests per student)")
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--layers", type=int, default=2)
    parser.add_argument("--encoders", nargs="*", default=None)
    parser.add_argument("--output", default="BENCH_inference.json")
    args = parser.parse_args()

    if args.quick:
        students = args.students or 100
        stride = args.stride or 4
        encoders = args.encoders or ["dkt"]
    else:
        students = args.students or 120
        stride = args.stride or 2
        encoders = args.encoders or ["dkt", "sakt", "akt"]

    dataset = build_corpus(students)
    print(f"corpus: {len(dataset)} sequences, "
          f"{dataset.num_responses} responses")

    results = {
        "benchmark": "multi-target inference engine vs legacy prefix path",
        "quick": args.quick,
        "corpus": {"students": students,
                   "sequences": len(dataset),
                   "responses": int(dataset.num_responses)},
        "model": {"dim": args.dim, "layers": args.layers},
        "platform": platform.platform(),
        "eval_sweep": {},
        "serving": {},
    }
    for encoder in encoders:
        model = build_model(dataset, encoder, args.dim, args.layers)
        sweep = bench_eval_sweep(model, dataset, stride)
        serving = bench_serving(model, dataset, args.rounds)
        results["eval_sweep"][encoder] = sweep
        results["serving"][encoder] = serving
        print(f"{encoder}: eval sweep {sweep['speedup']}x "
              f"({sweep['legacy_targets_per_sec']} -> "
              f"{sweep['fast_targets_per_sec']} targets/s, "
              f"diff {sweep['max_abs_score_diff']:.2e}) | "
              f"serving {serving['speedup']}x "
              f"({serving['legacy_targets_per_sec']} -> "
              f"{serving['fast_targets_per_sec']} req/s, "
              f"diff {serving['max_abs_score_diff']:.2e})")

    headline = results["serving"][encoders[0]]
    results["headline_workload"] = "serving"
    results["headline_encoder"] = encoders[0]
    results["speedup"] = headline["speedup"]
    results["legacy_targets_per_sec"] = headline["legacy_targets_per_sec"]
    results["fast_targets_per_sec"] = headline["fast_targets_per_sec"]

    path = Path(args.output)
    path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"headline: serving speedup {results['speedup']}x "
          f"-> {path.resolve()}")


if __name__ == "__main__":
    main()
