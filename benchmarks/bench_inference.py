"""Inference throughput: old per-prefix path vs the multi-target engine.

Two workloads, both scored identically by construction (the golden-parity
suite in ``tests/core/test_multi_target_parity.py`` pins the score
equality this benchmark asserts as a by-product):

* **evaluation sweep** — score every position of every sequence, the
  Table IV protocol.  Old path: ``predict_dataset(legacy=True)``, one
  re-collated prefix batch per target bucket.  New path: the shared
  forward-stream engine of :mod:`repro.core.multi_target`.
* **serving** — one "how would this student do on question q next?"
  probe per student, the production workload ``repro.serve`` exists for.
  Old path: the seed's serving idiom (one collated single-row
  ``predict_scores`` call per probe, exactly as
  ``repro.interpret.recommendation`` scores candidates).  New path:
  :class:`repro.serve.InferenceEngine` micro-batching all probes over
  its cached student histories.

Two more sections track the PR 2 serving work:

* **serving_incremental** — the steady-state record/score loop with the
  per-student forward-stream caches (:mod:`repro.serve.forward_cache`)
  against the same engine with caching disabled (the PR 1 path): warm
  caches skip the forward half of the encoder, so ``record`` costs one
  step and ``score`` only runs the per-request backward streams.
* **sweep_workers** — ``predict_dataset(workers=N)`` vs the
  single-threaded sweep: the column-banded chunks are independent, so
  they thread cleanly wherever NumPy releases the GIL (the measured
  ratio is hardware-bound: expect ~1x on single-core CI runners).

And one for the PR 3 long-context work:

* **long_context** — a single synthetic student far past the seed's
  128-step ceiling, served through the steady-state record/score loop
  twice: once with full (unbounded, growing positional tables)
  histories and once with a sliding window
  (``InferenceEngine(window=W)``).  ``speedup`` is full/windowed wall
  time — windowed serving pays O(window) per score instead of
  O(history).  The two arms intentionally condition on different
  contexts, so ``max_abs_score_diff`` here compares the *windowed*
  scores against a from-scratch recompute on each probe's anchored
  window slice — the parity the long-context test suite pins at 1e-10.

And one for the PR 5 cluster:

* **cluster** — the same mixed batch envelope through ``repro.cluster``
  deployments of 1, 2, and 4 worker *processes* behind the
  scatter-gather router; ``speedup`` is 2-shard vs 1-shard throughput
  (hardware-bound like ``sweep_workers``: ~2x on multi-core hosts, ~1x
  on the single-core baseline machine) and ``max_abs_score_diff``
  checks every routed reply bit-identical against a single in-process
  ``Service`` — the cluster parity contract, gated at 0 drift.

And one for the PR 4 typed serving API:

* **service_layer** — the ``repro.serve.Service`` facade.  ``speedup``
  is the mixed-type scheduler win: one batch envelope of score +
  explain + what-if queries (coalesced into shared forward-stream
  batches) against executing the same queries one ``execute`` call at
  a time.  Also reported: the facade's overhead relative to the legacy
  ``engine.score_batch`` surface (same scheduler underneath — the
  typed edges must cost ~nothing) and the HTTP gateway's single-query
  round-trip throughput.  ``max_abs_score_diff`` spans batched vs
  per-query scores *and* wire vs in-process scores, so the drift gate
  covers the whole stack.

And one for the PR 7 counterfactual recourse API:

* **recourse** — the protocol-v2 ``RecourseQuery`` edit search: beam
  search over fix-history and practice-candidate edits, every
  generation scored as one shared forward-stream batch with practice
  worlds extending cloned warm caches.  Reports edit/world throughput
  and worlds-per-forward-call (the coalescing ratio); its
  ``max_abs_score_diff`` rescores each returned path's edited timeline
  from scratch, so the drift gate covers the search's answers.

And one for the PR 8 continual-learning loop:

* **online** — the closed serve→train loop of ``repro.online``: the
  durable record journal doubles as the load generator (append the
  live stream, cold-boot, ``replay_records``), the replayed stream is
  scored prequentially (test-then-train) on the incumbent, converted
  to training batches via ``dataset_from_records``, fine-tuned one
  round by ``OnlineTrainer``, and shipped back through a drift-gated
  warm ``Service.rollout``.  Reported: replay and prequential
  throughput (events/s), the prequential AUC, fine-tune and gated
  rollout wall time, and the gate's verdict.  There is deliberately
  no ``speedup`` ratio — the loop has no legacy arm to race — so only
  its ``max_abs_score_diff`` is gated: the max of (a) the golden
  round trip (journal-replayed training batches must be bit-identical
  to batches built from the original sequences; 1.0 when broken) and
  (b) post-rollout parity (the rolled-out service must score exactly
  like a fresh service booted from the refreshed checkpoint).

And one for the PR 10 observability layer:

* **obs** — the cost of the metrics registry itself: two identical
  ``Service`` stacks, one built under the default (enabled) registry
  and one under a disabled registry (``repro.obs`` instrument handles
  bind at construction, so the disabled arm runs the shared no-op
  singletons), driven with the same score batches interleaved in
  alternating order.  ``overhead_pct`` — the median paired per-loop
  time ratio, robust to scheduler spikes — is what instrumentation
  costs; ``check_regression.py`` gates it below 2%, the budget
  ``docs/OBSERVABILITY.md`` commits to, and ``max_abs_score_diff``
  pins both arms bit-identical (telemetry must never touch scores).
  All timing in this file runs on the same stopwatch
  (:class:`repro.obs.Timer`), so the bench exercises the clock
  indirection it is measuring.

Emits ``BENCH_inference.json`` (top-level ``speedup`` = serving-workload
throughput ratio for the default encoder) to start the perf trajectory::

    PYTHONPATH=src python benchmarks/bench_inference.py --quick

``benchmarks/check_regression.py`` gates CI on these numbers.
"""

from __future__ import annotations

import argparse
import json
import platform
from pathlib import Path

import numpy as np

from repro import obs
from repro.core import RCKT, RCKTConfig
from repro.data import (SimulationConfig, StudentSimulator, build_dataset,
                        collate)
from repro.obs import Timer
from repro.serve import InferenceEngine, ScoreRequest


def build_corpus(num_students: int, seed: int = 11):
    config = SimulationConfig(num_students=num_students, num_questions=200,
                              num_concepts=20, sequence_length=(8, 50))
    simulator = StudentSimulator(config, seed=seed)
    return build_dataset("bench", simulator.simulate(seed=seed + 1),
                         config.num_questions, config.num_concepts)


def build_model(dataset, encoder: str, dim: int, layers: int) -> RCKT:
    return RCKT(dataset.num_questions, dataset.num_concepts,
                RCKTConfig(encoder=encoder, dim=dim, layers=layers, seed=1))


def bench_eval_sweep(model: RCKT, dataset, stride: int) -> dict:
    with Timer() as timer:
        _, legacy_scores = model.predict_dataset(dataset, stride=stride,
                                                 legacy=True)
    legacy_seconds = timer.elapsed_s
    with Timer() as timer:
        _, fast_scores = model.predict_dataset(dataset, stride=stride)
    fast_seconds = timer.elapsed_s
    # Path outputs are ordered differently (length buckets vs sorted
    # groups); sorting compares the score multisets, which the
    # target-aligned parity tests pin down exactly.
    max_diff = float(np.max(np.abs(np.sort(legacy_scores)
                                   - np.sort(fast_scores))))
    targets = len(legacy_scores)
    return {
        "targets": targets,
        "legacy_seconds": round(legacy_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "legacy_targets_per_sec": round(targets / legacy_seconds, 1),
        "fast_targets_per_sec": round(targets / fast_seconds, 1),
        "speedup": round(legacy_seconds / fast_seconds, 2),
        "max_abs_score_diff": max_diff,
    }


def bench_serving(model: RCKT, dataset, rounds: int) -> dict:
    sequences = list(dataset)
    rng = np.random.default_rng(7)
    probe_questions = rng.integers(1, dataset.num_questions + 1,
                                   size=(rounds, len(sequences)))

    # Old path: the seed idiom — collate one probe row per request
    # (repro.interpret.recommendation._target_score).
    from repro.data import Interaction, StudentSequence
    with Timer() as timer:
        old_scores = []
        for round_index in range(rounds):
            for k, sequence in enumerate(sequences):
                question = int(probe_questions[round_index, k])
                probe = Interaction(question, 1, (1 + question % 20,))
                extended = StudentSequence(
                    sequence.student_id,
                    list(sequence.interactions) + [probe])
                batch = collate([extended])
                old_scores.append(model.predict_scores(
                    batch, np.array([len(extended) - 1]))[0])
    old_seconds = timer.elapsed_s
    old_scores = np.array(old_scores)

    # New path: the serving engine, warm per-student history cache.
    engine = InferenceEngine(model)
    engine.load_dataset(dataset)
    with Timer() as timer:
        new_scores = []
        for round_index in range(rounds):
            requests = [
                ScoreRequest(
                    sequence.student_id,
                    int(probe_questions[round_index, k]),
                    (1 + int(probe_questions[round_index, k]) % 20,))
                for k, sequence in enumerate(sequences)
            ]
            new_scores.append(engine.score_batch(requests))
    new_seconds = timer.elapsed_s
    new_scores = np.concatenate(new_scores)

    requests_total = rounds * len(sequences)
    return {
        "requests": requests_total,
        "legacy_seconds": round(old_seconds, 4),
        "fast_seconds": round(new_seconds, 4),
        "legacy_targets_per_sec": round(requests_total / old_seconds, 1),
        "fast_targets_per_sec": round(requests_total / new_seconds, 1),
        "speedup": round(old_seconds / new_seconds, 2),
        "max_abs_score_diff": float(np.max(np.abs(old_scores - new_scores))),
    }


def bench_serving_incremental(model: RCKT, dataset, rounds: int) -> dict:
    """Steady-state serving: interleaved record/score, cache vs no cache."""
    rng = np.random.default_rng(13)
    sequences = list(dataset)
    probe_questions = rng.integers(1, dataset.num_questions + 1,
                                   size=(rounds, len(sequences)))
    record_questions = rng.integers(1, dataset.num_questions + 1,
                                    size=(rounds, len(sequences)))
    record_answers = rng.integers(0, 2, size=(rounds, len(sequences)))

    def run_loop(engine: InferenceEngine) -> tuple:
        engine.load_dataset(dataset)
        # Pre-warm: the first score pays the one-off cache build; the
        # benchmark measures the steady state that follows it.
        engine.score_batch([
            ScoreRequest(s.student_id, 1, (1,)) for s in sequences])
        with Timer() as timer:
            scores = []
            for round_index in range(rounds):
                for k, sequence in enumerate(sequences):
                    question = int(record_questions[round_index, k])
                    engine.record(sequence.student_id, question,
                                  int(record_answers[round_index, k]),
                                  (1 + question % 20,))
                requests = [
                    ScoreRequest(
                        sequence.student_id,
                        int(probe_questions[round_index, k]),
                        (1 + int(probe_questions[round_index, k]) % 20,))
                    for k, sequence in enumerate(sequences)
                ]
                scores.append(engine.score_batch(requests))
        return timer.elapsed_s, np.concatenate(scores)

    nocache_seconds, nocache_scores = run_loop(
        InferenceEngine(model, stream_cache_bytes=0))
    cached_engine = InferenceEngine(model)
    cached_seconds, cached_scores = run_loop(cached_engine)

    requests_total = rounds * len(sequences)
    return {
        "requests": requests_total,
        "records": requests_total,
        "nocache_seconds": round(nocache_seconds, 4),
        "cached_seconds": round(cached_seconds, 4),
        "nocache_targets_per_sec": round(requests_total / nocache_seconds, 1),
        "cached_targets_per_sec": round(requests_total / cached_seconds, 1),
        "speedup": round(nocache_seconds / cached_seconds, 2),
        "max_abs_score_diff": float(np.max(np.abs(nocache_scores
                                                  - cached_scores))),
        "cache_stats": cached_engine.stream_cache_stats(),
    }


def bench_sweep_workers(model: RCKT, dataset, stride: int,
                        workers: int) -> dict:
    """Threaded vs single-threaded evaluation sweep (same chunks)."""
    with Timer() as timer:
        _, single_scores = model.predict_dataset(dataset, stride=stride)
    single_seconds = timer.elapsed_s
    with Timer() as timer:
        _, threaded_scores = model.predict_dataset(dataset, stride=stride,
                                                   workers=workers)
    threaded_seconds = timer.elapsed_s
    targets = len(single_scores)
    return {
        "targets": targets,
        "workers": workers,
        "single_seconds": round(single_seconds, 4),
        "threaded_seconds": round(threaded_seconds, 4),
        "single_targets_per_sec": round(targets / single_seconds, 1),
        "threaded_targets_per_sec": round(targets / threaded_seconds, 1),
        "speedup": round(single_seconds / threaded_seconds, 2),
        "max_abs_score_diff": float(np.max(np.abs(single_scores
                                                  - threaded_scores))),
    }


def bench_long_context(model: RCKT, num_concepts: int, length: int,
                       window: int, score_every: int) -> dict:
    """One long student: full-history serving vs sliding-window serving.

    Both arms replay the same record/score trace; the windowed arm's
    scores are additionally checked against a from-scratch recompute on
    each probe's anchored window slice (``max_abs_score_diff``).
    """
    from repro.core import score_batch_targets
    from repro.core.masking import window_start
    from repro.data import Interaction, StudentSequence
    from repro.tensor import no_grad

    rng = np.random.default_rng(17)
    num_questions = model.generator.embedder.question_embedding \
        .num_embeddings - 1
    questions = rng.integers(1, num_questions + 1, size=length)
    answers = rng.integers(0, 2, size=length)
    probe_questions = rng.integers(1, num_questions + 1, size=length + 1)

    def concept_for(question: int) -> int:
        return 1 + int(question) % num_concepts

    def run_loop(engine: InferenceEngine) -> tuple:
        with Timer() as timer:
            scores = []
            for step in range(length):
                question = int(questions[step])
                engine.record("long", question, int(answers[step]),
                              (concept_for(question),))
                if (step + 1) % score_every == 0:
                    probe = int(probe_questions[step])
                    scores.append(engine.score("long", probe,
                                               (concept_for(probe),)))
        return timer.elapsed_s, np.array(scores)

    full_seconds, _ = run_loop(InferenceEngine(model))
    windowed_engine = InferenceEngine(model, window=window)
    windowed_seconds, windowed_scores = run_loop(windowed_engine)

    # Parity: windowed scores vs full recompute on the anchored slice.
    references = []
    for step in range(score_every - 1, length, score_every):
        anchor = window_start(step + 1, window, windowed_engine.window_hop)
        interactions = [
            Interaction(int(q), int(a), (concept_for(q),))
            for q, a in zip(questions[anchor:step + 1],
                            answers[anchor:step + 1])
        ]
        probe = int(probe_questions[step])
        interactions.append(Interaction(probe, 1, (concept_for(probe),)))
        batch = collate([StudentSequence("ref", interactions)])
        with no_grad():
            references.append(score_batch_targets(
                model, batch, np.array([len(interactions) - 1]))[0])

    probes = len(windowed_scores)
    return {
        "history_length": length,
        "window": window,
        "window_hop": windowed_engine.window_hop,
        "probes": probes,
        "full_seconds": round(full_seconds, 4),
        "windowed_seconds": round(windowed_seconds, 4),
        "full_probes_per_sec": round(probes / full_seconds, 1),
        "windowed_probes_per_sec": round(probes / windowed_seconds, 1),
        "speedup": round(full_seconds / windowed_seconds, 2),
        "max_abs_score_diff": float(np.max(np.abs(
            windowed_scores - np.array(references)))),
    }


def bench_service_layer(model: RCKT, dataset, rounds: int) -> dict:
    """Typed facade: mixed-batch scheduling, facade overhead, HTTP."""
    from repro.serve import (ExplainQuery, HistoryEdit, ScoreQuery, Service,
                             ServiceClient, WhatIfQuery, start_http_thread)

    rng = np.random.default_rng(29)
    sequences = list(dataset)
    num_questions = dataset.num_questions
    probe_questions = rng.integers(1, num_questions + 1,
                                   size=(rounds, len(sequences)))

    def mixed_queries(round_index: int) -> list:
        queries = []
        for k, sequence in enumerate(sequences):
            question = int(probe_questions[round_index, k])
            queries.append(ScoreQuery(sequence.student_id, question,
                                      (1 + question % 20,)))
            if k % 3 == 0 and len(sequence) >= 2:
                queries.append(ExplainQuery(sequence.student_id))
            if k % 4 == 0 and len(sequence) >= 2:
                queries.append(WhatIfQuery(
                    sequence.student_id, question, (1 + question % 20,),
                    (HistoryEdit(0, "flip"),)))
        return queries

    def scores_of(replies) -> np.ndarray:
        # Every reply in these workloads carries a score; an error
        # reply means the benchmark itself is broken — fail loudly
        # instead of silently comparing fewer queries.
        bad = [reply for reply in replies if not reply.ok]
        if bad:
            raise RuntimeError(f"service_layer benchmark query failed: "
                               f"{bad[0]}")
        return np.array([reply.score for reply in replies])

    def fresh_service() -> Service:
        engine = InferenceEngine(model)
        engine.load_dataset(dataset)
        service = Service(engine)
        # Pre-warm the stream caches: both arms measure the steady
        # state, not the one-off cold build.
        service.execute_batch([ScoreQuery(s.student_id, 1, (1,))
                               for s in sequences])
        return service

    # Arm 1: one execute() per query (no cross-query coalescing).
    service = fresh_service()
    with Timer() as timer:
        single_scores = []
        for round_index in range(rounds):
            for query in mixed_queries(round_index):
                single_scores.append(service.execute(query))
    single_seconds = timer.elapsed_s
    single_scores = scores_of(single_scores)

    # Arm 2: the same queries as batch envelopes (the scheduler
    # coalesces all score/explain/what-if rows per model into shared
    # forward-stream batches).
    service = fresh_service()
    with Timer() as timer:
        batched_scores = []
        for round_index in range(rounds):
            batched_scores.extend(service.execute_batch(
                mixed_queries(round_index)))
    batched_seconds = timer.elapsed_s
    batched_scores = scores_of(batched_scores)
    queries_total = len(batched_scores)

    # Facade overhead: the legacy engine surface vs typed queries —
    # same scheduler underneath, so the typed edges must cost ~nothing.
    score_requests = [ScoreRequest(s.student_id,
                                   int(probe_questions[0, k]),
                                   (1 + int(probe_questions[0, k]) % 20,))
                      for k, s in enumerate(sequences)]
    score_queries = [ScoreQuery(r.student_id, r.question_id,
                                r.concept_ids) for r in score_requests]
    service = fresh_service()
    engine = service.engine()
    # Interleave the two arms so slow drift on shared runners cancels
    # instead of biasing whichever arm runs second.
    engine_seconds = 0.0
    facade_seconds = 0.0
    for _ in range(max(rounds, 4)):
        with Timer() as timer:
            engine_scores = engine.score_batch(score_requests)
        engine_seconds += timer.elapsed_s
        with Timer() as timer:
            facade_replies = service.execute_batch(score_queries)
        facade_seconds += timer.elapsed_s
    facade_diff = float(np.max(np.abs(engine_scores
                                      - scores_of(facade_replies))))

    # HTTP round-trip: single-query latency through the stdlib gateway.
    service = fresh_service()
    server, _ = start_http_thread(service)
    client = ServiceClient(f"http://127.0.0.1:{server.server_port}")
    http_queries = score_queries[:min(len(score_queries), 50)]
    try:
        with Timer() as timer:
            wire_scores = np.array([client.query(query).score
                                    for query in http_queries])
        http_seconds = timer.elapsed_s
        local_scores = scores_of(service.execute_batch(http_queries))
    finally:
        server.shutdown()
    http_diff = float(np.max(np.abs(wire_scores - local_scores)))

    return {
        "queries": queries_total,
        "single_seconds": round(single_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "single_queries_per_sec": round(queries_total / single_seconds, 1),
        "batched_queries_per_sec": round(queries_total / batched_seconds,
                                         1),
        "speedup": round(single_seconds / batched_seconds, 2),
        "engine_shim_seconds": round(engine_seconds, 4),
        "facade_seconds": round(facade_seconds, 4),
        "facade_overhead_pct": round(
            100.0 * (facade_seconds - engine_seconds) / engine_seconds, 1),
        "http_requests": len(http_queries),
        "http_seconds": round(http_seconds, 4),
        "http_requests_per_sec": round(len(http_queries) / http_seconds, 1),
        "max_abs_score_diff": max(
            float(np.max(np.abs(single_scores - batched_scores))),
            facade_diff, http_diff),
    }


def bench_cluster(model: RCKT, dataset, rounds: int,
                  shard_counts=(1, 2, 4)) -> dict:
    """Sharded multi-process serving: N workers behind the router.

    The same mixed batch envelope (score + explain + what-if) is driven
    through ``repro.cluster`` deployments of 1, 2, and 4 worker
    *processes*; ``speedup`` is 2-shard vs 1-shard throughput (and
    ``speedup_4`` 4-vs-1).  The ratio measures hardware parallelism —
    worker processes sidestep the GIL entirely, so expect ~2x at 2
    shards on multi-core hosts and ~1x on single-core CI runners,
    exactly like the ``sweep_workers`` section (the committed baseline
    machine is single-core; the regression gate therefore checks this
    section's *drift* only).  ``max_abs_score_diff`` compares every
    routed reply against a single in-process ``Service`` on the same
    checkpoint and records — the cluster's bit-identity contract, so
    anything above 0.0 is a routing bug, not noise.
    """
    import tempfile
    from pathlib import Path

    from repro.cluster import RecordJournal, ScatterGatherRouter, \
        Supervisor, WorkerSpec, free_port
    from repro.serve import (DEFAULT_MODEL, ExplainQuery, HistoryEdit,
                             RecordEvent, ScoreQuery, Service, WhatIfQuery)

    rng = np.random.default_rng(41)
    sequences = list(dataset)[:32]
    num_questions = dataset.num_questions
    records = [
        RecordEvent(sequence.student_id, interaction.question_id,
                    interaction.correct, interaction.concept_ids)
        for sequence in sequences for interaction in sequence
    ]
    probe_questions = rng.integers(1, num_questions + 1,
                                   size=(rounds, len(sequences)))

    def mixed_queries(round_index: int) -> list:
        queries = []
        for k, sequence in enumerate(sequences):
            question = int(probe_questions[round_index, k])
            queries.append(ScoreQuery(sequence.student_id, question,
                                      (1 + question % 20,)))
            if k % 3 == 0:
                queries.append(ExplainQuery(sequence.student_id))
            if k % 4 == 0:
                queries.append(WhatIfQuery(
                    sequence.student_id, question, (1 + question % 20,),
                    (HistoryEdit(0, "flip"),)))
        return queries

    def scores_of(replies) -> np.ndarray:
        bad = [reply for reply in replies if not reply.ok]
        if bad:
            raise RuntimeError(f"cluster benchmark query failed: {bad[0]}")
        return np.array([reply.score for reply in replies])

    with tempfile.TemporaryDirectory(prefix="rckt-bench-cluster-") as tmp:
        checkpoint = Path(tmp) / "bench.npz"
        InferenceEngine(model).save(checkpoint)

        # Reference arm: one in-process Service on the same state.
        local = Service.from_checkpoint(checkpoint)
        local.execute_batch(records)
        # Warm round (stream-cache build) outside the timer, matching
        # the cluster arms below.
        local.execute_batch(mixed_queries(0))
        local_scores = []
        with Timer() as timer:
            for round_index in range(rounds):
                local_scores.append(scores_of(local.execute_batch(
                    mixed_queries(round_index))))
        local_seconds = timer.elapsed_s
        local_scores = np.concatenate(local_scores)
        local.close()
        queries_total = len(local_scores)

        entry = {
            "queries": queries_total,
            "students": len(sequences),
            "records": len(records),
            "local_seconds": round(local_seconds, 4),
            "local_queries_per_sec": round(queries_total / local_seconds,
                                           1),
        }
        max_diff = 0.0
        throughput = {}
        for shards in shard_counts:
            specs = [WorkerSpec(shard_id=shard, port=free_port(),
                                checkpoints=[(DEFAULT_MODEL,
                                              str(checkpoint))])
                     for shard in range(shards)]
            supervisor = Supervisor(specs, journal=RecordJournal())
            supervisor.start()
            router = ScatterGatherRouter(
                [spec.base_url for spec in specs],
                journal=supervisor.journal)
            supervisor.attach_router(router)
            try:
                router.execute_batch(records)
                # Warm round (stream-cache build) outside the timer.
                router.execute_batch(mixed_queries(0))
                with Timer() as timer:
                    shard_scores = []
                    for round_index in range(rounds):
                        shard_scores.append(scores_of(router.execute_batch(
                            mixed_queries(round_index))))
                seconds = timer.elapsed_s
            finally:
                supervisor.stop()
                router.close()
            shard_scores = np.concatenate(shard_scores)
            max_diff = max(max_diff, float(np.max(np.abs(
                shard_scores - local_scores))))
            throughput[shards] = queries_total / seconds
            entry[f"shards_{shards}_seconds"] = round(seconds, 4)
            entry[f"shards_{shards}_queries_per_sec"] = \
                round(throughput[shards], 1)

        base = shard_counts[0]
        entry["speedup"] = round(throughput.get(2, throughput[base])
                                 / throughput[base], 2)
        if 4 in throughput:
            entry["speedup_4"] = round(throughput[4] / throughput[base], 2)
        entry["max_abs_score_diff"] = max_diff
        return entry


def bench_recourse(model: RCKT, dataset, rounds: int) -> dict:
    """Counterfactual recourse: edit-search throughput and coalescing.

    One ``RecourseQuery`` per student per round (two practice
    candidates + history fixes, beam width 2, up to 3 edits).  The
    benchmark weights are untrained, so the 0.8 threshold is
    effectively unreachable and every search explores its full
    ``max_edits`` depth — the deterministic worst case for the
    search, which is exactly what a throughput trend wants.  Three
    reported facets:

    * ``edits_per_sec`` / ``worlds_per_sec`` — returned path edits and
      hypothetical timelines scored per wall-clock second;
    * ``worlds_per_forward_call`` — worlds scored divided by encoder
      forward passes (captures + streams), measured by wrapping the
      encoder.  The search scores each generation as one shared batch
      and extends warm caches for practice-only worlds, so this ratio
      must stay well above 1; a collapse to ~1 means the search
      regressed to world-at-a-time scoring;
    * ``max_abs_score_diff`` — every achieved path's final timeline is
      rebuilt from scratch and rescored through collate +
      ``predict_scores`` (the paper's evaluation idiom), gating the
      search's claimed ``final_score`` like every other drift entry.
    """
    from repro.data import Interaction, StudentSequence
    from repro.serve import (CandidateQuestion, RecourseQuery, ScoreQuery,
                             Service)

    rng = np.random.default_rng(43)
    sequences = [s for s in list(dataset) if len(s) >= 4][:40]
    num_questions = dataset.num_questions

    engine = InferenceEngine(model)
    engine.load_dataset(dataset)
    service = Service(engine)
    # Warm the stream caches: steady state, not the cold build.
    service.execute_batch([ScoreQuery(s.student_id, 1, (1,))
                           for s in sequences])

    probes = rng.integers(1, num_questions + 1,
                          size=(rounds, len(sequences), 3))

    def queries_for(round_index: int) -> list:
        queries = []
        for k, sequence in enumerate(sequences):
            target, cand_a, cand_b = (int(q)
                                      for q in probes[round_index, k])
            queries.append(RecourseQuery(
                sequence.student_id, target, (1 + target % 20,),
                threshold=0.8, max_edits=3, beam_width=2,
                candidates=(CandidateQuestion(cand_a, (1 + cand_a % 20,)),
                            CandidateQuestion(cand_b,
                                              (1 + cand_b % 20,)))))
        return queries

    counts = {"calls": 0}
    encoder = engine.model.generator.encoder
    real_capture = encoder.forward_stream_with_capture
    real_forward = encoder.forward_stream

    def counted_capture(*args, **kwargs):
        counts["calls"] += 1
        return real_capture(*args, **kwargs)

    def counted_forward(*args, **kwargs):
        counts["calls"] += 1
        return real_forward(*args, **kwargs)

    encoder.forward_stream_with_capture = counted_capture
    encoder.forward_stream = counted_forward
    try:
        with Timer() as timer:
            replies = []
            for round_index in range(rounds):
                replies.extend(service.execute_batch(
                    queries_for(round_index)))
        seconds = timer.elapsed_s
    finally:
        encoder.forward_stream_with_capture = real_capture
        encoder.forward_stream = real_forward

    bad = [reply for reply in replies if not reply.ok]
    if bad:
        raise RuntimeError(f"recourse benchmark query failed: {bad[0]}")
    edits = sum(len(reply.steps) for reply in replies)
    worlds = sum(reply.worlds_scored for reply in replies)
    achieved = sum(reply.achieved for reply in replies)

    # Drift gate: rescore each first-round reply's edited timeline from
    # scratch.  The recorded histories are exactly the dataset
    # sequences (load_dataset, no window), so the edit path replays
    # directly onto them.
    by_student = {s.student_id: s for s in sequences}
    max_diff = 0.0
    first_round = replies[:len(sequences)]
    for query, reply in zip(queries_for(0), first_round):
        rows = list(by_student[query.student_id].interactions)
        for step in reply.steps:
            if step.kind == "fix_history":
                old = rows[step.position]
                rows[step.position] = Interaction(
                    old.question_id, 1, old.concept_ids)
            else:
                rows.append(Interaction(step.question_id, 1,
                                        step.concept_ids))
        rows.append(Interaction(query.question_id, 1, query.concept_ids))
        golden = StudentSequence("golden", rows)
        batch = collate([golden])
        score = float(model.predict_scores(
            batch, np.array([len(rows) - 1]))[0])
        max_diff = max(max_diff, abs(reply.final_score - score))

    return {
        "searches": len(replies),
        "achieved": achieved,
        "edits": edits,
        "worlds_scored": worlds,
        "forward_calls": counts["calls"],
        "seconds": round(seconds, 4),
        "edits_per_sec": round(edits / seconds, 1),
        "worlds_per_sec": round(worlds / seconds, 1),
        "worlds_per_forward_call": round(
            worlds / max(counts["calls"], 1), 2),
        "max_abs_score_diff": max_diff,
    }


def bench_online(model: RCKT, dataset, epochs: int = 1) -> dict:
    """Closed serve→train loop: journal replay -> prequential ->
    fine-tune -> drift-gated warm rollout.

    The journal replayer is the load generator: the stream is appended
    to a durable journal, cold-booted, and replayed — everything
    downstream (scoring, training, the gate) consumes the replay, not
    the original sequences.  ``max_abs_score_diff`` gates the two
    bit-exactness contracts of the loop (see module docstring).
    """
    import tempfile

    from repro.cluster import RecordJournal
    from repro.data import StudentSequence, dataset_from_records
    from repro.online import DriftGate, auto_rollout, prequential_run
    from repro.online import OnlineTrainer
    from repro.serve import RecordEvent, ScoreQuery, Service
    from repro.serve.protocol import to_wire

    sequences = list(dataset)[:32]
    events = [RecordEvent(sequence.student_id, interaction.question_id,
                          interaction.correct, interaction.concept_ids)
              for sequence in sequences for interaction in sequence]
    # The gate re-scores its stream twice (incumbent + candidate), so
    # it watches a held-out tail rather than the whole corpus.
    gate_students = {s.student_id for s in sequences[-8:]}

    with tempfile.TemporaryDirectory(prefix="rckt-bench-online-") as tmp:
        checkpoint = Path(tmp) / "incumbent.npz"
        refreshed = Path(tmp) / "refreshed.npz"
        InferenceEngine(model).save(checkpoint)

        # Load generator: journal the live stream, cold boot, replay.
        journal = RecordJournal(directory=Path(tmp) / "journal",
                                fsync="off")
        positions = {}
        for event in events:
            positions[event.student_id] = \
                positions.get(event.student_id, 0) + 1
            journal.append(0, to_wire(event),
                           positions[event.student_id])
        journal.close()
        with Timer() as timer:
            replayer = RecordJournal(directory=Path(tmp) / "journal")
            records = replayer.replay_records()
        replay_seconds = timer.elapsed_s
        replayer.close()

        # Golden round trip: journal-replayed training batches must be
        # bit-identical to batches built from the original sequences.
        streamed = dataset_from_records(records, dataset.num_questions,
                                        dataset.num_concepts)
        direct = {s.student_id: s for s in sequences}
        roundtrip = 0.0
        for sequence in streamed:
            reference = collate([direct[sequence.student_id]])
            mine = collate([StudentSequence(sequence.student_id,
                                            list(sequence.interactions))])
            for field in ("questions", "responses", "concepts",
                          "concept_counts", "mask"):
                if getattr(mine, field).tobytes() \
                        != getattr(reference, field).tobytes():
                    roundtrip = 1.0

        # Prequential test-then-train sweep on the incumbent (also
        # builds the service histories the rollout below warm-swaps).
        service = Service.from_checkpoint(checkpoint)
        with Timer() as timer:
            baseline = prequential_run(service, records)
        prequential_seconds = timer.elapsed_s

        # One incremental fine-tune round on the replayed stream.
        with Timer() as timer:
            with OnlineTrainer(checkpoint, epochs=epochs,
                               seed=123) as trainer:
                summary = trainer.fine_tune(streamed)
                trainer.save(refreshed)
        fine_tune_seconds = timer.elapsed_s

        # Drift-gated warm rollout back into the serving tier.
        gate = DriftGate([r for r in records
                          if r.student_id in gate_students],
                         max_auc_drop=0.5, min_events=10)
        with Timer() as timer:
            verdict = auto_rollout(service, refreshed, gate)
        rollout_seconds = timer.elapsed_s
        from repro.serve import is_error
        if is_error(verdict):
            raise RuntimeError(f"online benchmark rollout refused: "
                               f"{verdict}")

        # Post-rollout parity: the rolled-out service must answer
        # exactly like a fresh service booted from the refreshed
        # checkpoint and fed the same replay.
        probes = [ScoreQuery(s.student_id, 1 + k % dataset.num_questions,
                             (1 + k % dataset.num_concepts,))
                  for k, s in enumerate(sequences)]
        reference = Service.from_checkpoint(refreshed)
        reference.execute_batch(records)
        ours = [reply.score for reply in service.execute_batch(probes)]
        theirs = [reply.score
                  for reply in reference.execute_batch(probes)]
        reference.close()
        service.close()
        parity = float(np.max(np.abs(np.array(ours) - np.array(theirs))))

    decision = gate.last_decision
    return {
        "events": len(records),
        "students": len(sequences),
        "replay_seconds": round(replay_seconds, 4),
        "replay_events_per_sec": round(len(records) / replay_seconds, 1),
        "prequential_seconds": round(prequential_seconds, 4),
        "prequential_events_per_sec": round(
            len(records) / prequential_seconds, 1),
        "prequential_auc": (None if baseline.auc is None
                            else round(baseline.auc, 4)),
        "fine_tune_seconds": round(fine_tune_seconds, 4),
        "fine_tune_batches": summary["batches"],
        "gated_rollout_seconds": round(rollout_seconds, 4),
        "gate_allowed": decision.allowed,
        "gate_delta": (None if decision.delta is None
                       else round(decision.delta, 4)),
        "max_abs_score_diff": max(roundtrip, parity),
    }


def bench_obs(model: RCKT, dataset, rounds: int) -> dict:
    """Observability overhead: instrumented vs disabled serving arms.

    Two ``Service`` stacks on the same checkpoint and histories, one
    built under the default (enabled) metrics registry and one under a
    disabled registry — instrument handles bind at construction, so the
    disabled arm's counters and histograms are the shared no-op
    singletons.  The same score batches are driven through both arms
    *interleaved* with alternating order (slow drift and position bias
    on shared runners cancel); ``overhead_pct`` is the median over
    loops of the paired per-loop time ratio — robust to the
    heavy-tailed scheduler spikes a sum-of-times ratio inherits —
    which ``check_regression.py`` gates below 2%, the budget
    ``docs/OBSERVABILITY.md`` promises.
    ``max_abs_score_diff`` pins the arms bit-identical (metrics must
    never touch scores), and ``live_series`` counts the distinct series
    the instrumented arm actually populated (a collapse to ~0 means the
    instrumentation silently unplugged and the overhead number is
    measuring nothing).
    """
    from repro.serve import ScoreQuery, Service

    rng = np.random.default_rng(47)
    sequences = list(dataset)
    num_questions = dataset.num_questions
    # The <2% gate needs a far steadier ratio than the speedup
    # sections: single ~100ms batches jitter ±10% on shared runners, so
    # the paired-median estimator below only converges inside the
    # budget with a deep sample — 24 loops still let it swing ±3%,
    # 60 hold every estimator within ~1%.  Even, so the order
    # alternation below gives both arms each position equally.
    loops = max(rounds * 4, 60)
    probe_questions = rng.integers(1, num_questions + 1,
                                   size=(loops, len(sequences)))

    def build_service() -> Service:
        engine = InferenceEngine(model)
        engine.load_dataset(dataset)
        service = Service(engine)
        # Pre-warm the stream caches: steady state, not the cold build.
        service.execute_batch([ScoreQuery(s.student_id, 1, (1,))
                               for s in sequences])
        return service

    previous = obs.set_registry(obs.MetricsRegistry())
    try:
        registry = obs.get_registry()
        instrumented = build_service()
        obs.set_registry(obs.MetricsRegistry(enabled=False))
        disabled = build_service()
    finally:
        obs.set_registry(previous)

    loop_seconds = {False: [], True: []}
    max_diff = 0.0
    try:
        for loop_index in range(loops):
            queries = [
                ScoreQuery(sequence.student_id,
                           int(probe_questions[loop_index, k]),
                           (1 + int(probe_questions[loop_index, k]) % 20,))
                for k, sequence in enumerate(sequences)
            ]
            # Alternate which arm goes first: whichever runs second in
            # a loop inherits warmer caches and ramped CPU clocks, and
            # a fixed order would book that bias against one arm.
            arms = [(disabled, False), (instrumented, True)]
            if loop_index % 2:
                arms.reverse()
            replies = {}
            for service_arm, enabled in arms:
                with Timer() as timer:
                    replies[enabled] = service_arm.execute_batch(queries)
                loop_seconds[enabled].append(timer.elapsed_s)
            off_scores = np.array([r.score for r in replies[False]])
            on_scores = np.array([r.score for r in replies[True]])
            max_diff = max(max_diff, float(np.max(np.abs(
                on_scores - off_scores))))
    finally:
        instrumented.close()
        disabled.close()

    disabled_seconds = float(np.sum(loop_seconds[False]))
    instrumented_seconds = float(np.sum(loop_seconds[True]))
    # Each loop times both arms back-to-back on the same queries, so
    # the per-loop ratio pairs away slow drift; the *median* over loops
    # then sheds the heavy-tailed spikes (GC, scheduler preemption)
    # that would swing a sum-of-times ratio by whole percents — the
    # <2% gate needs the estimator, not the noise.
    paired = (np.array(loop_seconds[True]) - np.array(loop_seconds[False])) \
        / np.array(loop_seconds[False])
    overhead_pct = float(np.median(paired)) * 100.0

    snapshot = registry.snapshot()
    live_series = (len(snapshot["counters"]) + len(snapshot["gauges"])
                   + len(snapshot["histograms"]))
    requests_total = loops * len(sequences)
    return {
        "requests": requests_total,
        "disabled_seconds": round(disabled_seconds, 4),
        "instrumented_seconds": round(instrumented_seconds, 4),
        "disabled_requests_per_sec": round(
            requests_total / disabled_seconds, 1),
        "instrumented_requests_per_sec": round(
            requests_total / instrumented_seconds, 1),
        "overhead_pct": round(overhead_pct, 2),
        "live_series": live_series,
        "max_abs_score_diff": max_diff,
    }


def bench_journal(num_entries: int) -> dict:
    """Durable record journal: append throughput and cold-boot replay.

    Encoder-independent (the journal moves wire payloads, not model
    state), so it runs once per benchmark and is keyed ``"wal"``.
    Three arms: (1) append rate under each fsync policy (``record`` =
    fsync per append, ``batch`` = fsync per 16 appends — the router's
    per-sub-envelope cadence, ``off`` = OS-buffered); (2) cold boot
    from the full segment log vs from a snapshot + empty tail, whose
    ratio (``speedup``) is the algorithmic win snapshot + truncation
    exists for; (3) ``max_abs_score_diff`` is 0.0 only when the
    replay streams from the full log, the snapshot, and an in-memory
    journal fed the same appends are *identical* — ordering/dedup
    correctness as a gated drift entry (1.0 means broken).
    """
    import tempfile
    from pathlib import Path

    from repro.cluster import RecordJournal
    from repro.serve import RecordEvent
    from repro.serve.protocol import to_wire

    rng = np.random.default_rng(7)
    students = [f"wal-{k}" for k in range(64)]
    sequences = {student: 0 for student in students}
    stream = []
    for _ in range(num_entries):
        student = students[int(rng.integers(0, len(students)))]
        sequences[student] += 1
        stream.append((to_wire(RecordEvent(
            student, int(rng.integers(1, 21)),
            int(rng.integers(0, 2)), (1,))), sequences[student]))
    # Retried acks: ~5% of appends are duplicates of earlier entries
    # (replay must keep exactly one copy of each).
    duplicates = [stream[int(rng.integers(0, len(stream)))]
                  for _ in range(num_entries // 20)]
    stream += duplicates

    def drain(journal):
        return [query for envelope in journal.envelopes(0)
                for query in envelope["queries"]]

    entry = {"entries": len(stream), "students": len(students),
             "duplicate_appends": len(duplicates)}
    with tempfile.TemporaryDirectory(prefix="rckt-bench-wal-") as tmp:
        for policy in ("record", "batch", "off"):
            journal = RecordJournal(directory=Path(tmp) / policy,
                                    fsync=policy)
            with Timer() as timer:
                for position, (payload, sequence) in enumerate(stream):
                    error = journal.append(0, payload, sequence)
                    if error is not None:
                        raise RuntimeError(f"journal rejected benchmark "
                                           f"payload: {error}")
                    if policy == "batch" and position % 16 == 15:
                        journal.sync(0)
                journal.sync(0)
            seconds = timer.elapsed_s
            journal.close()
            entry[f"append_{policy}_per_sec"] = round(
                len(stream) / seconds, 1)

        log_dir = Path(tmp) / "batch"
        with Timer() as timer:
            from_log = RecordJournal(directory=log_dir)
        log_seconds = timer.elapsed_s
        log_replay = drain(from_log)
        from_log.snapshot(0)
        from_log.close()
        with Timer() as timer:
            from_snapshot = RecordJournal(directory=log_dir)
        snapshot_seconds = timer.elapsed_s
        snapshot_replay = drain(from_snapshot)
        from_snapshot.close()

    in_memory = RecordJournal()
    for payload, sequence in stream:
        in_memory.append(0, payload, sequence)
    memory_replay = drain(in_memory)

    entry["replay_entries"] = len(log_replay)
    entry["cold_boot_log_seconds"] = round(log_seconds, 4)
    entry["cold_boot_snapshot_seconds"] = round(snapshot_seconds, 4)
    entry["speedup"] = round(log_seconds / snapshot_seconds, 2)
    entry["max_abs_score_diff"] = (
        0.0 if log_replay == snapshot_replay == memory_replay else 1.0)
    return entry


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small corpus, default encoder only (CI smoke)")
    parser.add_argument("--students", type=int, default=None)
    parser.add_argument("--stride", type=int, default=None)
    parser.add_argument("--rounds", type=int, default=2,
                        help="serving rounds (requests per student)")
    parser.add_argument("--workers", type=int, default=None,
                        help="thread count for the sweep_workers section "
                             "(default: min(4, cpu count))")
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--layers", type=int, default=2)
    parser.add_argument("--encoders", nargs="*", default=None)
    parser.add_argument("--output", default="BENCH_inference.json")
    args = parser.parse_args()

    if args.quick:
        students = args.students or 100
        stride = args.stride or 4
        encoders = args.encoders or ["dkt"]
        # Long enough that both timing arms sit well clear of the
        # shared-runner noise floor the regression gate tolerates.
        long_length, long_window, long_every = 600, 64, 25
    else:
        students = args.students or 120
        stride = args.stride or 2
        encoders = args.encoders or ["dkt", "sakt", "akt"]
        long_length, long_window, long_every = 1200, 128, 60

    import os
    workers = args.workers or min(4, os.cpu_count() or 1)

    dataset = build_corpus(students)
    print(f"corpus: {len(dataset)} sequences, "
          f"{dataset.num_responses} responses")

    results = {
        "benchmark": "multi-target inference engine vs legacy prefix path",
        "quick": args.quick,
        "corpus": {"students": students,
                   "sequences": len(dataset),
                   "responses": int(dataset.num_responses)},
        "model": {"dim": args.dim, "layers": args.layers},
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "eval_sweep": {},
        "serving": {},
        "serving_incremental": {},
        "sweep_workers": {},
        "long_context": {},
        "service_layer": {},
        "cluster": {},
        "journal": {},
        "recourse": {},
        "online": {},
        "obs": {},
    }
    for encoder in encoders:
        model = build_model(dataset, encoder, args.dim, args.layers)
        sweep = bench_eval_sweep(model, dataset, stride)
        serving = bench_serving(model, dataset, args.rounds)
        incremental = bench_serving_incremental(model, dataset, args.rounds)
        sweep_threads = bench_sweep_workers(model, dataset, stride, workers)
        long_context = bench_long_context(model, dataset.num_concepts,
                                          long_length, long_window,
                                          long_every)
        service_layer = bench_service_layer(model, dataset, args.rounds)
        cluster = bench_cluster(model, dataset, max(args.rounds, 3))
        recourse = bench_recourse(model, dataset, args.rounds)
        online = bench_online(model, dataset)
        obs_entry = bench_obs(model, dataset, args.rounds)
        results["eval_sweep"][encoder] = sweep
        results["serving"][encoder] = serving
        results["serving_incremental"][encoder] = incremental
        results["sweep_workers"][encoder] = sweep_threads
        results["long_context"][encoder] = long_context
        results["service_layer"][encoder] = service_layer
        results["cluster"][encoder] = cluster
        results["recourse"][encoder] = recourse
        results["online"][encoder] = online
        results["obs"][encoder] = obs_entry
        print(f"{encoder}: eval sweep {sweep['speedup']}x "
              f"({sweep['legacy_targets_per_sec']} -> "
              f"{sweep['fast_targets_per_sec']} targets/s, "
              f"diff {sweep['max_abs_score_diff']:.2e}) | "
              f"serving {serving['speedup']}x "
              f"({serving['legacy_targets_per_sec']} -> "
              f"{serving['fast_targets_per_sec']} req/s, "
              f"diff {serving['max_abs_score_diff']:.2e})")
        print(f"{encoder}: incremental serving {incremental['speedup']}x "
              f"({incremental['nocache_targets_per_sec']} -> "
              f"{incremental['cached_targets_per_sec']} req/s, "
              f"diff {incremental['max_abs_score_diff']:.2e}) | "
              f"sweep x{workers} workers {sweep_threads['speedup']}x "
              f"(diff {sweep_threads['max_abs_score_diff']:.2e})")
        print(f"{encoder}: long context ({long_context['history_length']} "
              f"steps, window {long_context['window']}) "
              f"{long_context['speedup']}x "
              f"({long_context['full_probes_per_sec']} -> "
              f"{long_context['windowed_probes_per_sec']} probes/s, "
              f"window-recompute diff "
              f"{long_context['max_abs_score_diff']:.2e})")
        print(f"{encoder}: service layer mixed-batch "
              f"{service_layer['speedup']}x "
              f"({service_layer['single_queries_per_sec']} -> "
              f"{service_layer['batched_queries_per_sec']} queries/s) | "
              f"facade overhead {service_layer['facade_overhead_pct']}% | "
              f"http {service_layer['http_requests_per_sec']} req/s "
              f"(diff {service_layer['max_abs_score_diff']:.2e})")
        print(f"{encoder}: cluster 2-shard {cluster['speedup']}x / "
              f"4-shard {cluster.get('speedup_4', '-')}x vs 1 shard "
              f"({cluster['shards_1_queries_per_sec']} -> "
              f"{cluster['shards_2_queries_per_sec']} -> "
              f"{cluster.get('shards_4_queries_per_sec', '-')} queries/s, "
              f"in-process {cluster['local_queries_per_sec']} q/s, "
              f"router-vs-local diff "
              f"{cluster['max_abs_score_diff']:.2e})")
        print(f"{encoder}: recourse {recourse['searches']} searches "
              f"({recourse['achieved']} achieved) | "
              f"{recourse['edits_per_sec']} edits/s, "
              f"{recourse['worlds_per_sec']} worlds/s, "
              f"{recourse['worlds_per_forward_call']} worlds/forward "
              f"(rescore diff {recourse['max_abs_score_diff']:.2e})")
        print(f"{encoder}: online loop {online['events']} events | "
              f"replay {online['replay_events_per_sec']} ev/s, "
              f"prequential {online['prequential_events_per_sec']} ev/s "
              f"(auc {online['prequential_auc']}) | fine-tune "
              f"{online['fine_tune_seconds']}s, gated rollout "
              f"{online['gated_rollout_seconds']}s "
              f"(allowed={online['gate_allowed']}, "
              f"roundtrip+parity diff "
              f"{online['max_abs_score_diff']:.2e})")
        print(f"{encoder}: obs overhead {obs_entry['overhead_pct']}% "
              f"({obs_entry['disabled_requests_per_sec']} -> "
              f"{obs_entry['instrumented_requests_per_sec']} req/s, "
              f"{obs_entry['live_series']} live series, "
              f"diff {obs_entry['max_abs_score_diff']:.2e})")

    journal = bench_journal(1000 if args.quick else 5000)
    results["journal"]["wal"] = journal
    print(f"journal: append {journal['append_record_per_sec']} "
          f"(record) / {journal['append_batch_per_sec']} (batch) / "
          f"{journal['append_off_per_sec']} (off) entries/s | "
          f"cold boot {journal['cold_boot_log_seconds']}s log -> "
          f"{journal['cold_boot_snapshot_seconds']}s snapshot "
          f"({journal['speedup']}x), replay/dedup diff "
          f"{journal['max_abs_score_diff']:.1f}")

    headline = results["serving"][encoders[0]]
    results["headline_workload"] = "serving"
    results["headline_encoder"] = encoders[0]
    results["speedup"] = headline["speedup"]
    results["legacy_targets_per_sec"] = headline["legacy_targets_per_sec"]
    results["fast_targets_per_sec"] = headline["fast_targets_per_sec"]

    path = Path(args.output)
    path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"headline: serving speedup {results['speedup']}x "
          f"-> {path.resolve()}")


if __name__ == "__main__":
    main()
