"""Table IV — overall performance: RCKT variants vs six baselines.

Regenerates: the full model x dataset AUC/ACC grid (Sec. V-B).

Shape target: the best RCKT variant matches or beats the best *neural
DLKT* baseline (DKT/SAKT/AKT/DIMKT/QIKT) on most datasets — the paper
reports +0.35% to +1.19% AUC improvements with RCKT-AKT best overall.
Absolute values differ (synthetic data, CPU-scale models).

Known substitution artifact: IKT is reported but excluded from the shape
check.  Its features (skill mastery / ability profile / problem
difficulty) are almost exactly the *generative factors* of our IRT-based
simulator, so on synthetic data it is unrealistically strong; on the real
corpora the paper shows RCKT beating it (see EXPERIMENTS.md).
"""

from repro.experiments import DATASETS, run_overall

NEURAL_BASELINES = ("DKT", "SAKT", "AKT", "DIMKT", "QIKT")


def test_table4_overall(benchmark, save_artifact):
    result = benchmark.pedantic(run_overall, rounds=1, iterations=1)
    save_artifact("table4_overall", result.render())

    wins = 0
    for dataset in DATASETS:
        best_rckt = result.best_rckt(dataset)
        best_neural = max(result.metrics[m][dataset]["auc"]
                          for m in NEURAL_BASELINES)
        if best_rckt >= best_neural - 0.02:
            wins += 1
    # Typically 3/4 at the default budget; >= 2 absorbs seed noise.
    assert wins >= 2, (
        f"RCKT matched/beat the best neural baseline on only {wins}/4 datasets")

    # RCKT itself is always informative (clears chance level).
    for model in ("RCKT-DKT", "RCKT-SAKT", "RCKT-AKT"):
        for dataset, metrics in result.metrics[model].items():
            assert metrics["auc"] > 0.5, f"{model} below chance on {dataset}"
    # Baselines are at least sane (undertrained transformers can dip).
    for model in NEURAL_BASELINES + ("IKT",):
        for dataset, metrics in result.metrics[model].items():
            assert metrics["auc"] > 0.40, f"{model} broken on {dataset}"
