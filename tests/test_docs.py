"""The docs checker guards the equation-to-code table in CI.

Runs ``tools/check_docs.py`` as a subprocess (exactly as the CI docs
lane does), both against this repository — so a renamed symbol breaks
tier-1, not just the separate docs lane — and against synthetic trees
that prove the checker actually fails on rot.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_docs.py"


def run_checker(root) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(CHECKER), "--root", str(root)],
        capture_output=True, text=True)


def test_repository_docs_are_valid():
    result = run_checker(REPO_ROOT)
    assert result.returncode == 0, result.stdout + result.stderr
    assert "ok" in result.stdout


def write_minimal_tree(root: Path, table_row: str) -> None:
    (root / "docs").mkdir()
    (root / "src").mkdir()
    (root / "src" / "mod.py").write_text(
        "CONST = 1\n\n\ndef fn():\n    pass\n\n\n"
        "class Klass:\n    def method(self):\n        pass\n")
    (root / "docs" / "ARCHITECTURE.md").write_text(
        "# Arch\n\n"
        "| Equation | Implementation |\n| --- | --- |\n"
        "| Eq. 12 | `src/mod.py:fn` |\n"
        "| Eq. 13 | `src/mod.py:Klass.method` |\n"
        "| Eq. 23 | `src/mod.py:CONST` |\n"
        f"{table_row}\n")


def test_checker_accepts_a_valid_tree(tmp_path):
    write_minimal_tree(tmp_path, "| Eq. 25 | `src/mod.py:Klass` |")
    result = run_checker(tmp_path)
    assert result.returncode == 0, result.stdout


def test_checker_fails_on_a_vanished_symbol(tmp_path):
    write_minimal_tree(tmp_path, "| Eq. 25 | `src/mod.py:gone_function` |")
    result = run_checker(tmp_path)
    assert result.returncode == 1
    assert "gone_function" in result.stdout


def test_checker_fails_on_a_vanished_file(tmp_path):
    write_minimal_tree(tmp_path, "| Eq. 25 | `src/missing.py:fn` |")
    result = run_checker(tmp_path)
    assert result.returncode == 1
    assert "missing.py" in result.stdout


def test_checker_fails_on_a_dropped_required_equation(tmp_path):
    write_minimal_tree(tmp_path, "| Eq. 99 | `src/mod.py:fn` |")
    result = run_checker(tmp_path)
    assert result.returncode == 1
    assert "Eq. 25" in result.stdout


def test_checker_fails_on_a_broken_relative_link(tmp_path):
    write_minimal_tree(tmp_path, "| Eq. 25 | `src/mod.py:Klass` |")
    (tmp_path / "README.md").write_text("see [docs](docs/NOPE.md)\n")
    result = run_checker(tmp_path)
    assert result.returncode == 1
    assert "NOPE.md" in result.stdout
